"""Repo-root pytest configuration: make ``src/`` importable.

Lets a plain ``pytest`` invocation (no ``PYTHONPATH=src``) collect and
run everything, including ``benchmarks/``, from any working directory.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
