"""Deployment: wires stations, mobiles, channel and clock together.

One :class:`Deployment` owns everything a run needs — simulator, RNG
registry, channel, link engine, trace, metrics — and drives SSB burst
delivery from each base station to each mobile via drift-free periodic
tasks.  Experiment runners construct a fresh deployment per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.frame import FrameConfig, RachConfig
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class DeploymentConfig:
    """Run-wide configuration shared by all nodes."""

    master_seed: int = 1
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    frame: FrameConfig = field(default_factory=FrameConfig)
    rach: RachConfig = field(default_factory=RachConfig)
    trace_enabled: bool = True


class Deployment:
    """A bound set of nodes sharing one channel and one clock."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config or DeploymentConfig()
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.master_seed)
        self.channel = Channel(self.config.channel, self.rng)
        self.links = LinkEngine(self.channel, self.rng)
        self.trace = TraceRecorder(enabled=self.config.trace_enabled)
        self.metrics = MetricsRecorder()
        self._stations: Dict[str, BaseStation] = {}
        self._mobiles: Dict[str, Mobile] = {}
        self._burst_tasks: List[PeriodicTask] = []
        self._started = False

    # -------------------------------------------------------------- topology
    def add_station(self, station: BaseStation) -> BaseStation:
        """Register a base station (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add stations after start()")
        if station.cell_id in self._stations:
            raise ValueError(f"duplicate cell id {station.cell_id!r}")
        self._stations[station.cell_id] = station
        return station

    def add_mobile(self, mobile: Mobile) -> Mobile:
        """Register a mobile (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add mobiles after start()")
        if mobile.mobile_id in self._mobiles:
            raise ValueError(f"duplicate mobile id {mobile.mobile_id!r}")
        self._mobiles[mobile.mobile_id] = mobile
        return mobile

    def station(self, cell_id: str) -> BaseStation:
        try:
            return self._stations[cell_id]
        except KeyError:
            raise KeyError(f"unknown cell {cell_id!r}") from None

    def mobile(self, mobile_id: str) -> Mobile:
        try:
            return self._mobiles[mobile_id]
        except KeyError:
            raise KeyError(f"unknown mobile {mobile_id!r}") from None

    @property
    def stations(self) -> List[BaseStation]:
        return list(self._stations.values())

    @property
    def mobiles(self) -> List[Mobile]:
        return list(self._mobiles.values())

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin SSB burst delivery for every station.

        Each station gets a drift-free periodic task at the SSB period,
        phase-offset per its schedule; every burst is offered to every
        mobile (the mobile's RF-chain arbitration decides what actually
        gets measured).
        """
        if self._started:
            raise RuntimeError("deployment already started")
        self._started = True
        for station in self._stations.values():
            self._burst_tasks.append(
                PeriodicTask(
                    self.sim,
                    station.frame.ssb_period_s,
                    self._make_burst_handler(station),
                    start_delay=station.schedule.phase_s,
                    label=f"ssb.{station.cell_id}",
                )
            )

    def _make_burst_handler(self, station: BaseStation):
        def handle_burst() -> None:
            self.metrics.incr(f"bursts.{station.cell_id}")
            for mobile in self._mobiles.values():
                mobile.deliver_burst(station, self.links, self.sim.now)

        return handle_burst

    def run(self, duration_s: float) -> None:
        """Start (if needed) and advance simulated time by ``duration_s``."""
        if not self._started:
            self.start()
        self.sim.run_until(self.sim.now + duration_s)

    def stop(self) -> None:
        """Stop all burst tasks (the simulator itself can keep running)."""
        for task in self._burst_tasks:
            task.stop()
        self._burst_tasks.clear()
