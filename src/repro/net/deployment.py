"""Deployment: wires stations, mobiles, channel and clock together.

One :class:`Deployment` owns everything a run needs — simulator, RNG
registry, channel, link engine, trace, metrics — and drives SSB burst
delivery from each base station to each mobile via drift-free periodic
tasks.  Experiment runners construct a fresh deployment per trial.

Burst delivery offers two paths with one determinism contract:

* the **per-mobile loop** — each mobile handles the burst end to end
  (arbitration, dwell evaluation, listener callback) before the next
  mobile is visited; and
* the **cross-user batched path** — arbitration runs for every mobile
  first (in the same registration order), the admitted population's
  dwell grid is evaluated in one
  :meth:`~repro.net.link_engine.LinkEngine.measure_burst_batch` call,
  and the measurements are delivered to the listeners in that same
  order.

Per-link RNG streams are consumed identically on both paths (the grid
draws per link, in user order, from each link's own streams), and the
decode stream is only touched inside listener callbacks — which run in
the same relative order on both paths — so a run is byte-identical
whichever path delivers its bursts.  With
:attr:`DeploymentConfig.per_link_decode` the decode draws too come from
per-link streams, making every user's outcome independent of the rest
of the population — the property the fleet shard runner relies on.  The batched path is
the default for multi-mobile (fleet) deployments; ``REPRO_FLEET_PATH=
scalar`` selects the per-mobile reference loop.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mobility.base import sample_poses
from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.obs import telemetry as _telemetry
from repro.obs.log import get_logger
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.frame import FrameConfig, RachConfig
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

_log = get_logger("net.deployment")


@dataclass(frozen=True)
class DeploymentConfig:
    """Run-wide configuration shared by all nodes."""

    master_seed: int = 1
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    frame: FrameConfig = field(default_factory=FrameConfig)
    rach: RachConfig = field(default_factory=RachConfig)
    trace_enabled: bool = True
    #: Give every (cell, mobile) link its own decode RNG stream instead
    #: of the historical shared ``"uplink"`` stream.  Makes per-user
    #: outcomes independent of which other users share the deployment —
    #: required by the fleet stack so shard runs are byte-identical to
    #: the unsharded population.
    per_link_decode: bool = False


class Deployment:
    """A bound set of nodes sharing one channel and one clock."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config or DeploymentConfig()
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.master_seed)
        self.channel = Channel(self.config.channel, self.rng)
        self.links = LinkEngine(
            self.channel, self.rng, per_link_decode=self.config.per_link_decode
        )
        self.trace = TraceRecorder(enabled=self.config.trace_enabled)
        self.metrics = MetricsRecorder()
        #: Ambient telemetry hub (wall-clock spans/counters only — it
        #: can never influence simulation state or RNG streams).
        self.telemetry = _telemetry.current()
        self._stations: Dict[str, BaseStation] = {}
        self._mobiles: Dict[str, Mobile] = {}
        self._burst_tasks: List[PeriodicTask] = []
        self._resume_at: Dict[str, float] = {}
        self._started = False
        #: Cross-user burst delivery path; the per-mobile loop is kept
        #: as the reference for equivalence tests and perf comparison.
        self.fleet_batch = os.environ.get("REPRO_FLEET_PATH", "batch") != "scalar"

    # -------------------------------------------------------------- topology
    def add_station(self, station: BaseStation) -> BaseStation:
        """Register a base station (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add stations after start()")
        if station.cell_id in self._stations:
            raise ValueError(f"duplicate cell id {station.cell_id!r}")
        self._stations[station.cell_id] = station
        return station

    def add_mobile(self, mobile: Mobile) -> Mobile:
        """Register a mobile (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add mobiles after start()")
        if mobile.mobile_id in self._mobiles:
            raise ValueError(f"duplicate mobile id {mobile.mobile_id!r}")
        self._mobiles[mobile.mobile_id] = mobile
        return mobile

    def station(self, cell_id: str) -> BaseStation:
        try:
            return self._stations[cell_id]
        except KeyError:
            raise KeyError(f"unknown cell {cell_id!r}") from None

    def mobile(self, mobile_id: str) -> Mobile:
        try:
            return self._mobiles[mobile_id]
        except KeyError:
            raise KeyError(f"unknown mobile {mobile_id!r}") from None

    @property
    def stations(self) -> List[BaseStation]:
        return list(self._stations.values())

    @property
    def mobiles(self) -> List[Mobile]:
        return list(self._mobiles.values())

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin SSB burst delivery for every station.

        Each station gets a drift-free periodic task at the SSB period,
        phase-offset per its schedule; every burst is offered to every
        mobile (the mobile's RF-chain arbitration decides what actually
        gets measured).  After a :meth:`stop`, calling :meth:`start`
        (or :meth:`run`) re-arms the tasks on the stations' *absolute*
        SSB schedules, so a stop/run cycle never drifts the burst grid.
        """
        if self._started:
            raise RuntimeError("deployment already started")
        self._started = True
        _log.debug(
            "start: %d stations, %d mobiles, t=%.3fs",
            len(self._stations), len(self._mobiles), self.sim.now,
        )
        now = self.sim.now
        for station in self._stations.values():
            # First burst: the next grid point at or after now — but
            # never one that already fired before a stop().  When a
            # stop/start cycle lands exactly on a grid point,
            # next_burst_start(now) is that (already delivered) point;
            # the resume time recorded at stop() skips past it.
            first = station.schedule.next_burst_start(now)
            resume = self._resume_at.get(station.cell_id)
            if resume is not None:
                first = max(first, station.schedule.next_burst_start(resume))
            self._burst_tasks.append(
                PeriodicTask(
                    self.sim,
                    station.frame.ssb_period_s,
                    self._make_burst_handler(station),
                    start_delay=first - now,
                    label=f"ssb.{station.cell_id}",
                )
            )

    def _make_burst_handler(self, station: BaseStation):
        def handle_burst() -> None:
            self.metrics.incr(f"bursts.{station.cell_id}")
            if self.fleet_batch and len(self._mobiles) > 1 and self.links.vectorized:
                self._deliver_burst_batch(station)
            else:
                with self.telemetry.span("net.burst_scalar"):
                    for mobile in self._mobiles.values():
                        mobile.deliver_burst(station, self.links, self.sim.now)

        return handle_burst

    def _deliver_burst_batch(self, station: BaseStation) -> None:
        """Cross-user batched burst delivery (see module docstring).

        Three phases, each visiting mobiles in registration order —
        exactly the order the per-mobile loop uses: arbitration
        (listener beam choices, radio occupancy), one grid evaluation
        for the admitted population, then listener delivery.
        """
        with self.telemetry.span("net.burst_batch"):
            now = self.sim.now
            admitted: List[Mobile] = []
            rx_beams: List[int] = []
            for mobile in self._mobiles.values():
                rx_beam = mobile.begin_burst(station, now)
                if rx_beam is None:
                    continue
                admitted.append(mobile)
                rx_beams.append(rx_beam)
            self.telemetry.observe("net.burst_batch_size", len(admitted))
            if not admitted:
                return
            poses = sample_poses([mobile.trajectory for mobile in admitted], now)
            requests = [
                (mobile.mobile_id, pose, mobile.rx_gain_fn(now, pose), rx_beam)
                for mobile, pose, rx_beam in zip(admitted, poses, rx_beams)
            ]
            measurements = self.links.measure_burst_batch(station, requests, now)
            for mobile, measurement in zip(admitted, measurements):
                mobile.complete_burst(measurement)

    def run(self, duration_s: float) -> None:
        """Start (if needed) and advance simulated time by ``duration_s``.

        A stopped deployment re-arms its burst tasks here, so
        ``run(); stop(); run()`` keeps delivering bursts (on the
        original absolute schedule) instead of silently advancing time
        with zero bursts.
        """
        if not self._started:
            self.start()
        self.sim.run_until(self.sim.now + duration_s)

    def stop(self) -> None:
        """Stop all burst tasks (the simulator itself can keep running).

        Clears the started flag so a subsequent :meth:`run` re-arms
        burst delivery rather than running a burst-less clock, and
        records each station's next unfired burst so the restart never
        delivers a boundary burst twice.
        """
        for station, task in zip(self._stations.values(), self._burst_tasks):
            self._resume_at[station.cell_id] = task.next_fire_s
            task.stop()
        self._burst_tasks.clear()
        self._started = False
        _log.debug("stop: t=%.3fs, %d events fired",
                   self.sim.now, self.sim.events_fired)
