"""Deployment: wires stations, mobiles, channel and clock together.

One :class:`Deployment` owns everything a run needs — simulator, RNG
registry, channel, link engine, trace, metrics — and drives SSB burst
delivery from each base station to each mobile.  Experiment runners
construct a fresh deployment per trial.

Burst **scheduling** offers two modes with one determinism contract
(``REPRO_BURST_SCHED``, default ``coalesced``):

* ``legacy`` — one drift-free :class:`PeriodicTask` per station, the
  original reference path; and
* ``coalesced`` — stations whose SSB grids share the same absolute tick
  ride one :class:`~repro.sim.engine.BurstScheduler` event, so a dense
  K-cell corridor with G phase slots pays G heap events per period
  instead of K, and the whole same-tick station group is delivered (and
  measured) together.

Burst **delivery** likewise offers two paths (``REPRO_FLEET_PATH``):

* the **per-mobile loop** — each mobile handles the burst end to end
  (arbitration, dwell evaluation, listener callback) before the next
  mobile is visited; and
* the **cross-user batched path** — arbitration runs for every mobile
  first (in the same registration order), the admitted population's
  dwell grid is evaluated in one link-engine call, and the measurements
  are delivered to the listeners in that same order.  Under coalesced
  scheduling the batch spans every station due on the tick
  (:meth:`~repro.net.link_engine.LinkEngine.measure_burst_multi`),
  arbitrated station-by-station in scheduling order.

Per-link RNG streams are consumed identically on every path (the grid
draws per link, in station-then-user order, from each link's own
streams), and the decode stream is only touched inside listener
callbacks — which run in the same relative order on all paths — so a
run is byte-identical whichever scheduler and path deliver its bursts.
With :attr:`DeploymentConfig.per_link_decode` the decode draws too come
from per-link streams, making every user's outcome independent of the
rest of the population — the property the fleet shard runner relies on.

Dense topologies additionally get a **spatial cell index**
(:mod:`repro.net.cell_index`, ``REPRO_CELL_INDEX`` to force ``off``):
at :meth:`start` each mobile's reachable positions are bounded from its
trajectory, and stations provably outside the link-budget guard radius
are excluded *for the whole run*.  Excluded pairs still run arbitration
and deliver an empty measurement (listener cadence, radio occupancy and
skip accounting unchanged) — only the channel evaluation is skipped,
and since excluded links can never land a dwell above the noise floor,
artifacts are byte-identical with the index on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.measure.report import RssMeasurement
from repro.mobility.base import sample_poses
from repro.net.base_station import BaseStation
from repro.net.cell_index import CellIndex, guard_radius_m
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.obs import telemetry as _telemetry
from repro.obs.log import get_logger
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.frame import FrameConfig, RachConfig
from repro.sim.engine import BurstScheduler, PeriodicTask, Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.util.switches import switch_value

_log = get_logger("net.deployment")


@dataclass(frozen=True)
class DeploymentConfig:
    """Run-wide configuration shared by all nodes."""

    master_seed: int = 1
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    frame: FrameConfig = field(default_factory=FrameConfig)
    rach: RachConfig = field(default_factory=RachConfig)
    trace_enabled: bool = True
    #: Give every (cell, mobile) link its own decode RNG stream instead
    #: of the historical shared ``"uplink"`` stream.  Makes per-user
    #: outcomes independent of which other users share the deployment —
    #: required by the fleet stack so shard runs are byte-identical to
    #: the unsharded population.
    per_link_decode: bool = False
    #: Absolute simulation time the run will not exceed, when known.
    #: Lets the spatial cell index bound horizon-dependent trajectories
    #: (walks, vehicular passes); running past it with active exclusions
    #: raises.  ``None`` restricts pruning to trajectories with a
    #: horizon-free bound (static, rotation, waypoint paths).
    horizon_s: Optional[float] = None


class Deployment:
    """A bound set of nodes sharing one channel and one clock."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config or DeploymentConfig()
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.master_seed)
        self.channel = Channel(self.config.channel, self.rng)
        self.links = LinkEngine(
            self.channel, self.rng, per_link_decode=self.config.per_link_decode
        )
        self.trace = TraceRecorder(enabled=self.config.trace_enabled)
        self.metrics = MetricsRecorder()
        #: Ambient telemetry hub (wall-clock spans/counters only — it
        #: can never influence simulation state or RNG streams).
        self.telemetry = _telemetry.current()
        self._stations: Dict[str, BaseStation] = {}
        self._mobiles: Dict[str, Mobile] = {}
        #: Live burst-schedule handles keyed by cell id.  Values are
        #: PeriodicTask (legacy) or BurstMember (coalesced); both expose
        #: ``next_fire_s`` and ``stop()``, which is all stop() needs.
        self._burst_tasks: Dict[str, object] = {}
        self._burst_scheduler: Optional[BurstScheduler] = None
        self._resume_at: Dict[str, float] = {}
        self._started = False
        #: Cross-user burst delivery path; the per-mobile loop is kept
        #: as the reference for equivalence tests and perf comparison.
        self.fleet_batch = switch_value("REPRO_FLEET_PATH") != "scalar"
        #: Burst scheduling mode; ``legacy`` keeps the original
        #: one-PeriodicTask-per-station reference path.
        self.burst_sched = switch_value("REPRO_BURST_SCHED")
        #: Spatial pruning switch; the index is also self-disabling
        #: whenever safety cannot be proven (see _build_cell_index).
        self.cell_index_enabled = switch_value("REPRO_CELL_INDEX") == "on"
        #: mobile_id -> candidate cell ids (stations it can ever hear).
        #: ``None`` means pruning is off; a missing key means that
        #: mobile could not be bounded and is never pruned.
        self._candidates: Optional[Dict[str, FrozenSet[str]]] = None
        self._index_horizon_s: Optional[float] = None
        #: mobile_id -> (codebook at index build, its peak gain): an
        #: exclusion consulted after a codebook swap re-validates the
        #: receive-gain bound the guard radius was derived from.
        self._codebook_guard: Dict[str, Tuple[object, float]] = {}

    # -------------------------------------------------------------- topology
    def add_station(self, station: BaseStation) -> BaseStation:
        """Register a base station (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add stations after start()")
        if station.cell_id in self._stations:
            raise ValueError(f"duplicate cell id {station.cell_id!r}")
        self._stations[station.cell_id] = station
        return station

    def add_mobile(self, mobile: Mobile) -> Mobile:
        """Register a mobile (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot add mobiles after start()")
        if mobile.mobile_id in self._mobiles:
            raise ValueError(f"duplicate mobile id {mobile.mobile_id!r}")
        self._mobiles[mobile.mobile_id] = mobile
        return mobile

    def station(self, cell_id: str) -> BaseStation:
        try:
            return self._stations[cell_id]
        except KeyError:
            raise KeyError(f"unknown cell {cell_id!r}") from None

    def mobile(self, mobile_id: str) -> Mobile:
        try:
            return self._mobiles[mobile_id]
        except KeyError:
            raise KeyError(f"unknown mobile {mobile_id!r}") from None

    @property
    def stations(self) -> List[BaseStation]:
        return list(self._stations.values())

    @property
    def mobiles(self) -> List[Mobile]:
        return list(self._mobiles.values())

    # ---------------------------------------------------------- cell index
    def _build_cell_index(self) -> None:
        """Derive per-mobile candidate cell sets, when provably safe.

        Self-disabling: any condition that would make pruning unsound
        (no link-budget inverse, unbounded trajectories, single cell)
        simply leaves :attr:`_candidates` as ``None`` / unpruned, so
        existing short-range deployments are untouched by construction.
        """
        self._candidates = None
        self._index_horizon_s = None
        self._codebook_guard = {}
        if not self.cell_index_enabled:
            return
        if len(self._stations) < 2 or not self._mobiles:
            return
        radius = guard_radius_m(
            self.channel, self._stations.values(), self._mobiles.values()
        )
        if radius is None:
            return
        index = CellIndex(self._stations.values(), bucket_m=max(radius, 1.0))
        horizon = self.config.horizon_s
        candidates: Dict[str, FrozenSet[str]] = {}
        all_cells = frozenset(self._stations)
        horizon_needed = False
        pruned_links = 0
        for mobile in self._mobiles.values():
            bound = mobile.trajectory.position_bound(None)
            if bound is None and horizon is not None:
                bound = mobile.trajectory.position_bound(horizon)
                if bound is not None:
                    horizon_needed = True
            if bound is None:
                continue  # unbounded: this mobile is never pruned
            center, reach = bound
            cells = index.within(center, reach + radius)
            if cells == all_cells:
                continue  # nothing pruned; skip the per-burst lookup
            candidates[mobile.mobile_id] = cells
            pruned_links += len(all_cells) - len(cells)
            self._codebook_guard[mobile.mobile_id] = (
                mobile.codebook, mobile.codebook.max_gain_dbi
            )
        if not candidates:
            return
        self._candidates = candidates
        if horizon_needed:
            self._index_horizon_s = horizon
        self.telemetry.incr("net.cell_index.pruned_links", pruned_links)
        _log.debug(
            "cell index: guard radius %.1fm, %d/%d mobiles bounded, "
            "%d links pruned",
            radius, len(candidates), len(self._mobiles), pruned_links,
        )

    def _excluded(self, station: BaseStation, mobile: Mobile, now_s: float) -> bool:
        """Whether the (station, mobile) channel evaluation is pruned."""
        candidates = self._candidates
        if candidates is None:
            return False
        cells = candidates.get(mobile.mobile_id)
        if cells is None or station.cell_id in cells:
            return False
        # An exclusion is live — re-validate the assumptions it rests on.
        if self._index_horizon_s is not None and now_s > self._index_horizon_s:
            raise RuntimeError(
                f"simulation time {now_s:.3f}s exceeds the cell-index "
                f"horizon {self._index_horizon_s:.3f}s with active spatial "
                f"exclusions; raise DeploymentConfig.horizon_s or set "
                f"REPRO_CELL_INDEX=off"
            )
        guard = self._codebook_guard.get(mobile.mobile_id)
        if guard is not None:
            codebook_ref, gain_bound = guard
            if (
                mobile.codebook is not codebook_ref
                and mobile.codebook.max_gain_dbi > gain_bound
            ):
                raise RuntimeError(
                    f"mobile {mobile.mobile_id!r} swapped to a codebook "
                    f"with peak gain {mobile.codebook.max_gain_dbi:.1f} dBi "
                    f"> the {gain_bound:.1f} dBi bound the spatial index "
                    f"was built with; set REPRO_CELL_INDEX=off"
                )
        return True

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin SSB burst delivery for every station.

        Each station joins the burst schedule at the SSB period,
        phase-offset per its own grid; every burst is offered to every
        mobile (the mobile's RF-chain arbitration decides what actually
        gets measured).  After a :meth:`stop`, calling :meth:`start`
        (or :meth:`run`) re-arms the tasks on the stations' *absolute*
        SSB schedules, so a stop/run cycle never drifts the burst grid.
        """
        if self._started:
            raise RuntimeError("deployment already started")
        self._started = True
        _log.debug(
            "start: %d stations, %d mobiles, t=%.3fs, sched=%s",
            len(self._stations), len(self._mobiles), self.sim.now,
            self.burst_sched,
        )
        self._build_cell_index()
        now = self.sim.now
        coalesced = self.burst_sched == "coalesced"
        if coalesced:
            self._burst_scheduler = BurstScheduler(self.sim, self._deliver_tick)
        for station in self._stations.values():
            # First burst: the next grid point at or after now — but
            # never one that already fired before a stop().  When a
            # stop/start cycle lands exactly on a grid point,
            # next_burst_start(now) is that (already delivered) point;
            # the resume time recorded at stop() skips past it.
            first = station.schedule.next_burst_start(now)
            resume = self._resume_at.get(station.cell_id)
            if resume is not None:
                first = max(first, station.schedule.next_burst_start(resume))
            if coalesced:
                self._burst_tasks[station.cell_id] = self._burst_scheduler.add(
                    station.frame.ssb_period_s,
                    station,
                    start_delay=first - now,
                    label=f"ssb.{station.cell_id}",
                )
            else:
                self._burst_tasks[station.cell_id] = PeriodicTask(
                    self.sim,
                    station.frame.ssb_period_s,
                    self._make_burst_handler(station),
                    start_delay=first - now,
                    label=f"ssb.{station.cell_id}",
                )

    # --------------------------------------------------- legacy scheduling
    def _make_burst_handler(self, station: BaseStation):
        def handle_burst() -> None:
            self.metrics.incr(f"bursts.{station.cell_id}")
            if self.fleet_batch and len(self._mobiles) > 1 and self.links.vectorized:
                self._deliver_burst_batch(station)
            else:
                with self.telemetry.span("net.burst_scalar"):
                    for mobile in self._mobiles.values():
                        self._deliver_burst_scalar(station, mobile)

        return handle_burst

    def _deliver_burst_batch(self, station: BaseStation) -> None:
        """Cross-user batched burst delivery for one station's burst.

        Three phases, each visiting mobiles in registration order —
        exactly the order the per-mobile loop uses: arbitration
        (listener beam choices, radio occupancy), one grid evaluation
        for the admitted non-pruned population, then listener delivery.
        """
        with self.telemetry.span("net.burst_batch"):
            now = self.sim.now
            admitted, requests = self._arbitrate_station(station, now)
            self.telemetry.observe("net.burst_batch_size", len(admitted))
            if not admitted:
                return
            measurements = self.links.measure_burst_batch(station, requests, now)
            self._deliver_measurements(station, admitted, measurements, now)

    # ------------------------------------------------ coalesced scheduling
    def _deliver_tick(self, stations: List[BaseStation]) -> None:
        """Deliver one coalesced tick: every station due right now.

        Stations arrive in scheduler registration order, which under
        legacy scheduling is exactly the order their same-time events
        would fire; per-station processing is identical to the legacy
        handlers, so the two modes consume RNG streams identically.
        """
        if self.fleet_batch and len(self._mobiles) > 1 and self.links.vectorized:
            self._deliver_tick_batch(stations)
        else:
            with self.telemetry.span("net.burst_scalar"):
                for station in stations:
                    self.metrics.incr(f"bursts.{station.cell_id}")
                    for mobile in self._mobiles.values():
                        self._deliver_burst_scalar(station, mobile)

    def _deliver_tick_batch(self, stations: List[BaseStation]) -> None:
        """Multi-station batched delivery for one coalesced tick.

        Arbitration runs station-by-station in tick order, then the
        whole tick's (station, user) link rows are evaluated in a
        single ``measure_burst_multi`` call, then listeners are
        notified in station-then-user order.

        The single-RF-chain check is hoisted out of the station loop:
        every station on the tick shares the same ``now``, and a
        mobile's busy window only ever *grows* (when it admits a
        burst), so a mobile busy at tick start skips the whole group —
        one counter bump instead of ``len(stations)`` arbitration
        calls — and a mobile that admits a station is busy for the
        group's remainder.  Listener ``choose_rx_beam`` calls happen
        for exactly the (station, mobile) pairs, in exactly the order,
        the per-station legacy events produce, and the skip counters
        commute, so runs are byte-identical to legacy scheduling.
        """
        with self.telemetry.span("net.burst_batch"):
            now = self.sim.now
            n_stations = len(stations)
            active: List[Mobile] = []
            for mobile in self._mobiles.values():
                if mobile._listener is None:
                    continue
                if mobile.radio_busy(now):
                    mobile.bursts_skipped_busy += n_stations
                else:
                    active.append(mobile)
            plan = []  # (station, admitted, group index or None)
            groups = []  # only stations with measured rows
            for index, station in enumerate(stations):
                self.metrics.incr(f"bursts.{station.cell_id}")
                admitted = []
                measured = []
                if active:
                    cell_id = station.cell_id
                    burst_s = station.schedule.burst_duration_s()
                    remaining = n_stations - index - 1
                    still_active: List[Mobile] = []
                    for mobile in active:
                        rx_beam = mobile._listener.choose_rx_beam(cell_id, now)
                        if rx_beam is None:
                            mobile.bursts_declined += 1
                            still_active.append(mobile)
                            continue
                        mobile.occupy_radio(now, burst_s)
                        if burst_s > 0.0:
                            # Busy for the rest of the group: account the
                            # per-station skips the legacy events would.
                            mobile.bursts_skipped_busy += remaining
                        else:  # zero-length burst never occupies the chain
                            still_active.append(mobile)
                        if self._excluded(station, mobile, now):
                            admitted.append((mobile, rx_beam, None))
                        else:
                            admitted.append((mobile, rx_beam, len(measured)))
                            measured.append((mobile, rx_beam))
                    active = still_active
                self.telemetry.observe("net.burst_batch_size", len(admitted))
                if not admitted:
                    continue
                if measured:
                    plan.append((station, admitted, len(groups)))
                    groups.append(
                        (station, self._measure_requests(measured, now))
                    )
                else:  # every admitted link spatially pruned
                    plan.append((station, admitted, None))
            results = (
                self.links.measure_burst_multi(groups, now) if groups else []
            )
            for station, admitted, group in plan:
                measurements = results[group] if group is not None else ()
                self._deliver_measurements(station, admitted, measurements, now)

    # ------------------------------------------------------ shared delivery
    def _arbitrate_station(self, station: BaseStation, now: float):
        """Arbitration pass for one station's burst.

        Returns ``(admitted, requests)``: every admitted
        ``(mobile, rx_beam, measure_index)`` in registration order —
        ``measure_index`` is ``None`` for spatially pruned links — and
        the link-engine request rows for the measured subset.
        """
        admitted = []
        measured = []
        for mobile in self._mobiles.values():
            rx_beam = mobile.begin_burst(station, now)
            if rx_beam is None:
                continue
            if self._excluded(station, mobile, now):
                admitted.append((mobile, rx_beam, None))
            else:
                admitted.append((mobile, rx_beam, len(measured)))
                measured.append((mobile, rx_beam))
        return admitted, self._measure_requests(measured, now)

    @staticmethod
    def _measure_requests(measured, now: float):
        """Link-engine request rows for the measured (mobile, beam) pairs."""
        if not measured:
            return []
        poses = sample_poses([mobile.trajectory for mobile, _ in measured], now)
        return [
            (mobile.mobile_id, pose, mobile.rx_gain_fn(now, pose), rx_beam)
            for (mobile, rx_beam), pose in zip(measured, poses)
        ]

    def _deliver_measurements(
        self, station: BaseStation, admitted, measurements, now: float
    ) -> None:
        """Listener delivery in arbitration order, synthesizing the
        (provably empty) measurement for spatially pruned links."""
        for mobile, rx_beam, index in admitted:
            if index is None:
                mobile.complete_burst(
                    RssMeasurement(now, station.cell_id, rx_beam)
                )
            else:
                mobile.complete_burst(measurements[index])

    def _deliver_burst_scalar(self, station: BaseStation, mobile: Mobile) -> None:
        """Per-mobile reference delivery (one station, one mobile).

        Same flow as :meth:`Mobile.deliver_burst` plus the spatial
        pruning branch, which skips only the channel evaluation.
        """
        now = self.sim.now
        rx_beam = mobile.begin_burst(station, now)
        if rx_beam is None:
            return
        if self._excluded(station, mobile, now):
            mobile.complete_burst(RssMeasurement(now, station.cell_id, rx_beam))
            return
        pose = mobile.pose_at(now)
        measurement = self.links.measure_burst(
            station,
            mobile.mobile_id,
            pose,
            mobile.rx_gain_fn(now, pose),
            rx_beam,
            now,
        )
        mobile.complete_burst(measurement)

    def run(self, duration_s: float) -> None:
        """Start (if needed) and advance simulated time by ``duration_s``.

        A stopped deployment re-arms its burst tasks here, so
        ``run(); stop(); run()`` keeps delivering bursts (on the
        original absolute schedule) instead of silently advancing time
        with zero bursts.
        """
        if not self._started:
            self.start()
        self.sim.run_until(self.sim.now + duration_s)

    def stop(self) -> None:
        """Stop all burst tasks (the simulator itself can keep running).

        Clears the started flag so a subsequent :meth:`run` re-arms
        burst delivery rather than running a burst-less clock, and
        records each station's next unfired burst so the restart never
        delivers a boundary burst twice.  Tasks are keyed by cell id,
        so resume times survive any registration/teardown ordering.
        """
        for cell_id, task in self._burst_tasks.items():
            self._resume_at[cell_id] = task.next_fire_s
            task.stop()
        self._burst_tasks.clear()
        self._burst_scheduler = None
        self._started = False
        _log.debug("stop: t=%.3fs, %d events fired",
                   self.sim.now, self.sim.events_fired)
