"""Spatial cell index: prune provably-undetectable links in dense grids.

In a dense corridor every SSB burst is offered to every mobile, but at
mm-wave path-loss exponents a station a few hundred meters away cannot
put a single dwell above the detection threshold no matter how the
random channel terms land.  This module turns that link-budget fact
into a *provable* guard radius and a uniform spatial hash over station
positions, so burst delivery can skip the channel evaluation for
(station, mobile) pairs that are out of range for the whole run.

The pruning is conservative by construction:

* the transmit side is bounded by the loudest station's EIRP
  (``tx_power_dbm`` + its codebook's peak gain);
* the receive side by the largest peak gain of any mobile codebook;
* shadowing and small-scale fading are bounded at ``tail_sigma``
  standard normal deviations (default 12 — a per-draw violation
  probability of ~4e-33, i.e. never over any simulable run);
* blockage only ever attenuates, so it is bounded by zero;
* the path-loss inverse (:meth:`PathLossModel.max_distance_for_loss`)
  is itself conservative, and models without an inverse disable
  pruning entirely (``guard_radius_m`` returns ``None``).

A pair excluded by the index therefore cannot produce an above-floor
measurement, and skipping its channel evaluation leaves every RNG
stream and artifact byte-identical (excluded links never materialize
per-link streams at all — stream creation is keyed by link id, not
creation order).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.geometry.vectors import Vec3
from repro.phy.channel import Channel

#: Default tail bound, in standard normal deviations, applied to the
#: shadowing and fading draws when deriving the guard radius.  The
#: two-sided exceedance probability of a single draw is ~3.6e-33; a
#: run of a billion dwells stays under 1e-23.
DEFAULT_TAIL_SIGMA = 12.0


def fading_gain_bound_db(rician_k_db: Optional[float], tail_sigma: float) -> float:
    """Upper bound on the Rician envelope-power gain, in dB.

    Mirrors :class:`repro.phy.fading.RicianFading`'s parameterization:
    with both I/Q normals bounded at ``tail_sigma``, the envelope power
    cannot exceed ``(a + s*t)^2 + (s*t)^2``.  ``None`` (fading
    disabled) bounds at 0 dB exactly.
    """
    if rician_k_db is None:
        return 0.0
    k = 10.0 ** (rician_k_db / 10.0)
    los = math.sqrt(k / (k + 1.0))
    sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
    in_phase = los + sigma * tail_sigma
    quadrature = sigma * tail_sigma
    power = in_phase * in_phase + quadrature * quadrature
    return 10.0 * math.log10(max(power, 1.0))


def guard_radius_m(
    channel: Channel,
    stations: Iterable,
    mobiles: Iterable,
    tail_sigma: float = DEFAULT_TAIL_SIGMA,
) -> Optional[float]:
    """Distance beyond which no (station, mobile) dwell can detect.

    One global radius over the whole population: the loudest possible
    transmit side, the most sensitive receive side, and a
    ``tail_sigma``-bounded allowance for every random channel term.
    Returns ``None`` when pruning cannot be proven safe — no stations
    or mobiles, a path-loss model without a conservative inverse, or a
    station without a link budget.

    The bound assumes detection is decided against each station's own
    ``link_budget.detection_snr_db`` (what the deployment burst paths
    use); callers overriding the threshold per call must not prune.
    """
    stations = list(stations)
    mobiles = list(mobiles)
    if not stations or not mobiles:
        return None
    for station in stations:
        if station.link_budget is None:
            return None
    max_eirp_dbm = max(
        station.tx_power_dbm + station.codebook.max_gain_dbi
        for station in stations
    )
    max_rx_gain_dbi = max(mobile.codebook.max_gain_dbi for mobile in mobiles)
    min_required_dbm = min(
        station.link_budget.noise_floor_dbm + station.link_budget.detection_snr_db
        for station in stations
    )
    margin_db = (
        tail_sigma * channel.config.shadowing_sigma_db
        + fading_gain_bound_db(channel.config.rician_k_db, tail_sigma)
    )
    loss_needed_db = max_eirp_dbm + max_rx_gain_dbi + margin_db - min_required_dbm
    if loss_needed_db <= 0.0:
        # The budget cannot close even at zero loss; one radius of 0
        # would prune everything, which is exactly right.
        return 0.0
    return channel.pathloss.max_distance_for_loss(loss_needed_db)


class CellIndex:
    """Uniform spatial hash over base-station positions.

    Buckets stations into an xy grid of ``bucket_m``-sized squares;
    :meth:`within` gathers the buckets overlapping a query disc and
    filters by exact 3-D distance, so results are independent of the
    bucket size (which only affects query cost).
    """

    def __init__(self, stations: Iterable, bucket_m: float) -> None:
        if bucket_m <= 0.0:
            raise ValueError(f"bucket size must be positive, got {bucket_m!r}")
        self._bucket_m = bucket_m
        self._buckets: Dict[Tuple[int, int], List[Tuple[str, Vec3]]] = {}
        self._count = 0
        for station in stations:
            position = station.pose.position
            key = self._key(position)
            self._buckets.setdefault(key, []).append(
                (station.cell_id, position)
            )
            self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_m(self) -> float:
        return self._bucket_m

    def _key(self, position: Vec3) -> Tuple[int, int]:
        return (
            math.floor(position.x / self._bucket_m),
            math.floor(position.y / self._bucket_m),
        )

    def within(self, center: Vec3, radius_m: float) -> FrozenSet[str]:
        """Cell ids of stations within ``radius_m`` of ``center`` (3-D)."""
        if radius_m < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        size = self._bucket_m
        x_lo = math.floor((center.x - radius_m) / size)
        x_hi = math.floor((center.x + radius_m) / size)
        y_lo = math.floor((center.y - radius_m) / size)
        y_hi = math.floor((center.y + radius_m) / size)
        buckets = self._buckets
        hits: List[str] = []
        for ix in range(x_lo, x_hi + 1):
            for iy in range(y_lo, y_hi + 1):
                members = buckets.get((ix, iy))
                if not members:
                    continue
                for cell_id, position in members:
                    if center.distance_to(position) <= radius_m:
                        hits.append(cell_id)
        return frozenset(hits)
