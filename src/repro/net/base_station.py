"""Base-station node.

A base station:

* occupies a fixed pose with a sector transmit codebook;
* sweeps its codebook every SSB period (the burst events are delivered
  to mobiles by the :class:`~repro.net.deployment.Deployment` wiring);
* maintains one serving transmit beam per connected mobile and performs
  *cell-assisted beam management* (the CABM state of Fig. 2b): on a
  mobile's request it refines its transmit beam by one adjacent hop —
  the outcome of the NR P-2 style refinement sweep the request triggers;
* detects RACH preambles and answers them (delegated to
  :class:`~repro.net.random_access.RandomAccessProcedure`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.geometry.angles import angular_distance
from repro.geometry.pose import Pose
from repro.phy.codebook import Codebook
from repro.phy.frame import FrameConfig, SsbSchedule
from repro.phy.link import LinkBudget


class BaseStation:
    """A fixed mm-wave cell site.

    Parameters
    ----------
    cell_id:
        Unique identifier (e.g. ``"cellA"``).
    pose:
        Site location and sector boresight heading.
    codebook:
        Transmit codebook (body frame).
    tx_power_dbm:
        Per-beam transmit power.
    frame:
        SSB timing configuration.
    ssb_phase_s:
        This cell's burst phase within the SSB period.  Neighboring
        cells are not burst-aligned; staggering also lets a one-RF-chain
        mobile measure several cells in one period.
    """

    def __init__(
        self,
        cell_id: str,
        pose: Pose,
        codebook: Codebook,
        tx_power_dbm: float = 10.0,
        frame: Optional[FrameConfig] = None,
        ssb_phase_s: float = 0.0,
        link_budget: Optional[LinkBudget] = None,
    ) -> None:
        if not cell_id:
            raise ValueError("cell_id must be non-empty")
        self.cell_id = cell_id
        self.pose = pose
        self.codebook = codebook
        self.tx_power_dbm = tx_power_dbm
        self.frame = frame or FrameConfig()
        self.schedule = SsbSchedule(self.frame, len(codebook), ssb_phase_s)
        self.link_budget = link_budget or LinkBudget()
        #: Serving transmit beam per connected mobile id.
        self._serving_tx_beam: Dict[str, int] = {}

    # ------------------------------------------------------------ geometry
    def tx_gain_dbi(self, beam_index: int, target_world_azimuth: float) -> float:
        """Gain of ``beam_index`` toward a world-frame azimuth."""
        body_azimuth = self.pose.world_to_body(target_world_azimuth)
        return self.codebook.gain_dbi(beam_index, body_azimuth)

    def tx_gains_dbi(
        self, target_world_azimuth: float, beam_indices=None
    ):
        """Gains of every codebook beam (or of ``beam_indices``) toward
        one world-frame azimuth, as a float64 array.

        The batch counterpart of :meth:`tx_gain_dbi`: the frame
        conversion happens once and the codebook evaluates all beams in
        one array op.  Element ``k`` is bit-identical to
        ``tx_gain_dbi(k, ...)`` — the vectorized burst path relies on
        this.
        """
        body_azimuth = self.pose.world_to_body(target_world_azimuth)
        return self.codebook.gains_dbi(body_azimuth, beam_indices)

    def tx_gains_grid_dbi(self, target_world_azimuths, beam_indices=None):
        """Per-beam gains toward many world-frame azimuths: a ``(U, B)``
        float64 grid, one row per target azimuth.

        The cross-user counterpart of :meth:`tx_gains_dbi`: the frame
        conversion stays scalar per target (bit-identical to the
        per-mobile path) while the codebook evaluates the whole
        users x beams grid in one array op per pattern.  Row ``u`` is
        bit-identical to ``tx_gains_dbi(target_world_azimuths[u], ...)``.
        """
        body_azimuths = [
            self.pose.world_to_body(azimuth) for azimuth in target_world_azimuths
        ]
        return self.codebook.gains_grid_dbi(body_azimuths, beam_indices)

    def best_tx_beam_towards(self, target_world_azimuth: float) -> int:
        """Codebook beam whose boresight is closest to the target azimuth."""
        body_azimuth = self.pose.world_to_body(target_world_azimuth)
        return self.codebook.best_beam_towards(body_azimuth).index

    # ----------------------------------------------------------- connections
    def attach(self, mobile_id: str, tx_beam: int) -> None:
        """Register a connected mobile on a serving transmit beam."""
        self.codebook._check_index(tx_beam)
        self._serving_tx_beam[mobile_id] = tx_beam

    def detach(self, mobile_id: str) -> None:
        """Remove a mobile's serving context (no-op when absent)."""
        self._serving_tx_beam.pop(mobile_id, None)

    def is_attached(self, mobile_id: str) -> bool:
        return mobile_id in self._serving_tx_beam

    def serving_tx_beam(self, mobile_id: str) -> int:
        """Current serving transmit beam for ``mobile_id``."""
        try:
            return self._serving_tx_beam[mobile_id]
        except KeyError:
            raise KeyError(
                f"mobile {mobile_id!r} is not attached to {self.cell_id}"
            ) from None

    def refine_tx_beam(self, mobile_id: str, mobile_world_azimuth: float) -> int:
        """Cell-assisted transmit-beam refinement (one adjacent hop).

        Models the P-2 refinement sweep triggered by a BeamSurfer
        request: among the current beam and its two directional
        neighbors, select the one best pointed at the mobile's actual
        bearing, and make it the serving beam.  The move is limited to
        one hop per request — a sweep only covers the adjacent beams.

        Returns the (possibly unchanged) serving beam index.
        """
        current = self.serving_tx_beam(mobile_id)
        body_azimuth = self.pose.world_to_body(mobile_world_azimuth)
        candidates = [current] + self.codebook.adjacent_indices(current)
        best = min(
            candidates,
            key=lambda idx: angular_distance(
                self.codebook[idx].boresight_rad, body_azimuth
            ),
        )
        self._serving_tx_beam[mobile_id] = best
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BaseStation({self.cell_id} @ ({self.pose.position.x:.1f}, "
            f"{self.pose.position.y:.1f}), {len(self.codebook)} beams)"
        )
