"""Network substrate: base stations, mobiles, links, random access, handover.

This package turns the PHY substrate into running network machinery:
base stations sweep SSB bursts on the simulator's event loop, the mobile
holds one receive beam per burst and feeds the resulting measurements to
its attached protocol, uplink messages succeed or fail on the link
budget, and the four-step random-access procedure plays out in simulated
time.  Soft vs. hard handover is decided by what the protocol managed to
keep aligned when the serving link finally failed.
"""

from repro.net.base_station import BaseStation
from repro.net.connection import ConnectionContext, ConnectionState
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.handover import HandoverOutcome, HandoverRecord
from repro.net.link_engine import LinkEngine
from repro.net.mobile import BurstListener, Mobile
from repro.net.random_access import RandomAccessProcedure, RachOutcome

__all__ = [
    "BaseStation",
    "BurstListener",
    "ConnectionContext",
    "ConnectionState",
    "Deployment",
    "DeploymentConfig",
    "HandoverOutcome",
    "HandoverRecord",
    "LinkEngine",
    "Mobile",
    "RachOutcome",
    "RandomAccessProcedure",
]
