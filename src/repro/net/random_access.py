"""Four-step random access (RACH) played out on the event loop.

The procedure is the paper's moment of truth: the mobile has silently
tracked a neighbor-cell beam, and now every message — preamble (msg1),
random-access response (msg2), scheduled uplink (msg3), contention
resolution (msg4) — must traverse the air on the beams the tracker kept
aligned.  Beams are *re-queried at every message time* via provider
callbacks, so a tracker that lets the beam drift mid-procedure loses
messages and pays retries, exactly as on the testbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.phy.frame import RachConfig
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

#: Correlation gain of the long preamble sequence relative to data
#: decoding (dB).  Lets msg1 get through at SNRs where data would not.
PREAMBLE_PROCESSING_GAIN_DB = 6.0


class RachOutcome(enum.Enum):
    SUCCESS = "success"
    FAILURE = "failure"


@dataclass(frozen=True)
class RachResult:
    """Final outcome of one random-access procedure."""

    outcome: RachOutcome
    attempts: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def succeeded(self) -> bool:
        return self.outcome is RachOutcome.SUCCESS


class RandomAccessProcedure:
    """One mobile's RACH toward one target cell.

    Parameters
    ----------
    mobile_beam_provider:
        ``f() -> Optional[int]`` — the receive/transmit beam the
        protocol currently holds toward the target cell.  ``None`` means
        the beam has been lost; the pending message fails outright.
    station_beam_provider:
        ``f() -> Optional[int]`` — the target-cell transmit beam the
        mobile last detected (the RACH occasion is SSB-mapped, so the
        base station listens on that beam).
    on_complete:
        ``f(result: RachResult) -> None`` callback.
    """

    def __init__(
        self,
        sim: Simulator,
        link_engine: LinkEngine,
        station: BaseStation,
        mobile: Mobile,
        config: RachConfig,
        mobile_beam_provider: Callable[[], Optional[int]],
        station_beam_provider: Callable[[], Optional[int]],
        on_complete: Callable[[RachResult], None],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self._sim = sim
        self._links = link_engine
        self._station = station
        self._mobile = mobile
        self._config = config
        self._mobile_beam = mobile_beam_provider
        self._station_beam = station_beam_provider
        self._on_complete = on_complete
        # Explicit None check: an empty TraceRecorder is falsy (it has
        # __len__), so `trace or default` would silently drop it.
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._attempts = 0
        self._start_s: Optional[float] = None
        self._finished = False

    @property
    def attempts(self) -> int:
        return self._attempts

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin the procedure at the next RACH occasion."""
        if self._start_s is not None:
            raise RuntimeError("random access procedure already started")
        self._start_s = self._sim.now
        self._schedule_attempt(self._config.next_occasion(self._sim.now))

    def _schedule_attempt(self, occasion_s: float) -> None:
        delay = max(0.0, occasion_s - self._sim.now)
        self._sim.schedule(delay, self._send_msg1, label="rach.msg1")

    def _emit(self, category: str, **data) -> None:
        self._trace.emit(self._sim.now, category, self._mobile.mobile_id, **data)

    # ------------------------------------------------------------- messages
    def _beams(self) -> Optional[tuple]:
        mobile_beam = self._mobile_beam()
        station_beam = self._station_beam()
        if mobile_beam is None or station_beam is None:
            return None
        return mobile_beam, station_beam

    def _send_msg1(self) -> None:
        if self._finished:
            return
        self._attempts += 1
        beams = self._beams()
        now = self._sim.now
        if beams is None:
            self._emit("rach.msg1", attempt=self._attempts, result="no-beam")
            self._retry()
            return
        mobile_beam, station_beam = beams
        heard = self._links.uplink_success(
            self._station,
            self._mobile.mobile_id,
            self._mobile.pose_at(now),
            self._mobile.rx_gain_fn(now),
            mobile_beam,
            station_beam,
            now,
            extra_margin_db=PREAMBLE_PROCESSING_GAIN_DB,
        )
        self._emit(
            "rach.msg1",
            attempt=self._attempts,
            result="heard" if heard else "lost",
            mobile_beam=mobile_beam,
            station_beam=station_beam,
        )
        if heard:
            self._sim.schedule(
                self._config.response_delay_s, self._send_msg2, label="rach.msg2"
            )
        else:
            # The mobile cannot observe the loss directly; it waits out
            # the response window before retrying.
            self._sim.schedule(
                self._config.response_window_s, self._retry, label="rach.timeout"
            )

    def _send_msg2(self) -> None:
        if self._finished:
            return
        beams = self._beams()
        now = self._sim.now
        if beams is None:
            self._emit("rach.msg2", result="no-beam")
            self._sim.schedule(
                max(0.0, self._config.response_window_s - self._config.response_delay_s),
                self._retry,
                label="rach.timeout",
            )
            return
        mobile_beam, station_beam = beams
        received = self._links.downlink_success(
            self._station,
            self._mobile.mobile_id,
            self._mobile.pose_at(now),
            self._mobile.rx_gain_fn(now),
            mobile_beam,
            station_beam,
            now,
        )
        self._emit("rach.msg2", result="received" if received else "lost")
        if received:
            self._sim.schedule(
                self._config.msg3_delay_s, self._send_msg3, label="rach.msg3"
            )
        else:
            self._sim.schedule(
                max(0.0, self._config.response_window_s - self._config.response_delay_s),
                self._retry,
                label="rach.timeout",
            )

    def _send_msg3(self) -> None:
        if self._finished:
            return
        beams = self._beams()
        now = self._sim.now
        if beams is None:
            self._emit("rach.msg3", result="no-beam")
            self._retry()
            return
        mobile_beam, station_beam = beams
        heard = self._links.uplink_success(
            self._station,
            self._mobile.mobile_id,
            self._mobile.pose_at(now),
            self._mobile.rx_gain_fn(now),
            mobile_beam,
            station_beam,
            now,
        )
        self._emit("rach.msg3", result="heard" if heard else "lost")
        if heard:
            self._sim.schedule(
                self._config.msg4_delay_s, self._send_msg4, label="rach.msg4"
            )
        else:
            self._retry()

    def _send_msg4(self) -> None:
        if self._finished:
            return
        beams = self._beams()
        now = self._sim.now
        if beams is None:
            self._emit("rach.msg4", result="no-beam")
            self._retry()
            return
        mobile_beam, station_beam = beams
        received = self._links.downlink_success(
            self._station,
            self._mobile.mobile_id,
            self._mobile.pose_at(now),
            self._mobile.rx_gain_fn(now),
            mobile_beam,
            station_beam,
            now,
        )
        self._emit("rach.msg4", result="received" if received else "lost")
        if received:
            self._finish(RachOutcome.SUCCESS)
        else:
            self._retry()

    # -------------------------------------------------------------- control
    def _retry(self) -> None:
        if self._finished:
            return
        if self._attempts >= self._config.max_attempts:
            self._finish(RachOutcome.FAILURE)
            return
        backoff = self._config.backoff_occasions * self._config.occasion_period_s
        next_occasion = self._config.next_occasion(self._sim.now + backoff)
        self._schedule_attempt(next_occasion)

    def _finish(self, outcome: RachOutcome) -> None:
        if self._finished:
            return
        self._finished = True
        result = RachResult(outcome, self._attempts, self._start_s, self._sim.now)
        self._emit(
            "rach.complete",
            outcome=outcome.value,
            attempts=self._attempts,
            duration_s=result.duration_s,
        )
        self._on_complete(result)
