"""Link engine: binds nodes, beams and the channel into dwell outcomes.

The single place where geometry, codebooks and the statistical channel
meet.  Three operations cover everything the protocols need:

* :meth:`LinkEngine.measure_burst` — the mobile holds one receive beam
  through a cell's SSB burst; the engine evaluates every transmit dwell
  and reports the best detected SSB (or a non-detection).
* :meth:`LinkEngine.downlink_rss` — RSS of a single directed downlink
  transmission (msg2/msg4, serving data) on given beams.
* :meth:`LinkEngine.uplink_success` — Bernoulli decode of an uplink
  message (BeamSurfer switch request, RACH preamble, msg3) using beam
  reciprocity: the mobile transmits on the antenna weights of its
  current receive beam, the base station listens on its serving/detected
  beam.

Bursts are evaluated on the vectorized batch path by default
(:meth:`~repro.phy.channel.Channel.burst_rss_dbm` + batched codebook
gains + argmax-over-threshold selection); the scalar per-dwell loop is
kept as the reference implementation, selectable via the ``vectorized``
attribute or the ``REPRO_BURST_PATH=scalar`` environment variable.
Both paths consume identical RNG draws and produce bit-identical
measurements, so switching paths never changes an artifact — only the
wall clock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.pose import Pose
from repro.measure.report import RssMeasurement
from repro.net.base_station import BaseStation
from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import wall_clock
from repro.phy.channel import Channel
from repro.sim.rng import RngRegistry
from repro.util.switches import switch_value


class LinkEngine:
    """Evaluates dwell/message outcomes over the shared channel.

    Draw-order contract
    -------------------
    Reproducibility across refactors rests on every path consuming RNG
    draws in a fixed, documented order:

    * The decode stream backs *both* :meth:`uplink_success` and
      :meth:`downlink_success` — exactly one uniform draw per decode
      attempt, in call order.  By default all links share one stream
      (registry key ``"uplink"``, kept for seed compatibility with
      existing traces).  With ``per_link_decode=True`` each link draws
      from its own stream (key ``"decode/{link_id}"``) so one user's
      decode attempts never perturb another's — the property that makes
      a fleet population separable into shards with byte-identical
      per-user results (see :mod:`repro.fleet`).
    * A measured burst of ``n`` dwells consumes, from the link's own
      streams and in this order: ``n`` shadowing normals (one real
      innovation, ``n - 1`` zero-innovation draws at the shared burst
      pose), the blockage renewal draws needed to extend the timeline
      past the burst timestamp, then ``2n`` interleaved I/Q fading
      normals.  The scalar and vectorized burst paths consume
      identically.
    """

    def __init__(
        self,
        channel: Channel,
        rng_registry: RngRegistry,
        per_link_decode: bool = False,
    ) -> None:
        self.channel = channel
        self._rng_registry = rng_registry
        self._per_link_decode = per_link_decode
        self._decode_rng: Optional[np.random.Generator] = (
            None if per_link_decode else rng_registry.stream("uplink")
        )
        #: Uplink transmit power of the mobile, dBm.  Handsets run well
        #: below the base station's EIRP.
        self.mobile_tx_power_dbm = 5.0
        #: Burst-evaluation path; the scalar reference loop exists for
        #: perf comparison and equivalence tests.
        self.vectorized = switch_value("REPRO_BURST_PATH") != "scalar"
        # Ambient telemetry: burst evaluation is the wall-clock hot
        # path, so spans are dispatched behind an ``enabled`` check.
        self._telemetry = _telemetry.current()

    def _decode_stream(self, link: str) -> np.random.Generator:
        if self._per_link_decode:
            return self._rng_registry.stream(f"decode/{link}")
        return self._decode_rng

    @staticmethod
    def link_id(cell_id: str, mobile_id: str) -> str:
        """Canonical per-(cell, mobile) channel-state key.

        Up/downlink share one id: large-scale fading is reciprocal.
        """
        return f"{cell_id}|{mobile_id}"

    # -------------------------------------------------------------- downlink
    def measure_burst(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ) -> RssMeasurement:
        """Evaluate one SSB burst heard with a fixed receive beam.

        Parameters
        ----------
        rx_gain_fn:
            ``f(rx_beam, world_azimuth) -> dBi`` — the mobile's receive
            gain toward a world-frame azimuth (accounts for device
            heading).
        detection_snr_db:
            Override of the station link budget's detection threshold.

        Returns the best-detected SSB as a measurement; tx_beam/rss are
        ``None`` when no dwell cleared the detection threshold.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            return self._measure_burst_impl(
                station, mobile_id, mobile_pose, rx_gain_fn, rx_beam,
                time_s, detection_snr_db,
            )
        started = wall_clock()
        try:
            return self._measure_burst_impl(
                station, mobile_id, mobile_pose, rx_gain_fn, rx_beam,
                time_s, detection_snr_db,
            )
        finally:
            telemetry.record_span("phy.measure_burst", started, wall_clock())
            telemetry.incr("phy.bursts_measured")

    def _measure_burst_impl(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ) -> RssMeasurement:
        budget = station.link_budget
        threshold = (
            budget.detection_snr_db if detection_snr_db is None else detection_snr_db
        )
        bearing_to_mobile = station.pose.bearing_to(mobile_pose.position)
        bearing_to_station = mobile_pose.bearing_to(station.pose.position)
        rx_gain = rx_gain_fn(rx_beam, bearing_to_station)
        link = self.link_id(station.cell_id, mobile_id)
        beams = station.schedule.beams_in_burst()
        if not self.vectorized:
            return self._measure_burst_scalar(
                station, mobile_pose, link, beams, bearing_to_mobile,
                rx_gain, rx_beam, time_s, budget, threshold,
            )
        # One batch gain evaluation for the burst's sweep order; passing
        # the beam list keeps the mapping correct even for a schedule
        # that sweeps a subset or reorders the codebook.
        tx_gains = station.tx_gains_dbi(bearing_to_mobile, beams)
        rss = self.channel.burst_rss_dbm(
            link,
            time_s,
            station.pose,
            mobile_pose,
            tx_gains,
            rx_gain,
            station.tx_power_dbm,
        )
        detected = np.flatnonzero(rss - budget.noise_floor_dbm >= threshold)
        if detected.size == 0:
            return RssMeasurement(time_s, station.cell_id, rx_beam)
        # Argmax over the detected dwells; ties resolve to the earliest
        # dwell, matching the scalar loop's strict-improvement scan.
        best = int(detected[np.argmax(rss[detected])])
        best_rss = float(rss[best])
        return RssMeasurement(
            time_s,
            station.cell_id,
            rx_beam,
            tx_beam=beams[best],
            rss_dbm=best_rss,
            snr_db=budget.snr_db(best_rss),
        )

    def measure_burst_batch(
        self,
        station: BaseStation,
        requests,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ):
        """Evaluate one SSB burst for a whole population in one pass.

        ``requests`` is a sequence of ``(mobile_id, mobile_pose,
        rx_gain_fn, rx_beam)`` tuples — one entry per radio-eligible
        mobile, in delivery order.  The burst's sweep is evaluated as a
        ``(users, dwells)`` grid: one codebook array op covers every
        user's transmit gains, one :meth:`Channel.burst_rss_grid_dbm`
        call covers every link's RSS, and detection + argmax run on the
        grid.  Per-link RNG draws happen per user in request order from
        that link's own streams, so the returned measurements — and the
        stream states left behind — are bit-identical to calling
        :meth:`measure_burst` per request in the same order.

        Returns one :class:`RssMeasurement` per request, in order.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            return self._measure_burst_batch_impl(
                station, requests, time_s, detection_snr_db
            )
        started = wall_clock()
        try:
            return self._measure_burst_batch_impl(
                station, requests, time_s, detection_snr_db
            )
        finally:
            telemetry.record_span(
                "phy.measure_burst_batch", started, wall_clock()
            )
            telemetry.incr("phy.bursts_measured", len(requests))

    def _measure_burst_batch_impl(
        self,
        station: BaseStation,
        requests,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ):
        budget = station.link_budget
        threshold = (
            budget.detection_snr_db if detection_snr_db is None else detection_snr_db
        )
        beams = station.schedule.beams_in_burst()
        if not requests:
            return []
        # Per-user scalar geometry: bearings, rx gain and the body-frame
        # conversion stay on the exact scalar ops the per-mobile path
        # uses (O(users), cheap); only the users x dwells work batches.
        bearings_to_mobile = []
        rx_gains = []
        link_ids = []
        poses = []
        for mobile_id, mobile_pose, rx_gain_fn, rx_beam in requests:
            bearings_to_mobile.append(station.pose.bearing_to(mobile_pose.position))
            rx_gains.append(
                rx_gain_fn(rx_beam, mobile_pose.bearing_to(station.pose.position))
            )
            link_ids.append(self.link_id(station.cell_id, mobile_id))
            poses.append(mobile_pose)
        tx_gains = station.tx_gains_grid_dbi(bearings_to_mobile, beams)
        rss = self.channel.burst_rss_grid_dbm(
            link_ids,
            time_s,
            station.pose,
            poses,
            tx_gains,
            np.asarray(rx_gains, dtype=float),
            station.tx_power_dbm,
        )
        detected = rss - budget.noise_floor_dbm >= threshold
        any_detected = detected.any(axis=1)
        # Argmax over the detected dwells only; ties resolve to the
        # earliest dwell exactly like the per-mobile paths.
        best = np.argmax(np.where(detected, rss, -np.inf), axis=1)
        measurements = []
        for u, (mobile_id, mobile_pose, rx_gain_fn, rx_beam) in enumerate(requests):
            if not any_detected[u]:
                measurements.append(
                    RssMeasurement(time_s, station.cell_id, rx_beam)
                )
                continue
            best_rss = float(rss[u, best[u]])
            measurements.append(
                RssMeasurement(
                    time_s,
                    station.cell_id,
                    rx_beam,
                    tx_beam=beams[int(best[u])],
                    rss_dbm=best_rss,
                    snr_db=budget.snr_db(best_rss),
                )
            )
        return measurements

    def measure_burst_multi(
        self,
        groups,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ):
        """Evaluate several stations' same-tick bursts in one pass.

        ``groups`` is a sequence of ``(station, requests)`` pairs in
        delivery order, each ``requests`` shaped exactly like
        :meth:`measure_burst_batch`'s.  The whole tick becomes one
        ``(rows, max_dwells)`` grid — one row per (station, user) link,
        station-major / user-minor, short bursts padded with ``-inf``
        transmit gain — evaluated by a single
        :meth:`Channel.burst_rss_rows_dbm` call.  Because the row order
        equals the order of the per-station grid calls it replaces,
        every per-link RNG stream is left in the identical state and the
        measurements are bit-identical to calling
        :meth:`measure_burst_batch` once per group, in order.

        Returns one list of :class:`RssMeasurement` per group, each in
        its requests' order.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            return self._measure_burst_multi_impl(groups, time_s, detection_snr_db)
        started = wall_clock()
        try:
            return self._measure_burst_multi_impl(groups, time_s, detection_snr_db)
        finally:
            telemetry.record_span(
                "phy.measure_burst_multi", started, wall_clock()
            )
            telemetry.incr(
                "phy.bursts_measured", sum(len(r) for _, r in groups)
            )

    def _measure_burst_multi_impl(
        self,
        groups,
        time_s: float,
        detection_snr_db: Optional[float] = None,
    ):
        metas = []
        row_link_ids = []
        row_tx_poses = []
        row_rx_poses = []
        row_rx_gains = []
        row_tx_powers = []
        row_dwells = []
        group_gains = []
        max_dwells = 0
        for station, requests in groups:
            if not requests:
                # Dense-tick common case: most stations on a coalesced
                # tick have no admitted measurements, so skip the beam /
                # budget lookups entirely.
                group_gains.append(None)
                metas.append((station, requests, None, None, None))
                continue
            beams = station.schedule.beams_in_burst()
            budget = station.link_budget
            threshold = (
                budget.detection_snr_db
                if detection_snr_db is None
                else detection_snr_db
            )
            # Per-user scalar geometry, identical ops and order to
            # _measure_burst_batch_impl.
            bearings_to_mobile = []
            for mobile_id, mobile_pose, rx_gain_fn, rx_beam in requests:
                bearings_to_mobile.append(
                    station.pose.bearing_to(mobile_pose.position)
                )
                row_rx_gains.append(
                    rx_gain_fn(rx_beam, mobile_pose.bearing_to(station.pose.position))
                )
                row_link_ids.append(self.link_id(station.cell_id, mobile_id))
                row_tx_poses.append(station.pose)
                row_rx_poses.append(mobile_pose)
                row_tx_powers.append(station.tx_power_dbm)
                row_dwells.append(len(beams))
            group_gains.append(station.tx_gains_grid_dbi(bearings_to_mobile, beams))
            metas.append((station, requests, beams, budget, threshold))
            max_dwells = max(max_dwells, len(beams))
        n_rows = len(row_link_ids)
        if n_rows == 0:
            return [[] for _ in groups]
        tx_gains = np.full((n_rows, max_dwells), -np.inf, dtype=float)
        row = 0
        for gains in group_gains:
            if gains is None:
                continue
            n_users, n_beams = gains.shape
            tx_gains[row:row + n_users, :n_beams] = gains
            row += n_users
        rss = self.channel.burst_rss_rows_dbm(
            row_link_ids,
            time_s,
            row_tx_poses,
            row_rx_poses,
            tx_gains,
            np.asarray(row_rx_gains, dtype=float),
            np.asarray(row_tx_powers, dtype=float),
            row_dwells,
        )
        results = []
        row = 0
        for station, requests, beams, budget, threshold in metas:
            if not requests:
                results.append([])
                continue
            sub = rss[row:row + len(requests), :len(beams)]
            row += len(requests)
            detected = sub - budget.noise_floor_dbm >= threshold
            any_detected = detected.any(axis=1)
            best = np.argmax(np.where(detected, sub, -np.inf), axis=1)
            measurements = []
            for u, (mobile_id, mobile_pose, rx_gain_fn, rx_beam) in enumerate(
                requests
            ):
                if not any_detected[u]:
                    measurements.append(
                        RssMeasurement(time_s, station.cell_id, rx_beam)
                    )
                    continue
                best_rss = float(sub[u, best[u]])
                measurements.append(
                    RssMeasurement(
                        time_s,
                        station.cell_id,
                        rx_beam,
                        tx_beam=beams[int(best[u])],
                        rss_dbm=best_rss,
                        snr_db=budget.snr_db(best_rss),
                    )
                )
            results.append(measurements)
        return results

    def _measure_burst_scalar(
        self,
        station: BaseStation,
        mobile_pose: Pose,
        link: str,
        beams,
        bearing_to_mobile: float,
        rx_gain: float,
        rx_beam: int,
        time_s: float,
        budget,
        threshold: float,
    ) -> RssMeasurement:
        """Reference per-dwell loop (the pre-vectorization hot path)."""
        best_rss: Optional[float] = None
        best_tx: Optional[int] = None
        for tx_beam in beams:
            tx_gain = station.tx_gain_dbi(tx_beam, bearing_to_mobile)
            # Dwells within a burst are microseconds apart; geometry and
            # large-scale state are evaluated at the burst timestamp, but
            # each dwell draws its own small-scale fade.
            rss = self.channel.rss_dbm(
                link,
                time_s,
                station.pose,
                mobile_pose,
                tx_gain,
                rx_gain,
                station.tx_power_dbm,
            )
            if budget.snr_db(rss) < threshold:
                continue
            if best_rss is None or rss > best_rss:
                best_rss = rss
                best_tx = tx_beam
        if best_rss is None:
            return RssMeasurement(time_s, station.cell_id, rx_beam)
        return RssMeasurement(
            time_s,
            station.cell_id,
            rx_beam,
            tx_beam=best_tx,
            rss_dbm=best_rss,
            snr_db=budget.snr_db(best_rss),
        )

    def downlink_rss(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
        tx_beam: int,
        time_s: float,
    ) -> float:
        """RSS of one directed downlink transmission on specific beams."""
        bearing_to_mobile = station.pose.bearing_to(mobile_pose.position)
        bearing_to_station = mobile_pose.bearing_to(station.pose.position)
        tx_gain = station.tx_gain_dbi(tx_beam, bearing_to_mobile)
        rx_gain = rx_gain_fn(rx_beam, bearing_to_station)
        return self.channel.rss_dbm(
            self.link_id(station.cell_id, mobile_id),
            time_s,
            station.pose,
            mobile_pose,
            tx_gain,
            rx_gain,
            station.tx_power_dbm,
        )

    def downlink_success(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
        tx_beam: int,
        time_s: float,
    ) -> bool:
        """Bernoulli decode of a directed downlink control message."""
        rss = self.downlink_rss(
            station, mobile_id, mobile_pose, rx_gain_fn, rx_beam, tx_beam, time_s
        )
        probability = station.link_budget.packet_success_probability(rss)
        stream = self._decode_stream(self.link_id(station.cell_id, mobile_id))
        return bool(stream.random() < probability)

    # ---------------------------------------------------------------- uplink
    def uplink_rss(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        mobile_beam: int,
        station_beam: int,
        time_s: float,
    ) -> float:
        """RSS at the base station of an uplink message.

        Beam reciprocity: the mobile's receive pattern doubles as its
        transmit pattern, and likewise at the base station.
        """
        bearing_to_mobile = station.pose.bearing_to(mobile_pose.position)
        bearing_to_station = mobile_pose.bearing_to(station.pose.position)
        mobile_gain = rx_gain_fn(mobile_beam, bearing_to_station)
        station_gain = station.tx_gain_dbi(station_beam, bearing_to_mobile)
        return self.channel.rss_dbm(
            self.link_id(station.cell_id, mobile_id),
            time_s,
            mobile_pose,
            station.pose,
            mobile_gain,
            station_gain,
            self.mobile_tx_power_dbm,
        )

    def uplink_success(
        self,
        station: BaseStation,
        mobile_id: str,
        mobile_pose: Pose,
        rx_gain_fn,
        mobile_beam: int,
        station_beam: int,
        time_s: float,
        extra_margin_db: float = 0.0,
    ) -> bool:
        """Bernoulli decode of an uplink message at the base station.

        ``extra_margin_db`` models preamble processing gain for RACH
        msg1 (long correlation sequences decode below the data
        threshold).
        """
        rss = self.uplink_rss(
            station, mobile_id, mobile_pose, rx_gain_fn, mobile_beam, station_beam, time_s
        )
        probability = station.link_budget.packet_success_probability(
            rss + extra_margin_db
        )
        stream = self._decode_stream(self.link_id(station.cell_id, mobile_id))
        return bool(stream.random() < probability)
