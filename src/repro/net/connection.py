"""Connection context: what the mobile holds toward its serving cell.

Soft handover is precisely the preservation of this context across a
cell switch; a hard handover destroys it and rebuilds from nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ConnectionState(enum.Enum):
    """RRC-like connection states (reduced to what the protocols need)."""

    IDLE = "idle"
    CONNECTED = "connected"
    #: Radio link failure declared; context is running a guard timer and
    #: will be lost unless re-established.
    RLF = "rlf"


@dataclass
class ConnectionContext:
    """Mutable serving-link state carried by the mobile.

    Attributes
    ----------
    serving_cell:
        Cell id of the serving base station, or ``None`` when idle.
    rx_beam:
        Mobile receive beam used for the serving link.
    last_contact_s:
        Time of the last successful serving-cell reception; the RLF
        monitor compares this against the link-failure timeout.
    established_s:
        When the context was created (for context-age accounting).
    """

    serving_cell: Optional[str] = None
    rx_beam: Optional[int] = None
    state: ConnectionState = ConnectionState.IDLE
    last_contact_s: float = field(default=0.0)
    established_s: float = field(default=0.0)

    def establish(self, cell_id: str, rx_beam: int, now_s: float) -> None:
        """Create a fresh context toward ``cell_id``."""
        self.serving_cell = cell_id
        self.rx_beam = rx_beam
        self.state = ConnectionState.CONNECTED
        self.last_contact_s = now_s
        self.established_s = now_s

    def touch(self, now_s: float) -> None:
        """Record successful serving-cell contact."""
        if self.state is ConnectionState.IDLE:
            raise RuntimeError("touch() on an idle connection")
        self.last_contact_s = now_s
        if self.state is ConnectionState.RLF:
            # Contact during the RLF guard re-establishes the link.
            self.state = ConnectionState.CONNECTED

    def declare_rlf(self) -> None:
        """Enter radio-link-failure (context not yet lost)."""
        if self.state is ConnectionState.CONNECTED:
            self.state = ConnectionState.RLF

    def drop(self) -> None:
        """Lose the context entirely (hard-handover outcome)."""
        self.serving_cell = None
        self.rx_beam = None
        self.state = ConnectionState.IDLE

    @property
    def connected(self) -> bool:
        return self.state is ConnectionState.CONNECTED

    def age_s(self, now_s: float) -> float:
        """Seconds since establishment."""
        return now_s - self.established_s

    def silence_s(self, now_s: float) -> float:
        """Seconds since the last successful serving contact."""
        return now_s - self.last_contact_s
