"""Mobile node: one RF chain, a body-frame receive codebook, a protocol.

The mobile is deliberately thin: all beam-management intelligence lives
in the attached :class:`BurstListener` (Silent Tracker or a baseline).
The mobile contributes exactly the physical constraints the paper's
hardware imposes:

* **One RF chain** — it can hold one receive beam at a time; bursts of
  different cells that overlap in time conflict, and the loser is
  skipped (counted, so experiments can report the measurement-budget
  pressure).
* **Body-frame beams** — receive gain toward a world azimuth depends on
  the device heading at that instant, which is how rotation stresses
  tracking without any translation.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.geometry.pose import Pose
from repro.measure.report import RssMeasurement
from repro.mobility.base import Trajectory
from repro.net.base_station import BaseStation
from repro.net.connection import ConnectionContext
from repro.phy.codebook import Codebook


class BurstListener(Protocol):
    """What a beam-management protocol must implement to drive a mobile."""

    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        """Receive beam to hold for this cell's burst, or None to skip."""
        ...

    def on_measurement(self, measurement: RssMeasurement) -> None:
        """Deliver the outcome of a burst dwell previously requested."""
        ...


class Mobile:
    """A mm-wave handset with a steerable receive codebook."""

    def __init__(
        self,
        mobile_id: str,
        trajectory: Trajectory,
        codebook: Codebook,
    ) -> None:
        if not mobile_id:
            raise ValueError("mobile_id must be non-empty")
        self.mobile_id = mobile_id
        self.trajectory = trajectory
        self.codebook = codebook
        self.connection = ConnectionContext()
        self._listener: Optional[BurstListener] = None
        self._busy_until_s = -1.0
        #: Bursts skipped because the single RF chain was occupied.
        self.bursts_skipped_busy = 0
        #: Bursts skipped because the listener declined a beam.
        self.bursts_declined = 0
        #: Bursts actually measured.
        self.bursts_measured = 0

    # -------------------------------------------------------------- wiring
    def attach_listener(self, listener: BurstListener) -> None:
        """Install the beam-management protocol driving this mobile."""
        self._listener = listener

    @property
    def listener(self) -> Optional[BurstListener]:
        return self._listener

    # ------------------------------------------------------------ geometry
    def pose_at(self, time_s: float) -> Pose:
        """Current pose from the mobility model."""
        return self.trajectory.pose_at(time_s)

    def rx_gain_fn(
        self, time_s: float, pose: Optional[Pose] = None
    ) -> Callable[[int, float], float]:
        """Receive-gain function bound to the pose at ``time_s``.

        Returns ``f(rx_beam, world_azimuth) -> dBi``; the device heading
        at ``time_s`` is baked in so the link engine needs no knowledge
        of body frames.  Callers that already computed the pose for
        ``time_s`` can pass it to skip the trajectory lookup (the burst
        delivery hot path does).
        """
        if pose is None:
            pose = self.pose_at(time_s)

        def gain(rx_beam: int, world_azimuth: float) -> float:
            return self.codebook.gain_dbi(rx_beam, pose.world_to_body(world_azimuth))

        return gain

    def best_rx_beam_towards(self, station: BaseStation, time_s: float) -> int:
        """Genie helper: codebook beam best pointed at a station *now*.

        Used by oracle baselines and tests, never by the in-band
        protocols (which must discover beams from measurements alone).
        """
        pose = self.pose_at(time_s)
        body_azimuth = pose.body_bearing_to(station.pose.position)
        return self.codebook.best_beam_towards(body_azimuth).index

    # ---------------------------------------------------------------- radio
    def radio_busy(self, now_s: float) -> bool:
        """Whether the RF chain is still occupied by an earlier dwell."""
        return now_s < self._busy_until_s

    def occupy_radio(self, now_s: float, duration_s: float) -> None:
        """Mark the RF chain busy for ``duration_s`` starting at ``now_s``."""
        if duration_s < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration_s!r}")
        self._busy_until_s = max(self._busy_until_s, now_s + duration_s)

    def begin_burst(self, station: BaseStation, now_s: float) -> Optional[int]:
        """RF-chain arbitration prologue of one SSB burst.

        Applies the single-RF-chain check, asks the listener for a
        receive beam, and occupies the radio for the burst.  Returns
        the receive beam index when the burst will be measured, ``None``
        when it is skipped (busy or declined) — in which case all
        skip accounting has already happened.

        The check sequence here (no listener -> silent skip, busy ->
        count, decline -> count, else occupy) is the arbitration
        contract; ``Deployment._deliver_tick_batch`` inlines it across
        a coalesced station group (hoisting the busy check, which is
        constant over the group's shared timestamp) and must stay
        byte-equivalent to calling this method once per station.
        """
        if self._listener is None:
            return None
        if self.radio_busy(now_s):
            self.bursts_skipped_busy += 1
            return None
        rx_beam = self._listener.choose_rx_beam(station.cell_id, now_s)
        if rx_beam is None:
            self.bursts_declined += 1
            return None
        self.occupy_radio(now_s, station.schedule.burst_duration_s())
        return rx_beam

    def complete_burst(self, measurement: RssMeasurement) -> RssMeasurement:
        """Account for a measured burst and feed it to the listener."""
        self.bursts_measured += 1
        self._listener.on_measurement(measurement)
        return measurement

    def deliver_burst(
        self,
        station: BaseStation,
        link_engine,
        now_s: float,
    ) -> Optional[RssMeasurement]:
        """Handle one SSB burst from ``station`` (called by the deployment).

        Applies the single-RF-chain arbitration, asks the listener for a
        receive beam, performs the dwell, and feeds the result back to
        the listener.  Returns the measurement when one was made.
        """
        rx_beam = self.begin_burst(station, now_s)
        if rx_beam is None:
            return None
        pose = self.pose_at(now_s)
        measurement = link_engine.measure_burst(
            station,
            self.mobile_id,
            pose,
            self.rx_gain_fn(now_s, pose),
            rx_beam,
            now_s,
        )
        return self.complete_burst(measurement)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mobile({self.mobile_id}, {len(self.codebook)} beams)"
