"""Handover records and classification.

A handover is **soft** when the network context survives the cell
switch: the mobile completed random access to the target while its
serving context was still valid (connected or within the RLF guard), so
upper layers transfer state instead of rebuilding it.  It is **hard**
when the context was lost first — the mobile re-enters from idle, paying
the full directional cell search plus initial access with no context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class HandoverOutcome(enum.Enum):
    SOFT = "soft"
    HARD = "hard"
    #: Random access to the target never completed within the run.
    FAILED = "failed"


@dataclass
class HandoverRecord:
    """Accounting for one handover attempt."""

    mobile_id: str
    source_cell: str
    target_cell: str
    #: When the handover trigger (edge E) fired.
    trigger_s: float
    #: When random access to the target completed (None if it never did).
    complete_s: Optional[float] = None
    outcome: Optional[HandoverOutcome] = None
    rach_attempts: int = 0
    #: Data-plane interruption: time with no usable serving link.
    interruption_s: float = 0.0

    @property
    def completion_time_s(self) -> Optional[float]:
        """Trigger-to-completion latency."""
        if self.complete_s is None:
            return None
        return self.complete_s - self.trigger_s

    @property
    def is_soft(self) -> bool:
        return self.outcome is HandoverOutcome.SOFT


class HandoverLog:
    """Collects handover records across a run or an experiment trial."""

    def __init__(self) -> None:
        self._records: List[HandoverRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def open_record(
        self, mobile_id: str, source_cell: str, target_cell: str, trigger_s: float
    ) -> HandoverRecord:
        """Start accounting for a newly triggered handover."""
        record = HandoverRecord(mobile_id, source_cell, target_cell, trigger_s)
        self._records.append(record)
        return record

    @property
    def records(self) -> List[HandoverRecord]:
        return list(self._records)

    def count(self, outcome: HandoverOutcome) -> int:
        return sum(1 for r in self._records if r.outcome is outcome)

    @property
    def soft_count(self) -> int:
        return self.count(HandoverOutcome.SOFT)

    @property
    def hard_count(self) -> int:
        return self.count(HandoverOutcome.HARD)

    @property
    def failed_count(self) -> int:
        return self.count(HandoverOutcome.FAILED)

    def completion_times_s(self) -> List[float]:
        """Trigger-to-completion latencies of all completed handovers."""
        return [
            r.completion_time_s
            for r in self._records
            if r.completion_time_s is not None
        ]

    def soft_ratio(self) -> float:
        """Fraction of resolved handovers that were soft."""
        resolved = [r for r in self._records if r.outcome is not None]
        if not resolved:
            raise ValueError("no resolved handovers")
        return sum(1 for r in resolved if r.is_soft) / len(resolved)
