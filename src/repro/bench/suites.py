"""The ``repro bench`` PHY suite: micro + macro burst-evaluation cases.

Every vectorized case is timed against its scalar reference so the
artifact records both the absolute trajectory and the speedup of the
batch path.  The macro cases run the fig2a cell-edge testbed end to
end:

* ``fig2a.search`` — the standard Fig. 2a search trial (bursts stop
  once the beam is found; engine-bound).
* ``fig2a.burst_heavy`` — the burst-heavy variant of the same
  three-cell geometry with FR2-dense 36-SSB station codebooks and a
  mobile that measures every burst of every cell, so the wall clock
  lives in burst evaluation.
* ``dense.c{64,256,1024}`` — the dense-corridor macro: N
  phase-staggered cells and a population spread along the corridor,
  timed under the legacy per-station scheduling (no spatial pruning)
  and under the coalesced + cell-index stack.  The derived
  ``dense.c256`` speedup is the acceptance point (>= 2x).
* ``engine.events.drain`` — raw event-loop throughput over no-op
  events with unique timestamps (``derived.events_per_s``), so a
  scheduler-layer regression is visible even when macros hide it
  behind channel work.

The suite also proves the determinism contract on real artifacts: it
runs a small fig2a campaign once per burst path and byte-compares the
per-cell JSON files (``artifacts_identical`` in the ``derived``
section).
"""

from __future__ import annotations

import contextlib
import math
import platform
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import (
    TimingResult,
    env_override,
    results_payload,
    speedup,
    time_fn,
    write_bench_json,
)

#: Artifact schema version.
BENCH_FORMAT = 1

#: Default artifact filename.
BENCH_FILENAME = "BENCH_phy.json"


#: Cell counts of the dense-topology scaling curve; 256 is the
#: acceptance point (coalesced + index >= 2x the legacy reference).
DENSE_CELL_COUNTS = (64, 256, 1024)


@contextlib.contextmanager
def burst_path(mode: str):
    """Force the LinkEngine burst path for deployments built inside."""
    if mode not in ("scalar", "vectorized"):
        raise ValueError(f"unknown burst path {mode!r}")
    with env_override("REPRO_BURST_PATH", mode):
        yield


@contextlib.contextmanager
def burst_sched(mode: str):
    """Force the burst scheduling mode for deployments built inside."""
    if mode not in ("coalesced", "legacy"):
        raise ValueError(f"unknown burst scheduling mode {mode!r}")
    with env_override("REPRO_BURST_SCHED", mode):
        yield


@contextlib.contextmanager
def cell_index(mode: str):
    """Force the spatial cell index on or off for deployments built inside."""
    if mode not in ("on", "off"):
        raise ValueError(f"unknown cell index mode {mode!r}")
    with env_override("REPRO_CELL_INDEX", mode):
        yield


class _SweepListener:
    """Measures every burst of every cell, walking the rx codebook."""

    def __init__(self, n_beams: int) -> None:
        self._n = n_beams
        self._count = 0

    def choose_rx_beam(self, cell_id: str, now_s: float) -> int:
        self._count += 1
        return self._count % self._n

    def on_measurement(self, measurement) -> None:
        pass


def _burst_heavy_session(seed: int, station_beamwidth_deg: float):
    """The fig2a three-cell testbed with a configurable SSB density.

    Built through the public :class:`repro.api.Session` facade — the
    same path every experiment uses — with the station codebook density
    raised via ``TrialSpec.bs_beamwidth_deg``.
    """
    from repro.api import Session, TrialSpec

    return Session(
        TrialSpec(
            scenario="walk",
            codebook="narrow",
            seed=seed,
            bs_beamwidth_deg=station_beamwidth_deg,
        )
    )


# ------------------------------------------------------------------- cases
def _bench_antenna(results: List[TimingResult], repeats: int, warmup: int) -> None:
    from repro.phy.antenna import GaussianBeamPattern

    pattern = GaussianBeamPattern(math.radians(20.0))
    offsets = np.linspace(-2.0 * math.pi, 2.0 * math.pi, 4096)
    offsets_list = [float(o) for o in offsets]
    meta = {"n_offsets": len(offsets_list), "pattern": "gaussian-20deg"}
    results.append(
        time_fn(
            "antenna.gain.scalar",
            lambda: [pattern.gain_dbi(o) for o in offsets_list],
            repeats,
            warmup,
            meta,
        )
    )
    results.append(
        time_fn(
            "antenna.gain.vectorized",
            lambda: pattern.gain_dbi_array(offsets),
            repeats,
            warmup,
            meta,
        )
    )


def _bench_codebook(results: List[TimingResult], repeats: int, warmup: int) -> None:
    from repro.phy.codebook import Codebook

    # 64 beams: the FR2 max_ssb_per_burst cap, where batching matters most.
    codebook = Codebook.uniform_azimuth(360.0 / 64.0)
    azimuths = [0.001 * k for k in range(500)]
    meta = {"n_beams": len(codebook), "n_azimuths": len(azimuths)}
    results.append(
        time_fn(
            "codebook.gains.scalar",
            lambda: [
                [codebook.gain_dbi(i, az) for i in range(len(codebook))]
                for az in azimuths
            ],
            repeats,
            warmup,
            meta,
        )
    )
    results.append(
        time_fn(
            "codebook.gains.vectorized",
            lambda: [codebook.gains_dbi(az) for az in azimuths],
            repeats,
            warmup,
            meta,
        )
    )


def _bench_fading(results: List[TimingResult], repeats: int, warmup: int) -> None:
    from repro.phy.fading import RicianFading

    n_draws = 10_000
    meta = {"n_draws": n_draws, "k_factor_db": 10.0}

    def scalar() -> None:
        fading = RicianFading(10.0, np.random.default_rng(1))
        for _ in range(n_draws):
            fading.sample_db()

    def vectorized() -> None:
        fading = RicianFading(10.0, np.random.default_rng(1))
        fading.sample_db_array(n_draws)

    results.append(time_fn("fading.rician.scalar", scalar, repeats, warmup, meta))
    results.append(
        time_fn("fading.rician.vectorized", vectorized, repeats, warmup, meta)
    )


def _bench_burst_micro(
    results: List[TimingResult], repeats: int, warmup: int, n_bursts: int
) -> None:
    from repro.api import Session

    def run(mode: str) -> None:
        with burst_path(mode):
            with Session(scenario="walk", seed=1) as session:
                mobile = session.mobile
                station = session.deployment.station("cellB")
                links = session.deployment.links
                for k in range(n_bursts):
                    t = k * 0.02
                    pose = mobile.pose_at(t)
                    links.measure_burst(
                        station,
                        mobile.mobile_id,
                        pose,
                        mobile.rx_gain_fn(t, pose),
                        3,
                        t,
                    )

    meta = {"n_bursts": n_bursts, "ssb_per_burst": 18}
    results.append(
        time_fn("burst.measure.scalar", lambda: run("scalar"), repeats, warmup, meta)
    )
    results.append(
        time_fn(
            "burst.measure.vectorized",
            lambda: run("vectorized"),
            repeats,
            warmup,
            meta,
        )
    )


def _bench_fig2a_search(
    results: List[TimingResult], repeats: int, warmup: int, deadline_s: float
) -> None:
    from repro.experiments.fig2a import run_search_trial

    def run(mode: str) -> None:
        with burst_path(mode):
            run_search_trial("narrow", scenario="walk", seed=1, deadline_s=deadline_s)

    meta = {"scenario": "walk", "codebook": "narrow", "deadline_s": deadline_s}
    results.append(
        time_fn("fig2a.search.scalar", lambda: run("scalar"), repeats, warmup, meta)
    )
    results.append(
        time_fn(
            "fig2a.search.vectorized",
            lambda: run("vectorized"),
            repeats,
            warmup,
            meta,
        )
    )


def _bench_fig2a_burst_heavy(
    results: List[TimingResult], repeats: int, warmup: int, duration_s: float
) -> None:
    from repro.obs import telemetry as _telemetry

    beamwidth_deg = 10.0  # 36 SSB per burst: dense FR2-style sweep

    def run(mode: str, telemetry: bool = False) -> None:
        hub = _telemetry.Telemetry() if telemetry else _telemetry.DISABLED
        with burst_path(mode):
            with _telemetry.use(hub):
                with _burst_heavy_session(1, beamwidth_deg) as session:
                    session.attach_listener(
                        _SweepListener(len(session.mobile.codebook))
                    )
                    session.run(duration_s)

    meta = {
        "scenario": "walk",
        "ssb_per_burst": int(round(360.0 / beamwidth_deg)),
        "duration_s": duration_s,
        "cells": 3,
    }
    results.append(
        time_fn(
            "fig2a.burst_heavy.scalar", lambda: run("scalar"), repeats, warmup, meta
        )
    )
    results.append(
        time_fn(
            "fig2a.burst_heavy.vectorized",
            lambda: run("vectorized"),
            repeats,
            warmup,
            meta,
        )
    )
    # Same workload with telemetry *enabled*: derived.telemetry_overhead
    # tracks what span/counter collection costs on the hottest macro.
    results.append(
        time_fn(
            "fig2a.burst_heavy.telemetry",
            lambda: run("vectorized", telemetry=True),
            repeats,
            warmup,
            {**meta, "telemetry": True},
        )
    )


def _run_dense_corridor(n_cells: int, duration_s: float) -> None:
    """One dense-corridor session: N phase-staggered cells, 4 sweepers.

    The mobiles are spread uniformly along the corridor (the fleet
    spawn model for this topology), so arbitration admits a mix of
    nearby stations (measured) and provably out-of-reach ones (pruned
    by the spatial index when it is on).
    """
    from repro.experiments.scenarios import build_corridor_deployment
    from repro.geometry.pose import Pose
    from repro.geometry.vectors import Vec3
    from repro.mobility.base import StaticPose
    from repro.net.mobile import Mobile
    from repro.phy.codebook import Codebook

    deployment = build_corridor_deployment(11, n_cells=n_cells)
    codebook = Codebook.uniform_azimuth(20.0)
    span = (n_cells - 1) * 50.0
    for i in range(4):
        mobile = Mobile(
            f"ue{i}",
            StaticPose(Pose(Vec3(span * (i + 0.5) / 4.0, 0.0, 1.5), 0.0)),
            codebook,
        )
        mobile.attach_listener(_SweepListener(len(codebook)))
        deployment.add_mobile(mobile)
    deployment.run(duration_s)


def _bench_dense_corridor(
    results: List[TimingResult], repeats: int, warmup: int, duration_s: float
) -> None:
    """Dense-topology macro: the coalesced+index stack vs the legacy path.

    ``legacy`` is the pre-coalescing configuration (one PeriodicTask
    per station, no spatial pruning); ``coalesced`` is the default
    stack (one event per shared SSB tick, multi-station batched
    measurement, cell index on).  Both produce byte-identical
    artifacts — the equivalence suite pins that — so the ratio is pure
    scheduling + pruning overhead.
    """
    for n_cells in DENSE_CELL_COUNTS:
        meta = {
            "topology": "corridor",
            "n_cells": n_cells,
            "phase_slots": 8,
            "n_users": 4,
            "duration_s": duration_s,
        }
        with burst_sched("legacy"), cell_index("off"):
            results.append(
                time_fn(
                    f"dense.c{n_cells}.legacy",
                    lambda n=n_cells: _run_dense_corridor(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )
        with burst_sched("coalesced"), cell_index("on"):
            results.append(
                time_fn(
                    f"dense.c{n_cells}.coalesced",
                    lambda n=n_cells: _run_dense_corridor(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )


def _bench_engine_events(
    results: List[TimingResult], repeats: int, warmup: int, n_events: int
) -> None:
    """Raw event-loop throughput: drain ``n_events`` no-op events.

    Unique timestamps, no coalescing opportunity — this times the heap
    pop / dispatch floor itself, so scheduler-layer regressions show up
    here even when the macro cases hide them behind channel work.
    """
    from repro.sim.engine import Simulator

    def drain() -> None:
        sim = Simulator()

        def noop() -> None:
            pass

        for k in range(n_events):
            sim.schedule((k + 1) * 1e-5, noop, label="noop")
        sim.run_until((n_events + 1) * 1e-5)

    results.append(
        time_fn(
            "engine.events.drain", drain, repeats, warmup, {"n_events": n_events}
        )
    )


def _check_artifact_identity(n_seeds: int) -> bool:
    """Run a small fig2a campaign per burst path; compare artifact bytes."""
    from repro.campaign.runner import run_campaign
    from repro.experiments.fig2a import fig2a_spec

    spec = fig2a_spec(
        n_trials=n_seeds,
        scenario="walk",
        deadline_s=0.5,
        codebooks=("narrow",),
        name="bench-identity",
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        roots = {}
        for mode in ("scalar", "vectorized"):
            out_dir = Path(tmp) / mode
            with burst_path(mode):
                run_campaign(spec, out_dir=out_dir)
            roots[mode] = out_dir / "cells"
        scalar_cells = sorted(roots["scalar"].glob("*.json"))
        vector_cells = sorted(roots["vectorized"].glob("*.json"))
        if [p.name for p in scalar_cells] != [p.name for p in vector_cells]:
            return False
        if not scalar_cells:
            return False
        return all(
            a.read_bytes() == b.read_bytes()
            for a, b in zip(scalar_cells, vector_cells)
        )


# ------------------------------------------------------------------- suite
def run_bench(
    quick: bool = False,
    out_path: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, object]:
    """Run the PHY suite; write ``BENCH_phy.json`` when ``out_path`` is set.

    ``quick`` trims repeats and workload sizes for CI smoke runs; the
    artifact schema is identical either way.
    """
    n_repeats = repeats if repeats is not None else (2 if quick else 5)
    n_warmup = warmup if warmup is not None else (1 if quick else 2)
    results: List[TimingResult] = []
    _bench_antenna(results, n_repeats, n_warmup)
    _bench_codebook(results, n_repeats, n_warmup)
    _bench_fading(results, n_repeats, n_warmup)
    _bench_burst_micro(results, n_repeats, n_warmup, n_bursts=200 if quick else 500)
    _bench_fig2a_search(results, n_repeats, n_warmup, deadline_s=1.0)
    _bench_fig2a_burst_heavy(
        results, n_repeats, n_warmup, duration_s=2.0 if quick else 6.0
    )
    _bench_dense_corridor(
        results, n_repeats, n_warmup, duration_s=0.5 if quick else 2.0
    )
    _bench_engine_events(
        results, n_repeats, n_warmup, n_events=20_000 if quick else 100_000
    )
    by_name = {result.name: result for result in results}
    derived = {
        pair: speedup(by_name[f"{pair}.scalar"], by_name[f"{pair}.vectorized"])
        for pair in (
            "antenna.gain",
            "codebook.gains",
            "fading.rician",
            "burst.measure",
            "fig2a.search",
            "fig2a.burst_heavy",
        )
    }
    for n_cells in DENSE_CELL_COUNTS:
        derived[f"dense.c{n_cells}"] = speedup(
            by_name[f"dense.c{n_cells}.legacy"],
            by_name[f"dense.c{n_cells}.coalesced"],
        )
    drain = by_name["engine.events.drain"]
    payload: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "suite": "phy",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "results": results_payload(results),
        "derived": {
            "speedups": derived,
            # Raw heap-pop/dispatch throughput of the event loop.
            "events_per_s": int(drain.meta["n_events"]) / drain.median_s,
            # Enabled-telemetry slowdown on the burst-heavy macro
            # (1.0 = free); the *disabled* cost is gated separately by
            # `repro obs gate` against the committed baseline.
            "telemetry_overhead": {
                "fig2a.burst_heavy": (
                    by_name["fig2a.burst_heavy.telemetry"].median_s
                    / by_name["fig2a.burst_heavy.vectorized"].median_s
                ),
            },
            "artifacts_identical": _check_artifact_identity(
                n_seeds=2 if quick else 4
            ),
        },
    }
    if out_path is not None:
        write_bench_json(payload, out_path)
    return payload
