"""Disabled-telemetry overhead gate (``repro obs gate``).

The telemetry hooks added by :mod:`repro.obs` sit on the hottest loops
in the codebase — the engine's event dispatch and the link engine's
burst evaluation — so the instrumentation itself must be provably free
when telemetry is off (the default).  The gate re-runs the committed
baseline's burst-heavy macro workload with telemetry disabled and fails
when the new median exceeds the baseline median by more than
``tolerance`` (0.02 = +2%, the acceptance criterion).

The workload is reconstructed from the baseline record's **own
``meta``** (SSB density, duration), not from the current suite
defaults: a quick-mode baseline gates a quick-mode workload, and the
comparison is never confounded by a workload-size change.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from pathlib import Path

from repro.bench.harness import BenchError, load_bench_json, time_fn
from repro.bench.suites import _burst_heavy_session, _SweepListener, burst_path
from repro.obs import telemetry as _telemetry

PathLike = Union[str, Path]

#: Baseline case the gate compares against: the vectorized burst-heavy
#: macro, the same case the PHY suite's acceptance targets.
GATE_CASE = "fig2a.burst_heavy.vectorized"

#: Acceptance criterion: disabled telemetry may cost at most +2%.
DEFAULT_TOLERANCE = 0.02


def run_overhead_gate(
    baseline_path: PathLike,
    tolerance: float = DEFAULT_TOLERANCE,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, object]:
    """Measure disabled-telemetry overhead against a committed baseline.

    Returns a record with ``passed``, the two medians and their ratio.
    Raises :class:`BenchError` when the baseline is unusable (missing
    file, no :data:`GATE_CASE` record) or ``tolerance`` is negative.
    """
    if tolerance < 0.0:
        raise BenchError(
            f"gate tolerance must be non-negative, got {tolerance!r}"
        )
    baseline = load_bench_json(baseline_path)
    record = next(
        (r for r in baseline["results"] if r["name"] == GATE_CASE), None
    )
    if record is None:
        raise BenchError(
            f"{baseline_path}: no {GATE_CASE!r} case in baseline — "
            "regenerate it with `repro bench --suite phy`"
        )
    meta = dict(record.get("meta", {}))
    duration_s = float(meta.get("duration_s", 6.0))
    ssb_per_burst = int(meta.get("ssb_per_burst", 36))
    beamwidth_deg = 360.0 / ssb_per_burst
    n_repeats = repeats if repeats is not None else int(record.get("repeats", 5))
    n_warmup = warmup if warmup is not None else int(record.get("warmup", 2))

    def run() -> None:
        # Telemetry explicitly disabled: the gate times the hooks'
        # guard-branch cost, not the collection cost.
        with burst_path("vectorized"):
            with _telemetry.use(_telemetry.DISABLED):
                with _burst_heavy_session(1, beamwidth_deg) as session:
                    session.attach_listener(
                        _SweepListener(len(session.mobile.codebook))
                    )
                    session.run(duration_s)

    result = time_fn(GATE_CASE, run, n_repeats, n_warmup, meta)
    baseline_median = float(record["median_s"])
    if baseline_median <= 0.0:
        raise BenchError(
            f"{baseline_path}: {GATE_CASE!r} baseline median is not positive"
        )
    ratio = result.median_s / baseline_median
    return {
        "case": GATE_CASE,
        "baseline_median_s": baseline_median,
        "current_median_s": result.median_s,
        "ratio": ratio,
        "tolerance": tolerance,
        "passed": ratio <= 1.0 + tolerance,
        "repeats": result.repeats,
        "warmup": result.warmup,
        "samples_s": list(result.samples_s),
        "meta": meta,
    }
