"""The ``repro bench --suite fleet`` suite: users-vs-wall-time scaling.

Runs the same short fleet (walkers spread across the street grid, full
Silent Tracker protocols) at growing population sizes under three burst
paths:

* ``scalar`` — per-mobile delivery loop with the scalar per-dwell
  reference (``REPRO_FLEET_PATH=scalar`` + ``REPRO_BURST_PATH=scalar``):
  the fully scalar path population size multiplies linearly.
* ``permobile`` — per-mobile delivery with the PR 2 per-link vectorized
  burst evaluation (``REPRO_FLEET_PATH=scalar``).
* ``batch`` — the cross-user batched grid path (the fleet default).

The artifact (``BENCH_fleet.json``) records the full scaling curve per
path plus derived speedups at each population size; the acceptance
target is the batch path beating the scalar path >= 3x at 64 users.
The determinism contract is proven on real artifacts too: one fleet
spec is run per delivery path and the canonical JSON results are
byte-compared (``artifacts_identical``).
"""

from __future__ import annotations

import contextlib
import platform
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import (
    TimingResult,
    env_override,
    results_payload,
    speedup,
    time_fn,
    write_bench_json,
)

#: Artifact schema version.
BENCH_FORMAT = 1

#: Default artifact filename.
BENCH_FILENAME = "BENCH_fleet.json"

#: Population sizes of the scaling curve.  64 is the acceptance point of
#: the committed full-mode artifact; quick mode (CI smoke) drops it so
#: the fully scalar 64-user reference is not timed on every push.
USER_COUNTS = (4, 16, 64)
USER_COUNTS_QUICK = (4, 16)


@contextlib.contextmanager
def fleet_path(mode: str):
    """Force the burst-delivery path for deployments built inside.

    ``scalar`` also implies nothing about the per-dwell path — combine
    with :func:`repro.bench.suites.burst_path` for the fully scalar
    reference.
    """
    if mode not in ("scalar", "batch"):
        raise ValueError(f"unknown fleet path {mode!r}")
    with env_override("REPRO_FLEET_PATH", mode):
        yield


def _bench_spec(n_users: int, duration_s: float):
    """The scaling-curve fleet: walkers spread over the street grid."""
    from repro.fleet import FleetSpec, UserProfile

    return FleetSpec(
        name=f"bench-{n_users}",
        n_users=n_users,
        profiles=(
            UserProfile("walkers", scenario="walk", start_jitter_s=0.25),
        ),
        seed=1,
        duration_s=duration_s,
    )


def _run_fleet(n_users: int, duration_s: float) -> None:
    from repro.fleet import run_fleet_trial

    run_fleet_trial(_bench_spec(n_users, duration_s))


def _bench_scaling(
    results: List[TimingResult],
    repeats: int,
    warmup: int,
    user_counts,
    duration_s: float,
) -> None:
    from repro.bench.suites import burst_path

    for n_users in user_counts:
        meta = {"n_users": n_users, "duration_s": duration_s, "cells": 3}
        with fleet_path("scalar"), burst_path("scalar"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.scalar",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )
        with fleet_path("scalar"), burst_path("vectorized"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.permobile",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )
        with fleet_path("batch"), burst_path("vectorized"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.batch",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )


def _check_artifact_identity(n_users: int, duration_s: float) -> bool:
    """Run one fleet per delivery path; byte-compare canonical artifacts."""
    from repro.campaign.spec import canonical_json
    from repro.fleet import run_fleet_trial

    spec = _bench_spec(n_users, duration_s)
    payloads = []
    for mode in ("scalar", "batch"):
        with fleet_path(mode):
            payloads.append(canonical_json(run_fleet_trial(spec).to_dict()))
    return payloads[0] == payloads[1]


def run_fleet_bench(
    quick: bool = False,
    out_path: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, object]:
    """Run the fleet suite; write ``BENCH_fleet.json`` when requested.

    The ``derived`` section carries, per population size, the speedup of
    the batch path over the fully scalar path (``speedup_vs_scalar``)
    and over the per-mobile vectorized loop (``speedup_vs_permobile``),
    plus the wall-seconds-per-user scaling curve of each path.
    """
    n_repeats = repeats if repeats is not None else (2 if quick else 3)
    n_warmup = warmup if warmup is not None else (0 if quick else 1)
    duration_s = 0.5 if quick else 1.0
    user_counts = USER_COUNTS_QUICK if quick else USER_COUNTS
    results: List[TimingResult] = []
    _bench_scaling(results, n_repeats, n_warmup, user_counts, duration_s)
    by_name = {result.name: result for result in results}
    scaling: Dict[str, Dict[str, float]] = {"scalar": {}, "permobile": {}, "batch": {}}
    speedups: Dict[str, Dict[str, float]] = {}
    for n_users in user_counts:
        scalar = by_name[f"fleet.run.u{n_users}.scalar"]
        permobile = by_name[f"fleet.run.u{n_users}.permobile"]
        batch = by_name[f"fleet.run.u{n_users}.batch"]
        scaling["scalar"][str(n_users)] = scalar.median_s
        scaling["permobile"][str(n_users)] = permobile.median_s
        scaling["batch"][str(n_users)] = batch.median_s
        speedups[str(n_users)] = {
            "speedup_vs_scalar": speedup(scalar, batch),
            "speedup_vs_permobile": speedup(permobile, batch),
        }
    payload: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "suite": "fleet",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "results": results_payload(results),
        "derived": {
            "scaling_median_s": scaling,
            "speedups": speedups,
            "artifacts_identical": _check_artifact_identity(
                n_users=8, duration_s=0.5 if quick else 1.0
            ),
        },
    }
    if out_path is not None:
        write_bench_json(payload, out_path)
    return payload
