"""The ``repro bench --suite fleet`` suite: users-vs-wall-time scaling.

Runs the same short fleet (walkers spread across the street grid, full
Silent Tracker protocols) at growing population sizes under three burst
paths:

* ``scalar`` — per-mobile delivery loop with the scalar per-dwell
  reference (``REPRO_FLEET_PATH=scalar`` + ``REPRO_BURST_PATH=scalar``):
  the fully scalar path population size multiplies linearly.
* ``permobile`` — per-mobile delivery with the PR 2 per-link vectorized
  burst evaluation (``REPRO_FLEET_PATH=scalar``).
* ``batch`` — the cross-user batched grid path (the fleet default).

The artifact (``BENCH_fleet.json``) records the full scaling curve per
path plus derived speedups at each population size; the acceptance
target is the batch path beating the scalar path >= 3x at 64 users.
The determinism contract is proven on real artifacts too: one fleet
spec is run per delivery path and the canonical JSON results are
byte-compared (``artifacts_identical``), a sharded run's merged
artifact is byte-compared against the unsharded run
(``sharded_identical``), and a dense-corridor fleet is byte-compared
across burst scheduling modes — coalesced + cell index vs the legacy
per-station path (``sched_identical``).  The ``fleet.dense.c64``
cases time that corridor fleet under both modes
(``derived.dense_fleet_speedup``).

Sharded cases (``fleet.sharded.*``) run :func:`~repro.fleet.runner.
run_fleet_sharded` on the campaign worker pool with streaming metric
reservoirs at large N: a 10^4-user worker-scaling sweep, a 10^5-user
point and — in full mode — a 10^6-user point.  Workers use the
``spawn`` start method so their recorded peak RSS (``derived.peak_rss``)
is the shard's own footprint, not a fork-inherited high-water mark;
``derived.worker_scaling`` carries the 10^4-user medians per worker
count next to ``cpu_count`` so a single-core CI runner's flat curve
reads as what it is.

Quick mode (CI smoke) trims the big populations and the fully scalar
64-user reference but keeps case ``meta`` identical to the committed
full-mode artifact, so the ``--compare`` median-regression gate always
has comparable cases.
"""

from __future__ import annotations

import contextlib
import os
import platform
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import (
    TimingResult,
    env_override,
    results_payload,
    speedup,
    time_fn,
    write_bench_json,
)

#: Artifact schema version.
BENCH_FORMAT = 1

#: Default artifact filename.
BENCH_FILENAME = "BENCH_fleet.json"

#: Population sizes of the scaling curve.  64 is the acceptance point of
#: the committed full-mode artifact; quick mode (CI smoke) drops it so
#: the fully scalar 64-user reference is not timed on every push.
USER_COUNTS = (4, 16, 64)
USER_COUNTS_QUICK = (4, 16)

#: Sharded cases: (n_users, shards, workers, duration_s, repeats).
#: Durations shrink with population so the committed full-mode artifact
#: stays rebuildable in minutes; shard counts grow so per-shard
#: footprints stay in the thousands of users (that flat per-worker
#: footprint is exactly what ``derived.peak_rss`` demonstrates).
SHARDED_CASES = (
    (64, 4, 2, 1.0, None),
    (10_000, 8, 1, 0.25, 1),
    (10_000, 8, 2, 0.25, 1),
    (10_000, 8, 4, 0.25, 1),
    (100_000, 16, 2, 0.1, 1),
    (1_000_000, 256, 2, 0.05, 1),
)
SHARDED_CASES_QUICK = ((64, 4, 2, 1.0, None),)

#: Worker counts of the 10^4-user scaling sweep (derived section).
WORKER_SWEEP_USERS = 10_000


@contextlib.contextmanager
def fleet_path(mode: str):
    """Force the burst-delivery path for deployments built inside.

    ``scalar`` also implies nothing about the per-dwell path — combine
    with :func:`repro.bench.suites.burst_path` for the fully scalar
    reference.
    """
    if mode not in ("scalar", "batch"):
        raise ValueError(f"unknown fleet path {mode!r}")
    with env_override("REPRO_FLEET_PATH", mode):
        yield


def _bench_spec(n_users: int, duration_s: float):
    """The scaling-curve fleet: walkers spread over the street grid."""
    from repro.fleet import FleetSpec, UserProfile

    return FleetSpec(
        name=f"bench-{n_users}",
        n_users=n_users,
        profiles=(
            UserProfile("walkers", scenario="walk", start_jitter_s=0.25),
        ),
        seed=1,
        duration_s=duration_s,
    )


def _dense_spec(n_users: int, n_cells: int, duration_s: float):
    """The dense-topology fleet: walkers spread along an N-cell corridor."""
    from repro.fleet.experiment import fleet_spec_for_cell

    return fleet_spec_for_cell(
        "uniform",
        scenario="walk",
        seed=1,
        n_users=n_users,
        duration_s=duration_s,
        name=f"bench-dense-{n_cells}",
        topology="corridor",
        n_cells=n_cells,
    )


def _run_fleet(n_users: int, duration_s: float) -> None:
    from repro.fleet import run_fleet_trial

    run_fleet_trial(_bench_spec(n_users, duration_s))


def _bench_scaling(
    results: List[TimingResult],
    repeats: int,
    warmup: int,
    user_counts,
    duration_s: float,
) -> None:
    from repro.bench.suites import burst_path

    for n_users in user_counts:
        meta = {"n_users": n_users, "duration_s": duration_s, "cells": 3}
        with fleet_path("scalar"), burst_path("scalar"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.scalar",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )
        with fleet_path("scalar"), burst_path("vectorized"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.permobile",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )
        with fleet_path("batch"), burst_path("vectorized"):
            results.append(
                time_fn(
                    f"fleet.run.u{n_users}.batch",
                    lambda n=n_users: _run_fleet(n, duration_s),
                    repeats,
                    warmup,
                    meta,
                )
            )


def _check_artifact_identity(n_users: int, duration_s: float) -> bool:
    """Run one fleet per delivery path; byte-compare canonical artifacts."""
    from repro.campaign.spec import canonical_json
    from repro.fleet import run_fleet_trial

    spec = _bench_spec(n_users, duration_s)
    payloads = []
    for mode in ("scalar", "batch"):
        with fleet_path(mode):
            payloads.append(canonical_json(run_fleet_trial(spec).to_dict()))
    return payloads[0] == payloads[1]


def _check_sched_identity(n_users: int, n_cells: int, duration_s: float) -> bool:
    """Byte-compare coalesced vs legacy scheduling on a corridor fleet."""
    from repro.bench.suites import burst_sched, cell_index
    from repro.campaign.spec import canonical_json
    from repro.fleet import run_fleet_trial

    spec = _dense_spec(n_users, n_cells, duration_s)
    payloads = []
    for sched, index in (("coalesced", "on"), ("legacy", "off")):
        with burst_sched(sched), cell_index(index):
            payloads.append(canonical_json(run_fleet_trial(spec).to_dict()))
    return payloads[0] == payloads[1]


def _bench_dense_fleet(
    results: List[TimingResult],
    repeats: int,
    warmup: int,
    n_users: int,
    n_cells: int,
    duration_s: float,
) -> None:
    """Dense corridor fleet under the coalesced + cell-index stack.

    One case per scheduling mode; ``derived.dense_fleet_speedup``
    reports coalesced-over-legacy on this population.  Kept in quick
    mode (identical meta) so the CI gate covers the dense path.
    """
    from repro.bench.suites import burst_sched, cell_index

    meta = {
        "topology": "corridor",
        "n_cells": n_cells,
        "n_users": n_users,
        "duration_s": duration_s,
    }
    with burst_sched("legacy"), cell_index("off"):
        results.append(
            time_fn(
                f"fleet.dense.c{n_cells}.legacy",
                lambda: _run_dense(n_users, n_cells, duration_s),
                repeats,
                warmup,
                meta,
            )
        )
    with burst_sched("coalesced"), cell_index("on"):
        results.append(
            time_fn(
                f"fleet.dense.c{n_cells}.coalesced",
                lambda: _run_dense(n_users, n_cells, duration_s),
                repeats,
                warmup,
                meta,
            )
        )


def _run_dense(n_users: int, n_cells: int, duration_s: float) -> None:
    from repro.fleet import run_fleet_trial

    run_fleet_trial(_dense_spec(n_users, n_cells, duration_s))


def _check_sharded_identity(n_users: int, duration_s: float) -> bool:
    """Byte-compare a sharded run's merged artifact with the unsharded run."""
    from repro.campaign.spec import canonical_json
    from repro.fleet import run_fleet_sharded, run_fleet_trial

    spec = _bench_spec(n_users, duration_s)
    unsharded = canonical_json(run_fleet_trial(spec).to_dict())
    sharded = run_fleet_sharded(spec, 3, workers=2, stream=False)
    return canonical_json(sharded.merged.to_dict()) == unsharded


def _run_sharded(
    n_users: int,
    shards: int,
    workers: int,
    duration_s: float,
    stream: Optional[bool],
    rss_kb: Optional[Dict[str, int]] = None,
) -> None:
    """One sharded bench execution; optionally records worker peak RSS.

    RSS figures originate in :func:`repro.obs.resources.max_rss_kb`
    (the one project-wide sampler — the shard workers put its reading
    in ``shard_stats``), so the unit here is KiB on every platform.
    ``spawn`` workers report their own high-water mark (``fork`` would
    inherit the driver's); the serial ``workers=1`` path measures the
    driver process and is excluded from ``rss_kb``.
    """
    from repro.fleet import run_fleet_sharded

    result = run_fleet_sharded(
        _bench_spec(n_users, duration_s),
        shards,
        workers=workers,
        stream=stream,
        mp_context="spawn" if workers > 1 else None,
    )
    if rss_kb is None or workers <= 1:
        return
    observed = [
        stats["max_rss_kb"]
        for stats in result.shard_stats.values()
        if stats.get("max_rss_kb")
    ]
    if observed:
        key = str(n_users)
        rss_kb[key] = max(max(observed), rss_kb.get(key, 0))


def _bench_sharded(
    results: List[TimingResult],
    repeats: int,
    warmup: int,
    cases,
    rss_kb: Dict[str, int],
) -> None:
    for n_users, shards, workers, duration_s, case_repeats in cases:
        stream = True if n_users > 1000 else None
        meta = {
            "n_users": n_users,
            "duration_s": duration_s,
            "cells": 3,
            "shards": shards,
            "workers": workers,
            "stream": bool(stream),
        }
        results.append(
            time_fn(
                f"fleet.sharded.u{n_users}.s{shards}.w{workers}",
                lambda n=n_users, s=shards, w=workers, d=duration_s,
                st=stream: _run_sharded(n, s, w, d, st, rss_kb),
                case_repeats if case_repeats is not None else repeats,
                0 if case_repeats is not None else warmup,
                meta,
            )
        )


def run_fleet_bench(
    quick: bool = False,
    out_path: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, object]:
    """Run the fleet suite; write ``BENCH_fleet.json`` when requested.

    The ``derived`` section carries, per population size, the speedup of
    the batch path over the fully scalar path (``speedup_vs_scalar``)
    and over the per-mobile vectorized loop (``speedup_vs_permobile``),
    plus the wall-seconds-per-user scaling curve of each path, the
    sharded worker-scaling sweep (``worker_scaling``) and the per-worker
    peak RSS of the streaming sharded runs (``peak_rss``).

    Quick and full mode time identical workloads (same ``meta``) for
    the cases quick mode keeps, so a quick run gates cleanly against
    the committed full-mode artifact with ``--compare``.
    """
    n_repeats = repeats if repeats is not None else (2 if quick else 3)
    n_warmup = warmup if warmup is not None else (0 if quick else 1)
    duration_s = 1.0
    user_counts = USER_COUNTS_QUICK if quick else USER_COUNTS
    sharded_cases = SHARDED_CASES_QUICK if quick else SHARDED_CASES
    results: List[TimingResult] = []
    _bench_scaling(results, n_repeats, n_warmup, user_counts, duration_s)
    _bench_dense_fleet(
        results, n_repeats, n_warmup, n_users=16, n_cells=64, duration_s=1.0
    )
    rss_kb: Dict[str, int] = {}
    _bench_sharded(results, n_repeats, n_warmup, sharded_cases, rss_kb)
    by_name = {result.name: result for result in results}
    scaling: Dict[str, Dict[str, float]] = {"scalar": {}, "permobile": {}, "batch": {}}
    speedups: Dict[str, Dict[str, float]] = {}
    for n_users in user_counts:
        scalar = by_name[f"fleet.run.u{n_users}.scalar"]
        permobile = by_name[f"fleet.run.u{n_users}.permobile"]
        batch = by_name[f"fleet.run.u{n_users}.batch"]
        scaling["scalar"][str(n_users)] = scalar.median_s
        scaling["permobile"][str(n_users)] = permobile.median_s
        scaling["batch"][str(n_users)] = batch.median_s
        speedups[str(n_users)] = {
            "speedup_vs_scalar": speedup(scalar, batch),
            "speedup_vs_permobile": speedup(permobile, batch),
        }
    worker_scaling: Dict[str, float] = {}
    for n_users, shards, workers, case_duration, _ in sharded_cases:
        if n_users != WORKER_SWEEP_USERS:
            continue
        case = by_name[f"fleet.sharded.u{n_users}.s{shards}.w{workers}"]
        worker_scaling[str(workers)] = case.median_s
    payload: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "suite": "fleet",
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "results": results_payload(results),
        "derived": {
            "scaling_median_s": scaling,
            "speedups": speedups,
            "worker_scaling": worker_scaling,
            "peak_rss": {"unit": "kb", "by_users": rss_kb},
            "dense_fleet_speedup": speedup(
                by_name["fleet.dense.c64.legacy"],
                by_name["fleet.dense.c64.coalesced"],
            ),
            "artifacts_identical": _check_artifact_identity(
                n_users=8, duration_s=0.5 if quick else 1.0
            ),
            "sharded_identical": _check_sharded_identity(
                n_users=8, duration_s=0.5 if quick else 1.0
            ),
            "sched_identical": _check_sched_identity(
                n_users=8, n_cells=16, duration_s=0.5 if quick else 1.0
            ),
        },
    }
    if out_path is not None:
        write_bench_json(payload, out_path)
    return payload
