"""Performance-benchmark harness: ``repro bench`` -> ``BENCH_*.json``.

Records the wall-clock trajectory of the simulator's hot paths —
micro-benchmarks of the vectorized phy primitives against their scalar
references, macro-benchmarks of burst-heavy end-to-end scenarios
(``--suite phy`` -> ``BENCH_phy.json``), and the population-scale
users-vs-wall-time scaling curve (``--suite fleet`` ->
``BENCH_fleet.json``) — so every PR can observe whether it moved the
needle.  ``repro bench --compare <baseline.json>`` diffs the current
medians against a committed artifact and fails on regressions.  The
harness is deliberately small: warmup + repeats per case, median/IQR
summaries, one canonical JSON artifact per suite.
"""

from repro.bench.fleet_suite import run_fleet_bench
from repro.bench.obs_gate import run_overhead_gate
from repro.bench.harness import (
    BenchError,
    CaseComparison,
    TimingResult,
    compare_payloads,
    env_override,
    incomparable_cases,
    load_bench_json,
    regressions,
    time_fn,
    write_bench_json,
)
from repro.bench.suites import run_bench

__all__ = [
    "BenchError",
    "CaseComparison",
    "TimingResult",
    "compare_payloads",
    "env_override",
    "incomparable_cases",
    "load_bench_json",
    "regressions",
    "run_bench",
    "run_fleet_bench",
    "run_overhead_gate",
    "time_fn",
    "write_bench_json",
]
