"""Performance-benchmark harness: ``repro bench`` -> ``BENCH_phy.json``.

Records the wall-clock trajectory of the simulator's hot paths —
micro-benchmarks of the vectorized phy primitives against their scalar
references, and macro-benchmarks of burst-heavy end-to-end scenarios —
so every PR can observe whether it moved the needle.  The harness is
deliberately small: warmup + repeats per case, median/IQR summaries,
one canonical JSON artifact.
"""

from repro.bench.harness import TimingResult, time_fn, write_bench_json
from repro.bench.suites import run_bench

__all__ = [
    "TimingResult",
    "run_bench",
    "time_fn",
    "write_bench_json",
]
