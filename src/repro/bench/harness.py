"""Timing harness: warmup + repeats, median/IQR, canonical JSON output.

Wall-clock timing in CI and on laptops is noisy; the harness therefore
reports order statistics (median and interquartile range) over a fixed
number of repeats rather than a single mean, after warmup runs that
absorb import, allocation and branch-predictor transients.  Raw samples
are preserved in the artifact so trajectories can be re-analyzed later
without re-running.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.util.numerics import quantile


@dataclass(frozen=True)
class TimingResult:
    """Summary of one benchmark case.

    All durations are seconds of wall clock for one execution of the
    case callable.
    """

    name: str
    repeats: int
    warmup: int
    median_s: float
    iqr_s: float
    p25_s: float
    p75_s: float
    min_s: float
    mean_s: float
    samples_s: List[float]
    meta: Dict[str, object] = field(default_factory=dict)


def time_fn(
    name: str,
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
    meta: Optional[Dict[str, object]] = None,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` discarded runs and ``repeats`` samples."""
    if repeats < 1:
        raise ValueError(f"need at least one repeat, got {repeats!r}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup!r}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    ordered = sorted(samples)
    p25 = quantile(ordered, 0.25)
    p75 = quantile(ordered, 0.75)
    return TimingResult(
        name=name,
        repeats=repeats,
        warmup=warmup,
        median_s=quantile(ordered, 0.50),
        iqr_s=p75 - p25,
        p25_s=p25,
        p75_s=p75,
        min_s=ordered[0],
        mean_s=sum(ordered) / len(ordered),
        samples_s=samples,
        meta=dict(meta or {}),
    )


@contextlib.contextmanager
def env_override(name: str, value: str):
    """Temporarily set environment variable ``name`` to ``value``.

    Restores the previous value (or unsets the variable) on exit — the
    one save/set/restore implementation behind the suite path overrides
    (``REPRO_BURST_PATH``, ``REPRO_FLEET_PATH``).
    """
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def speedup(baseline: TimingResult, candidate: TimingResult) -> float:
    """Median-over-median speedup of ``candidate`` versus ``baseline``."""
    if candidate.median_s <= 0.0:
        raise ValueError("candidate median must be positive")
    return baseline.median_s / candidate.median_s


def write_bench_json(
    payload: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write a bench payload as canonical JSON (atomic, trailing newline)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, separators=(",", ": "), indent=1)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    os.replace(tmp, target)
    return target


def results_payload(results: List[TimingResult]) -> List[Dict[str, object]]:
    """Serializable form of a result list (artifact ``results`` section)."""
    return [asdict(result) for result in results]


# ------------------------------------------------------------------ compare
class BenchError(Exception):
    """Malformed bench artifact or invalid comparison input."""


@dataclass(frozen=True)
class CaseComparison:
    """Median diff of one case against a committed baseline artifact."""

    name: str
    baseline_median_s: float
    current_median_s: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1 means the case got slower."""
        if self.baseline_median_s <= 0.0:
            return math.inf
        return self.current_median_s / self.baseline_median_s

    def regressed(self, tolerance: float) -> bool:
        """Whether the case slowed beyond ``tolerance`` (0.2 = +20%)."""
        return self.ratio > 1.0 + tolerance


def load_bench_json(path: Union[str, Path]) -> Dict[str, object]:
    """Read a bench artifact written by :func:`write_bench_json`.

    Validates the result records on the way in (:class:`BenchError` on
    a malformed artifact), so a gating run fails before the suite has
    spent minutes benchmarking against an unusable baseline.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    _case_records(payload, str(path))
    return payload


def _case_records(payload: Dict[str, object], label: str) -> List[Dict[str, object]]:
    """The validated ``results`` records of a bench payload.

    Raises :class:`BenchError` — an operational error, not a traceback —
    when the artifact is not a results payload or a record lacks the
    fields the regression gate consumes.
    """
    results = payload.get("results") if isinstance(payload, dict) else None
    if not isinstance(results, list):
        raise BenchError(f"{label} bench artifact has no 'results' list")
    for record in results:
        if (
            not isinstance(record, dict)
            or "name" not in record
            or "median_s" not in record
        ):
            raise BenchError(
                f"{label} bench artifact has a malformed result record "
                f"(need name/median_s): {record!r}"
            )
    return results


def _match_cases(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Tuple[List[CaseComparison], List[str]]:
    """One scan matching current cases against the baseline.

    Returns ``(comparisons, incomparable)``: cases present in both with
    identical ``meta`` become comparisons; cases present in both whose
    meta differs are incomparable (their names are returned); cases
    present in only one payload are ignored.
    """
    baseline_records = {r["name"]: r for r in _case_records(baseline, "baseline")}
    comparisons: List[CaseComparison] = []
    incomparable: List[str] = []
    for record in _case_records(current, "current"):
        name = record["name"]
        base = baseline_records.get(name)
        if base is None:
            continue
        if base.get("meta") != record.get("meta"):
            incomparable.append(name)
            continue
        comparisons.append(
            CaseComparison(
                name=name,
                baseline_median_s=float(base["median_s"]),
                current_median_s=float(record["median_s"]),
            )
        )
    return comparisons, incomparable


def compare_payloads(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[CaseComparison]:
    """Median-vs-median comparison of two bench payloads, by case name.

    Only cases present in both artifacts are compared (a new case has no
    baseline; a retired one no current), so growing a suite never breaks
    the regression gate.  Cases whose recorded ``meta`` (workload
    parameters — burst counts, durations, population sizes) differs are
    also skipped: timing a quick-mode run against a full-mode baseline
    would confound workload size with performance and wave real
    regressions through.  :func:`incomparable_cases` names the skipped
    ones so callers can surface them.
    """
    return _match_cases(current, baseline)[0]


def incomparable_cases(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Names of cases present in both payloads but with differing meta."""
    return _match_cases(current, baseline)[1]


def regressions(
    comparisons: List[CaseComparison], tolerance: float = 0.20
) -> List[CaseComparison]:
    """The comparisons that slowed beyond ``tolerance``."""
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance!r}")
    return [c for c in comparisons if c.regressed(tolerance)]
