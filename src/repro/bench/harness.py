"""Timing harness: warmup + repeats, median/IQR, canonical JSON output.

Wall-clock timing in CI and on laptops is noisy; the harness therefore
reports order statistics (median and interquartile range) over a fixed
number of repeats rather than a single mean, after warmup runs that
absorb import, allocation and branch-predictor transients.  Raw samples
are preserved in the artifact so trajectories can be re-analyzed later
without re-running.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.util.numerics import quantile


@dataclass(frozen=True)
class TimingResult:
    """Summary of one benchmark case.

    All durations are seconds of wall clock for one execution of the
    case callable.
    """

    name: str
    repeats: int
    warmup: int
    median_s: float
    iqr_s: float
    p25_s: float
    p75_s: float
    min_s: float
    mean_s: float
    samples_s: List[float]
    meta: Dict[str, object] = field(default_factory=dict)


def time_fn(
    name: str,
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
    meta: Optional[Dict[str, object]] = None,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` discarded runs and ``repeats`` samples."""
    if repeats < 1:
        raise ValueError(f"need at least one repeat, got {repeats!r}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup!r}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    ordered = sorted(samples)
    p25 = quantile(ordered, 0.25)
    p75 = quantile(ordered, 0.75)
    return TimingResult(
        name=name,
        repeats=repeats,
        warmup=warmup,
        median_s=quantile(ordered, 0.50),
        iqr_s=p75 - p25,
        p25_s=p25,
        p75_s=p75,
        min_s=ordered[0],
        mean_s=sum(ordered) / len(ordered),
        samples_s=samples,
        meta=dict(meta or {}),
    )


def speedup(baseline: TimingResult, candidate: TimingResult) -> float:
    """Median-over-median speedup of ``candidate`` versus ``baseline``."""
    if candidate.median_s <= 0.0:
        raise ValueError("candidate median must be positive")
    return baseline.median_s / candidate.median_s


def write_bench_json(
    payload: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write a bench payload as canonical JSON (atomic, trailing newline)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, separators=(",", ": "), indent=1)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    os.replace(tmp, target)
    return target


def results_payload(results: List[TimingResult]) -> List[Dict[str, object]]:
    """Serializable form of a result list (artifact ``results`` section)."""
    return [asdict(result) for result in results]
