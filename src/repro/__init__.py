"""Silent Tracker — SIGCOMM '21 reproduction.

A full-system reproduction of *"Silent Tracker: In-band Beam Management
for Soft Handover for mm-Wave Networks"* (Ganji, Lin, Kim, Kumar;
SIGCOMM '21 Posters): the protocol itself plus every substrate the
paper's 60 GHz SDR prototype provided — antennas and codebooks, a
statistical 60 GHz channel, NR-like SSB/RACH timing, mobility models,
base stations and mobiles on a deterministic discrete-event engine.

Quickstart::

    from repro.experiments import run_tracking_trial

    result = run_tracking_trial("walk", seed=7)
    print(result.outcome, result.completion_time_s)

See :mod:`repro.core` for the protocol, :mod:`repro.experiments` for
the figure reproductions, and DESIGN.md for the system inventory.
"""

from repro.core import SilentTracker, SilentTrackerConfig
from repro.net import Deployment, DeploymentConfig, Mobile

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "Mobile",
    "SilentTracker",
    "SilentTrackerConfig",
    "__version__",
]
