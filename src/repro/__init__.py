"""Silent Tracker — SIGCOMM '21 reproduction.

A full-system reproduction of *"Silent Tracker: In-band Beam Management
for Soft Handover for mm-Wave Networks"* (Ganji, Lin, Kim, Kumar;
SIGCOMM '21 Posters): the protocol itself plus every substrate the
paper's 60 GHz SDR prototype provided — antennas and codebooks, a
statistical 60 GHz channel, NR-like SSB/RACH timing, mobility models,
base stations and mobiles on a deterministic discrete-event engine.

Quickstart::

    from repro.experiments import run_tracking_trial

    result = run_tracking_trial("walk", seed=7)
    print(result.outcome, result.completion_time_s)

Or through the typed session API (any registered protocol/scenario)::

    from repro import Session, TrialSpec

    with Session(TrialSpec(scenario="vehicular",
                           protocol="silent-tracker", seed=7)) as session:
        protocol = session.attach_protocol()
        session.run()

Protocols, scenarios, codebooks and experiment kinds are plugin
registries (:mod:`repro.registry`): register a custom arm with the
``register_*`` decorators and it runs through every experiment,
campaign grid and CLI command like the built-ins (``repro list`` shows
the live sets).

See :mod:`repro.core` for the protocol, :mod:`repro.experiments` for
the figure reproductions, and DESIGN.md for the system inventory.
"""

from repro.api import Session, TrialResult, TrialSpec
from repro.core import SilentTracker, SilentTrackerConfig
from repro.net import Deployment, DeploymentConfig, Mobile
from repro.registry import (
    CODEBOOKS,
    EXPERIMENTS,
    PROTOCOLS,
    SCENARIOS,
    register_codebook,
    register_experiment,
    register_protocol,
    register_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CODEBOOKS",
    "Deployment",
    "DeploymentConfig",
    "EXPERIMENTS",
    "Mobile",
    "PROTOCOLS",
    "SCENARIOS",
    "Session",
    "SilentTracker",
    "SilentTrackerConfig",
    "TrialResult",
    "TrialSpec",
    "register_codebook",
    "register_experiment",
    "register_protocol",
    "register_scenario",
    "__version__",
]
