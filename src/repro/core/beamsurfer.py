"""BeamSurfer: in-band serving-cell beam maintenance (paper ref. [2]).

Two adjustments, both driven purely by serving-cell RSS:

(i)  **Mobile-side (S-RBA)** — when the serving RSS drops 3 dB below the
     level the current receive beam delivered at selection, probe the
     two directionally adjacent receive beams on the next serving bursts
     and move to the best of the three.

(ii) **Base-station-side (CABM)** — when (i) no longer suffices (the
     best mobile beam is still 3 dB down), request a transmit-beam
     switch from the serving cell.  The request rides the uplink, so at
     the true cell edge it can be *delayed or lost* (edge G of Fig. 2b),
     which is exactly when the serving link starts to die and Silent
     Tracker's silently-tracked neighbor beam becomes the escape route.

The class is a pure decision engine: the enclosing protocol feeds it
serving-cell measurements and asks which receive beam to use for each
serving burst; it reports when a CABM request should be sent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.measure.filters import DropDetector
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook


class ServingState(enum.Enum):
    """Serving-side sub-machine (EO / S-RBA / CABM of Fig. 2b)."""

    EDGE_OPERATION = "eo"
    MOBILE_ADAPTATION = "s-rba"
    CELL_ASSISTED = "cabm"


@dataclass(frozen=True)
class BeamSurferConfig:
    """BeamSurfer thresholds.

    Attributes
    ----------
    adapt_threshold_db:
        The 3 dB drop that triggers receive-beam adaptation.
    ewma_alpha:
        RSS smoothing factor.
    probe_patience_bursts:
        How many serving bursts a probe candidate gets before the probe
        moves on (non-detections count).
    """

    adapt_threshold_db: float = 3.0
    ewma_alpha: float = 0.6
    probe_patience_bursts: int = 1

    def __post_init__(self) -> None:
        if self.adapt_threshold_db <= 0.0:
            raise ValueError(
                f"adapt threshold must be positive, got {self.adapt_threshold_db!r}"
            )
        if self.probe_patience_bursts < 1:
            raise ValueError(
                f"probe patience must be >= 1, got {self.probe_patience_bursts!r}"
            )


class BeamSurfer:
    """Serving-link beam maintenance decision engine.

    Parameters
    ----------
    codebook:
        The mobile's receive codebook.
    initial_beam:
        Receive beam the connection was established on.
    on_transition:
        ``f(old_state, new_state, edge_label, now_s)`` trace hook.
    """

    def __init__(
        self,
        codebook: Codebook,
        initial_beam: int,
        config: Optional[BeamSurferConfig] = None,
        on_transition: Optional[Callable] = None,
    ) -> None:
        self.codebook = codebook
        self.config = config or BeamSurferConfig()
        self._state = ServingState.EDGE_OPERATION
        self._beam = initial_beam
        self._detector = DropDetector(
            self.config.adapt_threshold_db, self.config.ewma_alpha
        )
        self._armed = False
        self._on_transition = on_transition
        # Probe bookkeeping (S-RBA).
        self._probe_candidates: List[int] = []
        self._probe_results: dict = {}
        self._probe_current: Optional[int] = None
        self._probe_dwells_left = 0
        self._baseline_rss: Optional[float] = None
        #: Set when mobile-side adaptation failed and the serving cell
        #: should be asked for a transmit-beam switch; the enclosing
        #: protocol clears it once the request is delivered.
        self.cabm_request_pending = False
        # Statistics.
        self.mobile_switches = 0
        self.cabm_requests = 0

    # -------------------------------------------------------------- accessors
    @property
    def state(self) -> ServingState:
        return self._state

    @property
    def beam(self) -> int:
        """Receive beam currently committed for serving data."""
        return self._beam

    @property
    def smoothed_rss_dbm(self) -> Optional[float]:
        """Smoothed serving RSS (None before the first detection)."""
        return self._detector.smoothed_dbm if self._armed else None

    def _transition(self, new_state: ServingState, edge: str, now_s: float) -> None:
        if new_state is self._state:
            return
        old = self._state
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state, edge, now_s)

    # ------------------------------------------------------------ burst beam
    def beam_for_burst(self) -> int:
        """Receive beam to hold for the upcoming serving-cell burst.

        In EO this is the committed beam; during S-RBA probing it is the
        probe candidate under evaluation.
        """
        if self._state is ServingState.MOBILE_ADAPTATION and self._probe_current is not None:
            return self._probe_current
        return self._beam

    # ---------------------------------------------------------- measurements
    def on_serving_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        """Feed the result of a serving-cell burst dwell."""
        if self._state is ServingState.MOBILE_ADAPTATION:
            self._on_probe_measurement(measurement, now_s)
            return
        self._on_committed_measurement(measurement, now_s)

    def _on_committed_measurement(
        self, measurement: RssMeasurement, now_s: float
    ) -> None:
        if not measurement.detected:
            # A missed serving dwell on the committed beam is a strong
            # degradation signal; treat it as a threshold crossing.
            if self._armed:
                self._begin_probe(now_s)
            return
        if not self._armed:
            self._detector.rearm(measurement.rss_dbm)
            self._armed = True
            return
        dropped = self._detector.update(measurement.rss_dbm)
        if self._state is ServingState.CELL_ASSISTED:
            # Waiting for the cell to move its transmit beam; recovery
            # is detected here (edge F), renewed degradation re-probes.
            if not dropped:
                self.cabm_request_pending = False
                self._detector.rearm(measurement.rss_dbm)
                self._transition(ServingState.EDGE_OPERATION, "F", now_s)
            return
        if dropped:
            self._begin_probe(now_s)
        # else: edge A self-loop — connectivity healthy, nothing to do.

    # -------------------------------------------------------------- probing
    def _begin_probe(self, now_s: float) -> None:
        """Enter S-RBA: evaluate the two directionally adjacent beams."""
        self._baseline_rss = self._detector.smoothed_dbm
        self._probe_candidates = self.codebook.adjacent_indices(self._beam)
        if not self._probe_candidates:
            # Single-beam (omni) codebook: mobile-side adaptation is
            # impossible, go straight to cell assistance (edge G).
            self._request_cabm(now_s)
            return
        self._probe_results = {}
        self._probe_current = self._probe_candidates[0]
        self._probe_dwells_left = self.config.probe_patience_bursts
        self._transition(ServingState.MOBILE_ADAPTATION, "G", now_s)

    def _on_probe_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        candidate = self._probe_current
        if measurement.detected:
            previous = self._probe_results.get(candidate)
            if previous is None or measurement.rss_dbm > previous:
                self._probe_results[candidate] = measurement.rss_dbm
            advance = True
        else:
            self._probe_dwells_left -= 1
            advance = self._probe_dwells_left <= 0
        if not advance:
            return
        next_index = self._probe_candidates.index(candidate) + 1
        if next_index < len(self._probe_candidates):
            self._probe_current = self._probe_candidates[next_index]
            self._probe_dwells_left = self.config.probe_patience_bursts
            return
        self._conclude_probe(now_s)

    def _conclude_probe(self, now_s: float) -> None:
        """Pick the best candidate (or keep the old beam) after probing."""
        self._probe_current = None
        best_beam = self._beam
        best_rss = self._baseline_rss if self._baseline_rss is not None else -1e9
        for beam, rss in self._probe_results.items():
            if rss > best_rss:
                best_rss = rss
                best_beam = beam
        reference = self._detector.reference_dbm
        switched = best_beam != self._beam
        if switched:
            self._beam = best_beam
            self.mobile_switches += 1
        recovered = (
            self._probe_results.get(best_beam) is not None
            and reference is not None
            and self._probe_results[best_beam]
            >= reference - self.config.adapt_threshold_db
        )
        if recovered or (switched and reference is None):
            self._detector.rearm(best_rss)
            self._transition(ServingState.EDGE_OPERATION, "A", now_s)
        else:
            # The best the mobile can do alone is still degraded: ask
            # the serving cell for a transmit-beam switch (edge G).
            if switched:
                self._detector.rearm(best_rss)
            self._request_cabm(now_s)

    def _request_cabm(self, now_s: float) -> None:
        self.cabm_request_pending = True
        self.cabm_requests += 1
        self._transition(ServingState.CELL_ASSISTED, "G", now_s)

    # ------------------------------------------------------------- rebinding
    def rebind(self, beam: int, rss_dbm: Optional[float] = None) -> None:
        """Reset onto a new serving beam (after handover or re-entry)."""
        self._beam = beam
        self._state = ServingState.EDGE_OPERATION
        self._probe_current = None
        self._probe_candidates = []
        self._probe_results = {}
        self.cabm_request_pending = False
        if rss_dbm is not None:
            self._detector.rearm(rss_dbm)
            self._armed = True
        else:
            self._armed = False
