"""Fig. 2b as data: the state-machine topology and DOT rendering.

The paper presents the protocol as a five-state diagram with edges A-H.
This module is the single source of truth for that topology — the
FIG2B-FSM bench checks simulated edge coverage against it, and
:func:`render_dot` emits a graphviz rendering for the docs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.events import Fig2bEdge

#: The figure's states, in presentation order.
FIG2B_STATES: Tuple[str, ...] = ("EO", "S-RBA", "CABM", "N-A/R", "N-RBA")

#: Edge label -> (source state, destination state), per Fig. 2b.
FIG2B_TOPOLOGY: Dict[str, Tuple[str, str]] = {
    "A": ("EO", "EO"),
    "B": ("EO", "N-A/R"),
    "C": ("N-A/R", "N-RBA"),
    "D": ("N-RBA", "N-A/R"),
    "E": ("N-RBA", "EO"),
    "F": ("CABM", "EO"),
    "G": ("S-RBA", "CABM"),
    "H": ("N-RBA", "N-RBA"),
}

#: Human-readable guard condition per edge (the figure's annotations).
FIG2B_GUARDS: Dict[str, str] = {
    "A": "dRSS_S < 3 dB (serving connectivity healthy)",
    "B": "initiate neighbor cell beam search",
    "C": "found cell beam",
    "D": "dRSS_N > 10 dB (lost beam)",
    "E": "RSS_N > RSS_S + T (handover trigger)",
    "F": "cell-assisted receive beam adaptation",
    "G": "dRSS_S > 3 dB (assistance delayed or lost)",
    "H": "dRSS_N > 3 dB (adjacent receive-beam switch)",
}


def edges() -> List[Fig2bEdge]:
    """All edges in label order."""
    return [Fig2bEdge(label) for label in sorted(FIG2B_TOPOLOGY)]


def validate_topology() -> None:
    """Internal consistency: every edge endpoint is a known state and
    every enum member has a topology entry.  Raises on violation."""
    for label, (src, dst) in FIG2B_TOPOLOGY.items():
        if src not in FIG2B_STATES or dst not in FIG2B_STATES:
            raise ValueError(f"edge {label} references unknown state {src}->{dst}")
        Fig2bEdge(label)  # raises if the label is not an enum member
    for member in Fig2bEdge:
        if member.value not in FIG2B_TOPOLOGY:
            raise ValueError(f"enum edge {member.value} missing from topology")
    if set(FIG2B_GUARDS) != set(FIG2B_TOPOLOGY):
        raise ValueError("guard annotations out of sync with topology")


def render_dot(include_guards: bool = False) -> str:
    """Fig. 2b as graphviz DOT source.

    ``include_guards=True`` annotates each edge with its threshold
    condition, matching the figure's labels.
    """
    validate_topology()
    lines = [
        "digraph fig2b {",
        "  rankdir=LR;",
        '  label="Silent Tracker state machine (Fig. 2b)";',
    ]
    for state in FIG2B_STATES:
        lines.append(f'  "{state}" [shape=ellipse];')
    for label in sorted(FIG2B_TOPOLOGY):
        src, dst = FIG2B_TOPOLOGY[label]
        text = f"{label}: {FIG2B_GUARDS[label]}" if include_guards else label
        lines.append(f'  "{src}" -> "{dst}" [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)


def render_ascii() -> str:
    """Terminal-friendly adjacency listing of the machine."""
    validate_topology()
    lines = ["Silent Tracker state machine (Fig. 2b):"]
    for label in sorted(FIG2B_TOPOLOGY):
        src, dst = FIG2B_TOPOLOGY[label]
        lines.append(f"  [{label}] {src:>6} -> {dst:<6}  {FIG2B_GUARDS[label]}")
    return "\n".join(lines)
