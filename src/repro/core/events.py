"""Shared protocol enums: Fig. 2b states and edge labels.

The paper's Fig. 2b draws one machine whose states describe where the
mobile's beam-management attention is.  Operationally two concerns run
concurrently — serving-link maintenance (EO / S-RBA / CABM, i.e.
BeamSurfer) and neighbor-beam management (N-A/R / N-RBA) — so the
implementation composes two sub-machines and labels every transition
with the figure's edge letter for auditability.
"""

from __future__ import annotations

import enum


class Fig2bEdge(enum.Enum):
    """Transition labels from the paper's Fig. 2b."""

    #: Serving connectivity healthy: ``dRSS_S < 3 dB`` (EO self-loop).
    A = "A"
    #: Initiate neighbor cell beam search.
    B = "B"
    #: Found a neighbor cell beam.
    C = "C"
    #: Lost the neighbor beam: ``dRSS_N > 10 dB``.
    D = "D"
    #: Handover trigger: ``RSS_N > RSS_S + T``.
    E = "E"
    #: Cell-assisted receive-beam adaptation succeeded.
    F = "F"
    #: Mobile-side switch insufficient / assistance delayed or lost:
    #: ``dRSS_S > 3 dB``.
    G = "G"
    #: Neighbor receive-beam adaptation: ``dRSS_N > 3 dB`` adjacent switch.
    H = "H"


class NeighborState(enum.Enum):
    """Neighbor-side sub-machine states."""

    #: Not engaged in neighbor beam management (not at cell edge).
    IDLE = "idle"
    #: Neighbor cell acquisition / re-acquisition search (N-A/R).
    SEARCHING = "n-a/r"
    #: Neighbor receive-beam adaptation — silently tracking (N-RBA).
    TRACKING = "n-rba"


class TrackerPhase(enum.Enum):
    """Top-level lifecycle of the Silent Tracker protocol instance."""

    #: Normal operation: serving maintenance, possibly neighbor tracking.
    OPERATING = "operating"
    #: Random access toward the handover target is in flight; both beams
    #: must be maintained until it concludes.
    HANDOVER = "handover"
    #: Serving context was lost; re-entering from idle (hard handover).
    REENTRY = "reentry"
