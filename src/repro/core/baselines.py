"""Baseline protocols for the comparison benches.

* :class:`ReactiveHandover` — what omnidirectional cellular does,
  transplanted to mm-wave: maintain the serving link (BeamSurfer) and do
  *nothing* about neighbors until the serving link actually dies; then
  perform the full directional cell search and initial access from
  scratch.  Every handover is hard; the paper's introduction motivates
  Silent Tracker with exactly this cost (up to 1.28 s of search alone).
* :class:`OracleTracker` — genie upper bound: perfect knowledge of the
  best beams at every instant and of the true mean RSS margin.  No
  search cost, no misalignment, no adaptation lag.  The gap between
  Silent Tracker and the oracle is the price of being purely in-band.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.beamsurfer import BeamSurfer
from repro.core.config import SilentTrackerConfig
from repro.core.events import NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.measure.report import RssMeasurement
from repro.net.deployment import Deployment
from repro.net.handover import HandoverLog, HandoverOutcome
from repro.net.mobile import Mobile
from repro.net.random_access import RachResult, RandomAccessProcedure
from repro.registry import make_protocol, register_protocol
from repro.sim.engine import PeriodicTask


class ReactiveHandover:
    """Reactive hard-handover baseline (no neighbor tracking).

    Implements :class:`~repro.net.mobile.BurstListener`.
    """

    def __init__(
        self,
        deployment: Deployment,
        mobile: Mobile,
        serving_cell: str,
        config: Optional[SilentTrackerConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.mobile = mobile
        self.config = config or SilentTrackerConfig()
        self.sim = deployment.sim
        self.links = deployment.links
        self.trace = deployment.trace
        self.metrics = deployment.metrics
        self._stations: Dict[str, object] = {
            s.cell_id: s for s in deployment.stations
        }
        if serving_cell not in self._stations:
            raise ValueError(f"unknown serving cell {serving_cell!r}")
        self.handover_log = HandoverLog()

        station = self._stations[serving_cell]
        now = self.sim.now
        initial_tx = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(now).position)
        )
        initial_rx = mobile.best_rx_beam_towards(station, now)
        station.attach(mobile.mobile_id, initial_tx)
        mobile.connection.establish(serving_cell, initial_rx, now)
        self.beamsurfer = BeamSurfer(
            mobile.codebook, initial_rx, self.config.beamsurfer
        )
        self._last_good_service_s = now
        #: Blind-search machinery, created only after the link dies.
        self._searcher: Optional[NeighborTracker] = None
        self._rach: Optional[RandomAccessProcedure] = None
        self._rach_target: Optional[str] = None
        self._pending_record = None
        self._context_lost_s: Optional[float] = None
        self._watchdog: Optional[PeriodicTask] = None
        self._started = False
        mobile.attach_listener(self)

    # ----------------------------------------------------------------- wiring
    def start(self) -> None:
        if self._started:
            raise RuntimeError("baseline already started")
        self._started = True
        self._watchdog = PeriodicTask(
            self.sim,
            self.config.monitor_period_s,
            self._watchdog_tick,
            start_delay=self.config.monitor_period_s,
            label="reactive.watchdog",
        )

    def stop(self) -> None:
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None

    def _serving_station(self):
        cell = self.mobile.connection.serving_cell
        return self._stations[cell] if cell is not None else None

    # ----------------------------------------------------- BurstListener API
    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        serving = self.mobile.connection.serving_cell
        if cell_id == serving:
            return self.beamsurfer.beam_for_burst()
        if self._searcher is not None:
            return self._searcher.beam_for_burst(cell_id)
        return None  # reactive: neighbors are ignored while connected

    def on_measurement(self, measurement: RssMeasurement) -> None:
        now = self.sim.now
        serving = self.mobile.connection.serving_cell
        if measurement.cell_id == serving:
            self._on_serving_measurement(measurement, now)
            return
        if self._searcher is None:
            return
        self._searcher.on_measurement(measurement, now)
        if (
            self._searcher.state is NeighborState.TRACKING
            and self._rach is None
        ):
            self._initiate_access(now)

    def _on_serving_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        station = self._serving_station()
        if station is None:
            return
        if (
            measurement.detected
            and measurement.snr_db is not None
            and measurement.snr_db >= station.link_budget.decode_snr_db
        ):
            self.mobile.connection.touch(now_s)
            self._last_good_service_s = now_s
        self.beamsurfer.on_serving_measurement(measurement, now_s)
        if self.beamsurfer.cabm_request_pending:
            self._attempt_cabm_request(now_s)

    def _attempt_cabm_request(self, now_s: float) -> None:
        station = self._serving_station()
        if station is None or not station.is_attached(self.mobile.mobile_id):
            return
        station_beam = station.serving_tx_beam(self.mobile.mobile_id)
        delivered = self.links.uplink_success(
            station,
            self.mobile.mobile_id,
            self.mobile.pose_at(now_s),
            self.mobile.rx_gain_fn(now_s),
            self.beamsurfer.beam,
            station_beam,
            now_s,
        )
        if delivered:
            bearing = station.pose.bearing_to(self.mobile.pose_at(now_s).position)
            station.refine_tx_beam(self.mobile.mobile_id, bearing)

    # ------------------------------------------------------------- re-entry
    def _watchdog_tick(self) -> None:
        connection = self.mobile.connection
        now = self.sim.now
        if connection.serving_cell is None:
            return
        silence = connection.silence_s(now)
        if silence > self.config.context_loss_timeout_s:
            self.trace.emit(
                now, "connection.lost", self.mobile.mobile_id, silence_s=silence
            )
            self.metrics.incr("connection.context_lost")
            station = self._serving_station()
            if station is not None:
                station.detach(self.mobile.mobile_id)
            connection.drop()
            self._context_lost_s = now
            self._begin_blind_search(now)
        elif silence > self.config.rlf_timeout_s and connection.connected:
            connection.declare_rlf()
            self.metrics.incr("connection.rlf")

    def _begin_blind_search(self, now_s: float) -> None:
        """Full directional cell search with no prior information."""
        self._searcher = NeighborTracker(
            self.mobile.codebook,
            list(self._stations),
            adapt_threshold_db=self.config.adapt_threshold_db,
            loss_threshold_db=self.config.loss_threshold_db,
            loss_miss_limit=self.config.loss_miss_limit,
            ewma_alpha=self.config.ewma_alpha,
        )
        self._searcher.begin_search(now_s)
        self.metrics.incr("reactive.blind_search")

    def _initiate_access(self, now_s: float) -> None:
        target = self._searcher.focused_cell
        if target is None or self._searcher.last_tx_beam is None:
            return
        self._rach_target = target
        self._pending_record = self.handover_log.open_record(
            self.mobile.mobile_id, "(lost)", target, now_s
        )
        self._rach = RandomAccessProcedure(
            self.sim,
            self.links,
            self._stations[target],
            self.mobile,
            self.deployment.config.rach,
            lambda: self._searcher.current_beam if self._searcher else None,
            lambda: self._searcher.last_tx_beam if self._searcher else None,
            self._on_rach_complete,
            trace=self.trace,
        )
        self._rach.start()

    def _on_rach_complete(self, result: RachResult) -> None:
        now = self.sim.now
        target = self._rach_target
        record = self._pending_record
        self._rach = None
        self._rach_target = None
        if record is not None:
            record.rach_attempts = result.attempts
        if not result.succeeded:
            if record is not None:
                record.outcome = HandoverOutcome.FAILED
            self._pending_record = None
            # Keep searching; the tracked beam (if any) will re-trigger.
            if self._searcher is not None and (
                self._searcher.state is NeighborState.TRACKING
            ):
                self._initiate_access(now)
            return
        # Hard handover completes: fresh context, full penalty.
        rx_beam = (
            self._searcher.current_beam
            if self._searcher and self._searcher.current_beam is not None
            else 0
        )
        tx_beam = self._searcher.last_tx_beam if self._searcher else None
        station = self._stations[target]
        station.attach(self.mobile.mobile_id, tx_beam)
        self.mobile.connection.establish(target, rx_beam, now)
        self.beamsurfer.rebind(
            rx_beam, self._searcher.smoothed_rss_dbm if self._searcher else None
        )
        interruption = (
            max(0.0, now - self._last_good_service_s)
            + self.config.hard_reentry_penalty_s
        )
        self._last_good_service_s = now
        if record is not None:
            record.complete_s = now
            record.outcome = HandoverOutcome.HARD
            record.interruption_s = interruption
        self.metrics.incr("handover.hard")
        self.metrics.record("handover.interruption_s", now, interruption)
        self.trace.emit(
            now,
            "handover.complete",
            self.mobile.mobile_id,
            target=target,
            outcome="hard",
            interruption_s=interruption,
        )
        self._searcher = None
        self._context_lost_s = None


class OracleTracker:
    """Genie-aided upper bound: perfect beams, perfect trigger.

    Implements :class:`~repro.net.mobile.BurstListener`.  Every burst is
    measured on the geometrically optimal receive beam; the handover
    trigger compares true mean RSS (no noise, no staleness); random
    access always uses the instantaneously optimal beams.
    """

    def __init__(
        self,
        deployment: Deployment,
        mobile: Mobile,
        serving_cell: str,
        handover_margin_db: float = 3.0,
    ) -> None:
        self.deployment = deployment
        self.mobile = mobile
        self.sim = deployment.sim
        self.links = deployment.links
        self.metrics = deployment.metrics
        self._stations: Dict[str, object] = {
            s.cell_id: s for s in deployment.stations
        }
        self.handover_margin_db = handover_margin_db
        self.handover_log = HandoverLog()
        station = self._stations[serving_cell]
        now = self.sim.now
        station.attach(
            mobile.mobile_id,
            station.best_tx_beam_towards(
                station.pose.bearing_to(mobile.pose_at(now).position)
            ),
        )
        mobile.connection.establish(
            serving_cell, mobile.best_rx_beam_towards(station, now), now
        )
        self._rach: Optional[RandomAccessProcedure] = None
        self._rach_target: Optional[str] = None
        self._pending_record = None
        self._last_good_service_s = now
        mobile.attach_listener(self)

    def start(self) -> None:
        """Interface parity with the real protocols (no watchdog needed)."""

    def stop(self) -> None:
        """Interface parity with the real protocols."""

    # ----------------------------------------------------- BurstListener API
    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        return self.mobile.best_rx_beam_towards(self._stations[cell_id], now_s)

    def on_measurement(self, measurement: RssMeasurement) -> None:
        now = self.sim.now
        connection = self.mobile.connection
        if measurement.cell_id == connection.serving_cell and measurement.detected:
            connection.touch(now)
            self._last_good_service_s = now
        if self._rach is None and connection.serving_cell is not None:
            self._evaluate_trigger(now)

    def _mean_rss(self, station, now_s: float) -> float:
        pose = self.mobile.pose_at(now_s)
        bearing_to_mobile = station.pose.bearing_to(pose.position)
        tx_beam = station.best_tx_beam_towards(bearing_to_mobile)
        rx_beam = self.mobile.best_rx_beam_towards(station, now_s)
        rx_gain = self.mobile.rx_gain_fn(now_s)(
            rx_beam, pose.bearing_to(station.pose.position)
        )
        return self.links.channel.mean_rss_dbm(
            station.pose,
            pose,
            station.tx_gain_dbi(tx_beam, bearing_to_mobile),
            rx_gain,
            station.tx_power_dbm,
        )

    def _evaluate_trigger(self, now_s: float) -> None:
        serving_cell = self.mobile.connection.serving_cell
        serving_rss = self._mean_rss(self._stations[serving_cell], now_s)
        neighbors = [c for c in self._stations if c != serving_cell]
        if not neighbors:
            return
        # Sweep every neighbor once, then pick the max; ties resolve to
        # the first neighbor, as the former strict-improvement scan did.
        neighbor_rss = [self._mean_rss(self._stations[c], now_s) for c in neighbors]
        best = max(range(len(neighbors)), key=neighbor_rss.__getitem__)
        best_cell, best_rss = neighbors[best], neighbor_rss[best]
        if best_rss <= serving_rss + self.handover_margin_db:
            return
        self._rach_target = best_cell
        self._pending_record = self.handover_log.open_record(
            self.mobile.mobile_id, serving_cell, best_cell, now_s
        )
        station = self._stations[best_cell]
        self._rach = RandomAccessProcedure(
            self.sim,
            self.links,
            station,
            self.mobile,
            self.deployment.config.rach,
            lambda: self.mobile.best_rx_beam_towards(station, self.sim.now),
            lambda: station.best_tx_beam_towards(
                station.pose.bearing_to(self.mobile.pose_at(self.sim.now).position)
            ),
            self._on_rach_complete,
        )
        self._rach.start()

    def _on_rach_complete(self, result: RachResult) -> None:
        now = self.sim.now
        target = self._rach_target
        record = self._pending_record
        self._rach = None
        self._rach_target = None
        if record is not None:
            record.rach_attempts = result.attempts
        if not result.succeeded:
            if record is not None:
                record.outcome = HandoverOutcome.FAILED
            self._pending_record = None
            return
        old = self.mobile.connection.serving_cell
        if old is not None:
            self._stations[old].detach(self.mobile.mobile_id)
        station = self._stations[target]
        tx_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(self.mobile.pose_at(now).position)
        )
        station.attach(self.mobile.mobile_id, tx_beam)
        self.mobile.connection.establish(
            target, self.mobile.best_rx_beam_towards(station, now), now
        )
        interruption = max(0.0, now - self._last_good_service_s)
        self._last_good_service_s = now
        if record is not None:
            record.complete_s = now
            record.outcome = HandoverOutcome.SOFT
            record.interruption_s = interruption
        self.metrics.incr("handover.soft")
        self._pending_record = None


# ------------------------------------------------------------ protocol arms
@register_protocol("silent-tracker")
def _build_silent_tracker(
    deployment: Deployment,
    mobile: Mobile,
    serving_cell: str,
    config: Optional[SilentTrackerConfig] = None,
):
    """The paper's protocol: in-band silent neighbor tracking."""
    from repro.core.silent_tracker import SilentTracker

    return SilentTracker(deployment, mobile, serving_cell, config)


@register_protocol("reactive")
def _build_reactive(
    deployment: Deployment,
    mobile: Mobile,
    serving_cell: str,
    config: Optional[SilentTrackerConfig] = None,
):
    """Reactive hard handover: full blind search after the link dies."""
    return ReactiveHandover(deployment, mobile, serving_cell, config)


@register_protocol("oracle")
def _build_oracle(
    deployment: Deployment,
    mobile: Mobile,
    serving_cell: str,
    config: Optional[SilentTrackerConfig] = None,
):
    """Genie upper bound: perfect beams and a perfect trigger."""
    return OracleTracker(deployment, mobile, serving_cell)


def make_baseline(
    name: str,
    deployment: Deployment,
    mobile: Mobile,
    serving_cell: str,
    config: Optional[SilentTrackerConfig] = None,
):
    """Build any registered protocol arm (not just the paper's three).

    Thin wrapper over :func:`repro.registry.make_protocol`; unknown
    names raise with the full list of registered arms.
    """
    return make_protocol(name, deployment, mobile, serving_cell, config)
