"""Neighbor-side sub-machine: acquisition (N-A/R) and tracking (N-RBA).

The tracker owns everything Fig. 2b says about the neighbor cell:

* **N-A/R** — walk the receive codebook, one beam per neighbor SSB
  burst, until a dwell detects a cell beam (edge C).  Re-acquisition
  after a loss searches in a *spiral* around the last known beam, since
  under continuous motion the beam rarely jumps far.
* **N-RBA** — hold the found beam; when its smoothed RSS drops 3 dB
  below the selection level (edge H), probe the two directionally
  adjacent beams and commit to the best.  A 10 dB drop or a run of
  missed dwells declares the beam lost (edge D) and returns to N-A/R.

The tracker is *silent*: nothing here transmits; every decision uses
only in-band RSS at the mobile.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.events import Fig2bEdge, NeighborState
from repro.measure.filters import DropDetector
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook


def spiral_order(center: int, n_beams: int) -> List[int]:
    """Beam visiting order expanding outward from ``center``.

    ``[c, c+1, c-1, c+2, c-2, ...]`` modulo the ring size, without
    duplicates — the re-acquisition order after a tracked beam is lost.
    """
    if n_beams < 1:
        raise ValueError(f"need >= 1 beam, got {n_beams!r}")
    if not 0 <= center < n_beams:
        raise IndexError(f"center {center} out of range for {n_beams} beams")
    order = [center]
    for step in range(1, n_beams // 2 + 1):
        order.append((center + step) % n_beams)
        order.append((center - step) % n_beams)
    # Deduplicate while preserving order (even ring sizes visit the
    # antipode twice).
    seen = set()
    unique: List[int] = []
    for beam in order:
        if beam not in seen:
            seen.add(beam)
            unique.append(beam)
    return unique


class NeighborTracker:
    """Acquire and silently track one neighbor cell's beam.

    Parameters
    ----------
    codebook:
        The mobile's receive codebook.
    neighbor_cells:
        Cell ids this tracker may search (every non-serving cell).
    adapt_threshold_db / loss_threshold_db / loss_miss_limit / ewma_alpha:
        See :class:`~repro.core.config.SilentTrackerConfig`.
    on_transition:
        ``f(old_state, new_state, edge: Fig2bEdge, now_s)`` trace hook.
    """

    def __init__(
        self,
        codebook: Codebook,
        neighbor_cells: List[str],
        adapt_threshold_db: float = 3.0,
        loss_threshold_db: float = 10.0,
        loss_miss_limit: int = 3,
        ewma_alpha: float = 0.6,
        on_transition: Optional[Callable] = None,
    ) -> None:
        if not neighbor_cells:
            raise ValueError("tracker needs at least one neighbor cell")
        self.codebook = codebook
        self.adapt_threshold_db = adapt_threshold_db
        self.loss_threshold_db = loss_threshold_db
        self.loss_miss_limit = loss_miss_limit
        self.ewma_alpha = ewma_alpha
        self._on_transition = on_transition
        self._state = NeighborState.IDLE
        self._cells = list(neighbor_cells)
        # Search bookkeeping: per-cell sweep order and cursor.
        self._sweep_order: Dict[str, List[int]] = {}
        self._sweep_cursor: Dict[str, int] = {}
        # Tracking bookkeeping.
        self._focused_cell: Optional[str] = None
        self._beam: Optional[int] = None
        self._tx_beam: Optional[int] = None
        self._detector = DropDetector(adapt_threshold_db, ewma_alpha)
        self._miss_streak = 0
        # H-probe bookkeeping.
        self._probe_candidates: List[int] = []
        self._probe_results: Dict[int, float] = {}
        self._probe_current: Optional[int] = None
        # Statistics (read by the Fig. 2a experiment).
        self.search_dwells = 0
        self.search_dwells_at_found = None  # type: Optional[int]
        self.acquisitions = 0
        self.reacquisitions = 0
        self.adjacent_switches = 0
        self.losses = 0

    # -------------------------------------------------------------- accessors
    @property
    def state(self) -> NeighborState:
        return self._state

    @property
    def focused_cell(self) -> Optional[str]:
        """The cell being tracked (None unless TRACKING)."""
        return self._focused_cell

    @property
    def current_beam(self) -> Optional[int]:
        """Committed receive beam toward the tracked cell, or None."""
        return self._beam if self._state is NeighborState.TRACKING else None

    @property
    def last_tx_beam(self) -> Optional[int]:
        """Last detected transmit beam of the tracked cell."""
        return self._tx_beam if self._state is NeighborState.TRACKING else None

    @property
    def smoothed_rss_dbm(self) -> Optional[float]:
        """Smoothed tracked-beam RSS (None unless TRACKING)."""
        if self._state is not NeighborState.TRACKING:
            return None
        return self._detector.smoothed_dbm

    def _transition(
        self, new_state: NeighborState, edge: Fig2bEdge, now_s: float
    ) -> None:
        if new_state is self._state:
            return
        old = self._state
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state, edge, now_s)

    # --------------------------------------------------------------- control
    def begin_search(self, now_s: float, around_beam: Optional[int] = None) -> None:
        """Enter N-A/R (edge B from EO, or D-triggered re-acquisition).

        ``around_beam`` seeds a spiral order; otherwise each cell is
        swept linearly from beam 0.
        """
        if self._state is NeighborState.TRACKING:
            raise RuntimeError("begin_search while tracking; call declare_lost first")
        order = (
            spiral_order(around_beam, len(self.codebook))
            if around_beam is not None
            else self.codebook.sweep_order()
        )
        for cell in self._cells:
            self._sweep_order[cell] = list(order)
            self._sweep_cursor[cell] = 0
        was_idle = self._state is NeighborState.IDLE
        self._transition(
            NeighborState.SEARCHING, Fig2bEdge.B if was_idle else Fig2bEdge.D, now_s
        )

    def go_idle(self, now_s: float) -> None:
        """Stop all neighbor activity (left the cell edge / after handover)."""
        self._focused_cell = None
        self._beam = None
        self._tx_beam = None
        self._probe_current = None
        self._probe_candidates = []
        self._probe_results = {}
        self._miss_streak = 0
        # Direct state write: going idle is administrative, not a
        # Fig. 2b edge.
        self._state = NeighborState.IDLE

    def retarget(self, neighbor_cells: List[str]) -> None:
        """Replace the searchable cell set (after a serving-cell switch)."""
        if not neighbor_cells:
            raise ValueError("tracker needs at least one neighbor cell")
        self._cells = list(neighbor_cells)
        self._sweep_order.clear()
        self._sweep_cursor.clear()

    # ------------------------------------------------------------ burst beam
    def beam_for_burst(self, cell_id: str) -> Optional[int]:
        """Receive beam to hold for ``cell_id``'s burst, or None to skip."""
        if self._state is NeighborState.SEARCHING:
            if cell_id not in self._sweep_order:
                return None
            order = self._sweep_order[cell_id]
            return order[self._sweep_cursor[cell_id] % len(order)]
        if self._state is NeighborState.TRACKING and cell_id == self._focused_cell:
            if self._probe_current is not None:
                return self._probe_current
            return self._beam
        return None

    # ---------------------------------------------------------- measurements
    def on_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        """Feed the result of a neighbor-cell dwell."""
        if self._state is NeighborState.SEARCHING:
            self._on_search_measurement(measurement, now_s)
        elif (
            self._state is NeighborState.TRACKING
            and measurement.cell_id == self._focused_cell
        ):
            if self._probe_current is not None:
                self._on_probe_measurement(measurement, now_s)
            else:
                self._on_tracking_measurement(measurement, now_s)

    def _on_search_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        self.search_dwells += 1
        if measurement.detected:
            self._focus(measurement, now_s)
            return
        cursor = self._sweep_cursor.get(measurement.cell_id)
        if cursor is not None:
            self._sweep_cursor[measurement.cell_id] = cursor + 1

    def _focus(self, measurement: RssMeasurement, now_s: float) -> None:
        """Edge C: a neighbor cell beam was found."""
        self._focused_cell = measurement.cell_id
        self._beam = measurement.rx_beam
        self._tx_beam = measurement.tx_beam
        self._detector = DropDetector(self.adapt_threshold_db, self.ewma_alpha)
        self._detector.rearm(measurement.rss_dbm)
        self._miss_streak = 0
        if self.acquisitions == 0:
            self.search_dwells_at_found = self.search_dwells
        self.acquisitions += 1
        self._transition(NeighborState.TRACKING, Fig2bEdge.C, now_s)

    def _on_tracking_measurement(
        self, measurement: RssMeasurement, now_s: float
    ) -> None:
        if not measurement.detected:
            self._miss_streak += 1
            if self._miss_streak >= self.loss_miss_limit:
                self.declare_lost(now_s)
            return
        self._miss_streak = 0
        self._tx_beam = measurement.tx_beam
        self._detector.update(measurement.rss_dbm)
        drop = self._detector.drop_db()
        if drop > self.loss_threshold_db:
            # Edge D: the beam collapsed outright.
            self.declare_lost(now_s)
            return
        if drop > self.adapt_threshold_db:
            # Edge H: adapt to a directionally adjacent beam.
            self._begin_probe()

    def declare_lost(self, now_s: float) -> None:
        """Edge D: tracked beam lost; re-acquire around its last index."""
        if self._state is not NeighborState.TRACKING:
            return
        last_beam = self._beam
        self.losses += 1
        self.reacquisitions += 1
        self._focused_cell = None
        self._beam = None
        self._tx_beam = None
        self._probe_current = None
        self._probe_candidates = []
        self._probe_results = {}
        # Leave TRACKING before begin_search (which asserts otherwise).
        self._state = NeighborState.SEARCHING
        order = spiral_order(last_beam, len(self.codebook))
        for cell in self._cells:
            self._sweep_order[cell] = list(order)
            self._sweep_cursor[cell] = 0
        if self._on_transition is not None:
            self._on_transition(
                NeighborState.TRACKING, NeighborState.SEARCHING, Fig2bEdge.D, now_s
            )

    # -------------------------------------------------------------- H probes
    def _begin_probe(self) -> None:
        candidates = self.codebook.adjacent_indices(self._beam)
        if not candidates:
            # Omni codebook: no adjacent beam exists; nothing to adapt.
            return
        self._probe_candidates = candidates
        self._probe_results = {}
        self._probe_current = candidates[0]

    def _on_probe_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        candidate = self._probe_current
        if measurement.detected:
            self._probe_results[candidate] = measurement.rss_dbm
        index = self._probe_candidates.index(candidate) + 1
        if index < len(self._probe_candidates):
            self._probe_current = self._probe_candidates[index]
            return
        self._conclude_probe(now_s)

    def _conclude_probe(self, now_s: float) -> None:
        self._probe_current = None
        current_level = self._detector.smoothed_dbm
        best_beam = self._beam
        best_rss = current_level if current_level is not None else -1e9
        for beam, rss in self._probe_results.items():
            if rss > best_rss:
                best_rss = rss
                best_beam = beam
        if best_beam != self._beam:
            self._beam = best_beam
            self.adjacent_switches += 1
            self._detector.rearm(best_rss)
            if self._on_transition is not None:
                # Edge H is a self-loop on N-RBA; report it for the audit
                # trail even though the state does not change.
                self._on_transition(
                    NeighborState.TRACKING,
                    NeighborState.TRACKING,
                    Fig2bEdge.H,
                    now_s,
                )
        elif not self._probe_results:
            # Neither adjacent beam even detected the cell while the
            # committed beam is degraded: treat as one miss toward loss.
            self._miss_streak += 1
            if self._miss_streak >= self.loss_miss_limit:
                self.declare_lost(now_s)
