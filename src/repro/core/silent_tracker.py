"""Silent Tracker: in-band beam management for soft handover (Fig. 2b).

The protocol composes three concerns, all driven purely by in-band RSS
at the mobile:

1. **Serving-link maintenance** via :class:`~repro.core.beamsurfer.BeamSurfer`
   (EO / S-RBA / CABM states, edges A, F, G).
2. **Silent neighbor tracking** via
   :class:`~repro.core.neighbor_tracker.NeighborTracker`
   (N-A/R / N-RBA states, edges B, C, D, H) — performed *without any
   assistance from the neighbor cell*, which does not yet know the
   mobile exists.
3. **The handover itself** (edge E): when the smoothed neighbor RSS
   exceeds the serving RSS by the margin T (or the serving link dies
   while a neighbor beam is tracked), the mobile initiates random
   access to the neighbor *on the silently tracked beam* and keeps both
   beams adapted until msg4 lands.  If the old context is still alive at
   completion, the switch is a soft handover; if it was lost first, the
   mobile pays the full idle re-entry (hard handover).

The class implements :class:`~repro.net.mobile.BurstListener`: the
mobile asks it for a receive beam at every SSB burst and returns the
dwell outcome, which is the protocol's only window on the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.beamsurfer import BeamSurfer, ServingState
from repro.core.config import SilentTrackerConfig
from repro.core.events import Fig2bEdge, NeighborState, TrackerPhase
from repro.core.neighbor_tracker import NeighborTracker
from repro.measure.filters import HysteresisTrigger
from repro.measure.report import RssMeasurement
from repro.net.deployment import Deployment
from repro.net.handover import HandoverLog, HandoverOutcome
from repro.net.mobile import Mobile
from repro.net.random_access import RachResult, RandomAccessProcedure
from repro.sim.engine import PeriodicTask


@dataclass
class HandoverTimeline:
    """Timestamps of one handover episode, for the Fig. 2c metric.

    ``search_start_s`` is edge B (neighbor search initiated); the
    paper's Fig. 2c CDF measures the time from there to random-access
    completion — the span over which the tracker had to keep the
    neighbor beam aligned.
    """

    search_start_s: float
    found_s: Optional[float] = None
    trigger_s: Optional[float] = None
    complete_s: Optional[float] = None
    target_cell: Optional[str] = None
    outcome: Optional[HandoverOutcome] = None
    rach_attempts: int = 0
    beam_switches_while_tracking: int = 0
    reacquisitions: int = 0

    @property
    def completion_time_s(self) -> Optional[float]:
        """Edge B to msg4, the Fig. 2c quantity."""
        if self.complete_s is None:
            return None
        return self.complete_s - self.search_start_s

    @property
    def tracking_time_s(self) -> Optional[float]:
        """Edge C to msg4: how long alignment had to be maintained."""
        if self.complete_s is None or self.found_s is None:
            return None
        return self.complete_s - self.found_s


class SilentTracker:
    """The full protocol bound to one mobile in a deployment."""

    def __init__(
        self,
        deployment: Deployment,
        mobile: Mobile,
        serving_cell: str,
        config: Optional[SilentTrackerConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.mobile = mobile
        self.config = config or SilentTrackerConfig()
        self.sim = deployment.sim
        self.links = deployment.links
        self.trace = deployment.trace
        self.metrics = deployment.metrics
        self._stations: Dict[str, object] = {
            s.cell_id: s for s in deployment.stations
        }
        if serving_cell not in self._stations:
            raise ValueError(f"unknown serving cell {serving_cell!r}")
        if len(self._stations) < 2:
            raise ValueError("Silent Tracker needs at least one neighbor cell")

        self.phase = TrackerPhase.OPERATING
        self.handover_log = HandoverLog()
        self.timelines: List[HandoverTimeline] = []
        self._active_timeline: Optional[HandoverTimeline] = None

        # ---- serving side -------------------------------------------------
        station = self._stations[serving_cell]
        now = self.sim.now
        initial_tx = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(now).position)
        )
        initial_rx = mobile.best_rx_beam_towards(station, now)
        station.attach(mobile.mobile_id, initial_tx)
        mobile.connection.establish(serving_cell, initial_rx, now)
        self.beamsurfer = BeamSurfer(
            mobile.codebook,
            initial_rx,
            self.config.beamsurfer,
            on_transition=self._on_serving_transition,
        )
        self._last_good_service_s = now

        # ---- neighbor side ------------------------------------------------
        self.tracker = NeighborTracker(
            mobile.codebook,
            self._neighbor_cells(),
            adapt_threshold_db=self.config.adapt_threshold_db,
            loss_threshold_db=self.config.loss_threshold_db,
            loss_miss_limit=self.config.loss_miss_limit,
            ewma_alpha=self.config.ewma_alpha,
            on_transition=self._on_neighbor_transition,
        )
        self._ho_trigger = HysteresisTrigger(
            self.config.handover_margin_db,
            self.config.handover_margin_db - self.config.handover_hysteresis_db,
        )
        #: When the margin condition first asserted (for time-to-trigger).
        self._margin_asserted_since: Optional[float] = None

        # ---- handover machinery -------------------------------------------
        self._rach: Optional[RandomAccessProcedure] = None
        self._rach_target: Optional[str] = None
        self._ho_last_mobile_beam: Optional[int] = None
        self._ho_last_station_beam: Optional[int] = None
        self._pending_record = None
        self._watchdog: Optional[PeriodicTask] = None
        self._started = False

        mobile.attach_listener(self)

    # ----------------------------------------------------------------- wiring
    def _neighbor_cells(self) -> List[str]:
        serving = self.mobile.connection.serving_cell
        return [cid for cid in self._stations if cid != serving]

    def _serving_station(self):
        cell = self.mobile.connection.serving_cell
        return self._stations[cell] if cell is not None else None

    def start(self) -> None:
        """Arm the watchdog and evaluate the initial search policy."""
        if self._started:
            raise RuntimeError("tracker already started")
        self._started = True
        self._watchdog = PeriodicTask(
            self.sim,
            self.config.monitor_period_s,
            self._watchdog_tick,
            start_delay=self.config.monitor_period_s,
            label="tracker.watchdog",
        )
        self._maybe_begin_search()

    def stop(self) -> None:
        """Stop background activity (end of a trial)."""
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None

    # ------------------------------------------------------------ trace hooks
    def _emit(self, category: str, **data) -> None:
        self.trace.emit(self.sim.now, category, self.mobile.mobile_id, **data)

    def _on_serving_transition(self, old, new, edge: str, now_s: float) -> None:
        self.metrics.incr(f"fsm.serving.{edge}")
        self._emit(
            "fsm.serving", old=old.value, new=new.value, edge=edge
        )

    def _on_neighbor_transition(
        self, old, new, edge: Fig2bEdge, now_s: float
    ) -> None:
        self.metrics.incr(f"fsm.neighbor.{edge.value}")
        self._emit("fsm.neighbor", old=old.value, new=new.value, edge=edge.value)
        timeline = self._active_timeline
        if timeline is None:
            return
        if edge is Fig2bEdge.C and timeline.found_s is None:
            timeline.found_s = now_s
        elif edge is Fig2bEdge.H:
            timeline.beam_switches_while_tracking += 1
        elif edge is Fig2bEdge.D:
            timeline.reacquisitions += 1

    # ----------------------------------------------------- BurstListener API
    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        """Beam selection for an SSB burst of ``cell_id`` (one RF chain)."""
        serving = self.mobile.connection.serving_cell
        if cell_id == serving:
            return self.beamsurfer.beam_for_burst()
        return self.tracker.beam_for_burst(cell_id)

    def on_measurement(self, measurement: RssMeasurement) -> None:
        """Dispatch a dwell outcome to the owning sub-machine."""
        now = self.sim.now
        serving = self.mobile.connection.serving_cell
        if measurement.cell_id == serving:
            self._on_serving_measurement(measurement, now)
        else:
            self.tracker.on_measurement(measurement, now)
        self._evaluate_handover_trigger(now)
        self._maybe_begin_search()

    # ------------------------------------------------------------ serving path
    def _on_serving_measurement(self, measurement: RssMeasurement, now_s: float) -> None:
        station = self._serving_station()
        if station is None:
            return
        budget = station.link_budget
        if (
            measurement.detected
            and measurement.snr_db is not None
            and measurement.snr_db >= budget.decode_snr_db
        ):
            self.mobile.connection.touch(now_s)
            self._last_good_service_s = now_s
        self.beamsurfer.on_serving_measurement(measurement, now_s)
        if self.beamsurfer.cabm_request_pending:
            self._attempt_cabm_request(now_s)

    def _attempt_cabm_request(self, now_s: float) -> None:
        """Send the BeamSurfer transmit-beam switch request on the uplink.

        At the cell edge this is the message that starts failing — the
        'assistance delayed or lost' condition of edge G.
        """
        station = self._serving_station()
        if station is None or not station.is_attached(self.mobile.mobile_id):
            return
        station_beam = station.serving_tx_beam(self.mobile.mobile_id)
        delivered = self.links.uplink_success(
            station,
            self.mobile.mobile_id,
            self.mobile.pose_at(now_s),
            self.mobile.rx_gain_fn(now_s),
            self.beamsurfer.beam,
            station_beam,
            now_s,
        )
        self.metrics.incr(
            "cabm.delivered" if delivered else "cabm.lost"
        )
        self._emit("cabm.request", delivered=delivered)
        if delivered:
            bearing = station.pose.bearing_to(self.mobile.pose_at(now_s).position)
            new_beam = station.refine_tx_beam(self.mobile.mobile_id, bearing)
            self._emit("cabm.refined", tx_beam=new_beam)

    # ----------------------------------------------------------- search policy
    def _search_wanted(self) -> bool:
        if self.phase is TrackerPhase.REENTRY:
            return True
        if self.config.search_policy == "always":
            return True
        station = self._serving_station()
        if station is None:
            return True
        rss = self.beamsurfer.smoothed_rss_dbm
        if rss is None:
            return False
        return (
            station.link_budget.snr_db(rss) < self.config.edge_snr_threshold_db
        )

    def _maybe_begin_search(self) -> None:
        if self.tracker.state is not NeighborState.IDLE:
            return
        if not self._search_wanted():
            return
        self.tracker.begin_search(self.sim.now)
        if self._active_timeline is None:
            self._active_timeline = HandoverTimeline(search_start_s=self.sim.now)
            self.timelines.append(self._active_timeline)

    # -------------------------------------------------------- handover trigger
    def _evaluate_handover_trigger(self, now_s: float) -> None:
        if self._rach is not None:
            return  # already mid-handover
        neighbor_rss = self.tracker.smoothed_rss_dbm
        if neighbor_rss is None:
            return
        if self.phase is TrackerPhase.REENTRY:
            # Any found cell is the target: there is nothing to compare
            # against, the context is already gone.
            self._initiate_handover(now_s)
            return
        serving_rss = self.beamsurfer.smoothed_rss_dbm
        connection = self.mobile.connection
        serving_dead = not connection.connected
        if serving_dead:
            # Edge E, forced: adaptation (ii) is no longer possible and
            # the serving link is disrupted.
            self._initiate_handover(now_s)
            return
        if serving_rss is None:
            return
        margin = neighbor_rss - serving_rss
        if not self._ho_trigger.update(margin):
            self._margin_asserted_since = None
            return
        # NR-style time-to-trigger: the margin must hold continuously
        # before edge E fires (0 = the paper's minimal protocol).
        if self._margin_asserted_since is None:
            self._margin_asserted_since = now_s
        if now_s - self._margin_asserted_since >= self.config.time_to_trigger_s:
            self._initiate_handover(now_s)

    def _initiate_handover(self, now_s: float) -> None:
        """Edge E: begin random access toward the tracked cell."""
        target = self.tracker.focused_cell
        if target is None or self.tracker.last_tx_beam is None:
            return
        source = self.mobile.connection.serving_cell or "(lost)"
        self.metrics.incr("fsm.neighbor.E")
        self._emit("handover.trigger", source=source, target=target)
        timeline = self._active_timeline
        if timeline is not None:
            timeline.trigger_s = now_s
            timeline.target_cell = target
        self._pending_record = self.handover_log.open_record(
            self.mobile.mobile_id, source, target, now_s
        )
        if self.phase is TrackerPhase.OPERATING:
            self.phase = TrackerPhase.HANDOVER
        self._rach_target = target
        self._ho_last_mobile_beam = None
        self._ho_last_station_beam = None
        self._rach = RandomAccessProcedure(
            self.sim,
            self.links,
            self._stations[target],
            self.mobile,
            self.deployment.config.rach,
            self._provide_mobile_beam,
            self._provide_station_beam,
            self._on_rach_complete,
            trace=self.trace,
        )
        self._rach.start()

    def _provide_mobile_beam(self) -> Optional[int]:
        beam = self.tracker.current_beam
        if beam is not None:
            self._ho_last_mobile_beam = beam
        return beam

    def _provide_station_beam(self) -> Optional[int]:
        beam = self.tracker.last_tx_beam
        if beam is not None:
            self._ho_last_station_beam = beam
        return beam

    def _on_rach_complete(self, result: RachResult) -> None:
        now = self.sim.now
        record = self._pending_record
        target = self._rach_target
        self._rach = None
        self._rach_target = None
        if record is not None:
            record.rach_attempts = result.attempts
        if not result.succeeded:
            self._emit("handover.failed", target=target, attempts=result.attempts)
            if record is not None:
                record.outcome = HandoverOutcome.FAILED
            self._pending_record = None
            self._ho_trigger.reset()
            self._margin_asserted_since = None
            if self.phase is TrackerPhase.HANDOVER:
                self.phase = TrackerPhase.OPERATING
            # The tracked beam (if still held) remains; a later trigger
            # may retry.  If the context is gone we stay in re-entry and
            # the next acquisition retries immediately.
            return
        self._complete_handover(target, record, now)

    def _complete_handover(self, target: str, record, now_s: float) -> None:
        """Context switch onto the target cell after msg4."""
        connection = self.mobile.connection
        context_alive = connection.serving_cell is not None
        outcome = (
            HandoverOutcome.SOFT
            if context_alive and self.phase is not TrackerPhase.REENTRY
            else HandoverOutcome.HARD
        )
        interruption = max(0.0, now_s - self._last_good_service_s)
        if outcome is HandoverOutcome.HARD:
            # Idle re-entry also pays the context-rebuild penalty.
            interruption += self.config.hard_reentry_penalty_s
        old_station = self._serving_station()
        if old_station is not None:
            old_station.detach(self.mobile.mobile_id)
        rx_beam = (
            self.tracker.current_beam
            if self.tracker.current_beam is not None
            else self._ho_last_mobile_beam
        )
        tx_beam = (
            self.tracker.last_tx_beam
            if self.tracker.last_tx_beam is not None
            else self._ho_last_station_beam
        )
        station = self._stations[target]
        station.attach(self.mobile.mobile_id, tx_beam)
        connection.establish(target, rx_beam, now_s)
        self.beamsurfer.rebind(rx_beam, self.tracker.smoothed_rss_dbm)
        self._last_good_service_s = now_s
        if record is not None:
            record.complete_s = now_s
            record.outcome = outcome
            record.interruption_s = interruption
        timeline = self._active_timeline
        if timeline is not None:
            timeline.complete_s = now_s
            timeline.outcome = outcome
        self._active_timeline = None
        self._pending_record = None
        self.metrics.incr(f"handover.{outcome.value}")
        self.metrics.record("handover.interruption_s", now_s, interruption)
        self._emit(
            "handover.complete",
            target=target,
            outcome=outcome.value,
            interruption_s=interruption,
        )
        self.phase = TrackerPhase.OPERATING
        self._ho_trigger.reset()
        self._margin_asserted_since = None
        self.tracker.go_idle(now_s)
        self.tracker.retarget(self._neighbor_cells())
        self._maybe_begin_search()

    # --------------------------------------------------------------- watchdog
    def _watchdog_tick(self) -> None:
        connection = self.mobile.connection
        now = self.sim.now
        if connection.serving_cell is None:
            return
        silence = connection.silence_s(now)
        if silence > self.config.context_loss_timeout_s:
            self._emit("connection.lost", silence_s=silence)
            self.metrics.incr("connection.context_lost")
            station = self._serving_station()
            if station is not None:
                station.detach(self.mobile.mobile_id)
            connection.drop()
            self.phase = TrackerPhase.REENTRY
            # Every cell is now a candidate, including the one just lost.
            self.tracker.retarget(list(self._stations))
            if self.tracker.state is NeighborState.IDLE:
                self._maybe_begin_search()
            elif self.tracker.state is NeighborState.TRACKING:
                # Already tracking someone: go straight for it.
                self._evaluate_handover_trigger(now)
        elif silence > self.config.rlf_timeout_s:
            if connection.connected:
                self._emit("connection.rlf", silence_s=silence)
                self.metrics.incr("connection.rlf")
                connection.declare_rlf()
            self._evaluate_handover_trigger(now)

    # ------------------------------------------------------------- inspection
    def fig2b_state(self) -> str:
        """The paper's single-machine view of the composite state."""
        if self.tracker.state is NeighborState.SEARCHING:
            return "N-A/R"
        if self.tracker.state is NeighborState.TRACKING:
            if self.beamsurfer.state is ServingState.EDGE_OPERATION:
                return "N-RBA"
            # Serving-side adaptation takes narrative priority in the
            # figure when both are active.
        return {
            ServingState.EDGE_OPERATION: "EO",
            ServingState.MOBILE_ADAPTATION: "S-RBA",
            ServingState.CELL_ASSISTED: "CABM",
        }[self.beamsurfer.state]
