"""The paper's contribution: Silent Tracker and its companions.

* :class:`~repro.core.silent_tracker.SilentTracker` — the in-band
  soft-handover beam-management protocol (Fig. 2b state machine).
* :class:`~repro.core.beamsurfer.BeamSurfer` — the serving-cell beam
  maintenance protocol Silent Tracker runs concurrently (ref. [2] of the
  paper).
* :mod:`repro.core.baselines` — reactive hard handover, omni receiver,
  and a genie-aided oracle tracker for comparison benches.
"""

from repro.core.beamsurfer import BeamSurfer, BeamSurferConfig, ServingState
from repro.core.config import SilentTrackerConfig
from repro.core.events import Fig2bEdge, NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.core.silent_tracker import SilentTracker

__all__ = [
    "BeamSurfer",
    "BeamSurferConfig",
    "Fig2bEdge",
    "NeighborState",
    "NeighborTracker",
    "ServingState",
    "SilentTracker",
    "SilentTrackerConfig",
]
