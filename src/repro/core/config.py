"""Silent Tracker configuration.

Every constant in the paper's Fig. 2b appears here by name: the 3 dB
adaptation threshold (edges A/G/H), the 10 dB loss threshold (edge D),
and the handover margin T (edge E).  Ablation benches sweep these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.beamsurfer import BeamSurferConfig


@dataclass(frozen=True)
class SilentTrackerConfig:
    """All protocol knobs with the paper's defaults.

    Attributes
    ----------
    adapt_threshold_db:
        Neighbor receive-beam adaptation threshold (edge H): switch to a
        directionally adjacent beam when tracked RSS drops this far
        below its selection level.  Paper: 3 dB.
    loss_threshold_db:
        Neighbor beam-loss threshold (edge D): declare the beam lost and
        re-acquire when RSS drops this far.  Paper: 10 dB.
    loss_miss_limit:
        Consecutive non-detections on the tracked beam that also declare
        loss (a blocked beam produces silence, not a measurable drop).
    handover_margin_db:
        The margin T in edge E: trigger handover when smoothed
        ``RSS_N > RSS_S + T``.
    handover_hysteresis_db:
        Hysteresis below T that must be lost before the trigger rearms,
        preventing ping-pong at the cell boundary.
    time_to_trigger_s:
        The margin must hold continuously for this long before edge E
        fires (NR's TTT).  0 reproduces the paper's minimal protocol;
        the ABL-PP bench sweeps it to quantify boundary churn.
    ewma_alpha:
        Neighbor RSS smoothing factor.
    search_policy:
        ``"always"`` — neighbor search runs whenever no neighbor is
        tracked (the experiments place the mobile at the cell edge from
        t=0, matching the paper's setup).  ``"serving-degraded"`` —
        search starts only once serving SNR falls below
        ``edge_snr_threshold_db`` (edge B's operational trigger).
    edge_snr_threshold_db:
        Serving-SNR threshold for the ``"serving-degraded"`` policy.
    rlf_timeout_s:
        Serving-link silence that declares radio link failure.
    context_loss_timeout_s:
        Serving-link silence after which the network context is lost and
        any subsequent access is a hard handover.
    hard_reentry_penalty_s:
        Extra context-rebuild cost (authentication, RRC setup) paid on
        top of search + random access when re-entering from idle.
    monitor_period_s:
        Period of the RLF/context watchdog.
    beamsurfer:
        Serving-side (BeamSurfer) thresholds.
    """

    adapt_threshold_db: float = 3.0
    loss_threshold_db: float = 10.0
    loss_miss_limit: int = 3
    handover_margin_db: float = 3.0
    handover_hysteresis_db: float = 1.5
    time_to_trigger_s: float = 0.0
    ewma_alpha: float = 0.6
    search_policy: str = "always"
    edge_snr_threshold_db: float = 20.0
    rlf_timeout_s: float = 0.20
    context_loss_timeout_s: float = 0.60
    hard_reentry_penalty_s: float = 0.10
    monitor_period_s: float = 0.010
    beamsurfer: BeamSurferConfig = field(default_factory=BeamSurferConfig)

    def __post_init__(self) -> None:
        if self.adapt_threshold_db <= 0.0:
            raise ValueError(
                f"adapt threshold must be positive, got {self.adapt_threshold_db!r}"
            )
        if self.loss_threshold_db <= self.adapt_threshold_db:
            raise ValueError(
                "loss threshold must exceed the adaptation threshold "
                f"({self.loss_threshold_db!r} <= {self.adapt_threshold_db!r})"
            )
        if self.handover_hysteresis_db < 0.0:
            raise ValueError(
                f"hysteresis must be non-negative, got {self.handover_hysteresis_db!r}"
            )
        if self.time_to_trigger_s < 0.0:
            raise ValueError(
                f"time-to-trigger must be non-negative, got {self.time_to_trigger_s!r}"
            )
        if self.search_policy not in ("always", "serving-degraded"):
            raise ValueError(
                f"unknown search policy {self.search_policy!r}; "
                "expected 'always' or 'serving-degraded'"
            )
        if self.loss_miss_limit < 1:
            raise ValueError(
                f"loss miss limit must be >= 1, got {self.loss_miss_limit!r}"
            )
        if self.rlf_timeout_s >= self.context_loss_timeout_s:
            raise ValueError(
                "RLF timeout must precede context loss "
                f"({self.rlf_timeout_s!r} >= {self.context_loss_timeout_s!r})"
            )
