"""Statistical helpers for experiment results."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.util.numerics import quantile


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF of a sample.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of samples
    ``<= xs[i]`` — the series Fig. 2c plots.
    """
    if not values:
        raise ValueError("empirical CDF of empty sample")
    xs = sorted(values)
    n = len(xs)
    ps = [(i + 1) / n for i in range(n)]
    return xs, ps


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of samples ``<= x``."""
    if not values:
        raise ValueError("CDF of empty sample")
    return sum(1 for v in values if v <= x) / len(values)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary dict: count, mean, p10/p50/p90, min, max, stddev."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = (
        sum((v - mean) ** 2 for v in ordered) / (n - 1) if n > 1 else 0.0
    )
    return {
        "count": n,
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": ordered[0],
        "p10": quantile(ordered, 0.10),
        "p50": quantile(ordered, 0.50),
        "p90": quantile(ordered, 0.90),
        "max": ordered[-1],
    }


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` normal-approximation CI of the mean.

    ``z = 1.96`` gives a 95% interval; fine for the trial counts
    (tens to hundreds) the benches run.
    """
    if not values:
        raise ValueError("confidence interval of empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = z * math.sqrt(variance / n)
    return mean, mean - half, mean + half


def success_rate(successes: int, trials: int) -> float:
    """Fraction in [0, 1]; raises on zero trials."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes!r} out of range for {trials!r} trials"
        )
    return successes / trials


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extreme success
    rates the Fig. 2a panels produce (narrow ~1.0, omni ~0.1).
    """
    p = success_rate(successes, trials)
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
