"""Statistical helpers for experiment results.

The CDF/summary helpers are numpy-vectorized: population-scale fleet
runs push 10^5+ samples through them per query, which the former pure
Python loops handled in O(n) interpreted steps.  Quantiles keep the
exact linear-interpolation arithmetic of
:func:`repro.util.numerics.quantile` (element loads from the sorted
array, the same scalar lerp) and are bit-identical to the
pre-vectorization outputs; mean/stddev use numpy's pairwise summation,
which can differ from the former sequential Python sum in the last ulp
(and is at least as accurate).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np


def _as_array(values: Sequence[float]) -> np.ndarray:
    """Sample input (list, tuple or ndarray) as a 1-D float64 array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"need a 1-D sample, got shape {array.shape}")
    return array


def _sorted_quantile(ordered: np.ndarray, q: float) -> float:
    """Linear-interpolation quantile of an already-sorted array.

    Same arithmetic as :func:`repro.util.numerics.quantile` (scalar
    loads + one lerp), so results are bit-identical to the list-based
    helper while the sort stays in numpy.
    """
    n = ordered.shape[0]
    if n == 1:
        return float(ordered[0])
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo]) * (1.0 - frac) + float(ordered[hi]) * frac


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF of a sample.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of samples
    ``<= xs[i]`` — the series Fig. 2c plots.  Vectorized: one numpy
    sort + one arange instead of O(n) Python-level steps.
    """
    array = _as_array(values)
    n = array.shape[0]
    if n == 0:
        raise ValueError("empirical CDF of empty sample")
    xs = np.sort(array)
    ps = np.arange(1, n + 1, dtype=float) / n
    return xs.tolist(), ps.tolist()


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of samples ``<= x`` (one vectorized comparison)."""
    array = _as_array(values)
    if array.shape[0] == 0:
        raise ValueError("CDF of empty sample")
    return int(np.count_nonzero(array <= x)) / array.shape[0]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary dict: count, mean, p10/p50/p90, min, max, stddev.

    Sorting and the moment reductions run in numpy (pairwise summation —
    at least as accurate as the former sequential Python sum); quantiles
    keep the exact scalar lerp of the previous implementation.
    """
    array = _as_array(values)
    n = array.shape[0]
    if n == 0:
        return {"count": 0}
    ordered = np.sort(array)
    mean = float(np.sum(ordered)) / n
    variance = float(np.sum((ordered - mean) ** 2)) / (n - 1) if n > 1 else 0.0
    return {
        "count": n,
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": float(ordered[0]),
        "p10": _sorted_quantile(ordered, 0.10),
        "p50": _sorted_quantile(ordered, 0.50),
        "p90": _sorted_quantile(ordered, 0.90),
        "max": float(ordered[-1]),
    }


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` normal-approximation CI of the mean.

    ``z = 1.96`` gives a 95% interval; fine for the trial counts
    (tens to hundreds) the benches run.
    """
    if not values:
        raise ValueError("confidence interval of empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = z * math.sqrt(variance / n)
    return mean, mean - half, mean + half


def success_rate(successes: int, trials: int) -> float:
    """Fraction in [0, 1]; raises on zero trials."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes!r} out of range for {trials!r} trials"
        )
    return successes / trials


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extreme success
    rates the Fig. 2a panels produce (narrow ~1.0, omni ~0.1).
    """
    p = success_rate(successes, trials)
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
