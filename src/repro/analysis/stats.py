"""Statistical helpers for experiment results.

The CDF/summary helpers are numpy-vectorized: population-scale fleet
runs push 10^5+ samples through them per query, which the former pure
Python loops handled in O(n) interpreted steps.  Quantiles keep the
exact linear-interpolation arithmetic of
:func:`repro.util.numerics.quantile` (element loads from the sorted
array, the same scalar lerp) and are bit-identical to the
pre-vectorization outputs; mean/stddev use numpy's pairwise summation,
which can differ from the former sequential Python sum in the last ulp
(and is at least as accurate).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def _as_array(values: Sequence[float]) -> np.ndarray:
    """Sample input (list, tuple or ndarray) as a 1-D float64 array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"need a 1-D sample, got shape {array.shape}")
    return array


def _sorted_quantile(ordered: np.ndarray, q: float) -> float:
    """Linear-interpolation quantile of an already-sorted array.

    Same arithmetic as :func:`repro.util.numerics.quantile` (scalar
    loads + one lerp), so results are bit-identical to the list-based
    helper while the sort stays in numpy.
    """
    n = ordered.shape[0]
    if n == 1:
        return float(ordered[0])
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo]) * (1.0 - frac) + float(ordered[hi]) * frac


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF of a sample.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of samples
    ``<= xs[i]`` — the series Fig. 2c plots.  Vectorized: one numpy
    sort + one arange instead of O(n) Python-level steps.
    """
    array = _as_array(values)
    n = array.shape[0]
    if n == 0:
        raise ValueError("empirical CDF of empty sample")
    xs = np.sort(array)
    ps = np.arange(1, n + 1, dtype=float) / n
    return xs.tolist(), ps.tolist()


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of samples ``<= x`` (one vectorized comparison)."""
    array = _as_array(values)
    if array.shape[0] == 0:
        raise ValueError("CDF of empty sample")
    return int(np.count_nonzero(array <= x)) / array.shape[0]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary dict: count, mean, p10/p50/p90, min, max, stddev.

    Sorting and the moment reductions run in numpy (pairwise summation —
    at least as accurate as the former sequential Python sum); quantiles
    keep the exact scalar lerp of the previous implementation.
    """
    array = _as_array(values)
    n = array.shape[0]
    if n == 0:
        return {"count": 0}
    ordered = np.sort(array)
    mean = float(np.sum(ordered)) / n
    variance = float(np.sum((ordered - mean) ** 2)) / (n - 1) if n > 1 else 0.0
    return {
        "count": n,
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": float(ordered[0]),
        "p10": _sorted_quantile(ordered, 0.10),
        "p50": _sorted_quantile(ordered, 0.50),
        "p90": _sorted_quantile(ordered, 0.90),
        "max": float(ordered[-1]),
    }


class StreamingMoments:
    """Mergeable running moments: count, mean, M2, min, max.

    The streaming counterpart of :func:`summarize`'s moment fields.
    ``count``/``min``/``max`` are exact; ``mean``/``stddev`` use
    Welford/Chan updates, so they can differ from the batch numpy
    reduction in the last ulp — which is why exact-mode consumers (see
    :class:`QuantileReservoir.exact`) recompute moments from the
    retained sample instead of reading them here.

    Merging is exact in the algebraic sense (the result depends only on
    the union of the two samples' sufficient statistics), making
    per-shard moments foldable in any grouping.
    """

    __slots__ = ("count", "mean", "m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator in (Chan's parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = (
            self.m2
            + other.m2
            + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        if other.min is not None and other.min < self.min:
            self.min = other.min
        if other.max is not None and other.max > self.max:
            self.max = other.max

    @property
    def stddev(self) -> float:
        """Sample standard deviation (n - 1 denominator), 0.0 for n < 2."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "StreamingMoments":
        moments = cls()
        moments.count = int(record["count"])
        moments.mean = float(record["mean"])
        moments.m2 = float(record["m2"])
        moments.min = None if record["min"] is None else float(record["min"])
        moments.max = None if record["max"] is None else float(record["max"])
        return moments


class QuantileReservoir:
    """Deterministic fixed-size mergeable quantile sketch.

    A multi-level compaction sketch (KLL-style, but with deterministic
    odd-index promotion instead of random coin flips — reproducibility
    is a repo-wide contract).  Level ``i`` holds items of weight
    ``2**i``; when a level exceeds ``capacity`` items it is sorted and
    the odd-index half is promoted one level up.

    Contract (relied on by the fleet shard runner and pinned by
    ``tests/test_reservoir.py``):

    * **Exact under capacity.**  While ``count <= capacity`` no
      compaction has happened, :attr:`exact` is true, and
      :meth:`quantile` / :meth:`cdf` reproduce :func:`summarize` /
      :func:`empirical_cdf` on the retained sample *bit for bit* — this
      is what keeps small-N sharded artifacts byte-identical to
      unsharded runs.  ``capacity=None`` never compacts (unbounded
      exact retention).
    * **Merge is exactly commutative.**  The merged state is a pure
      function of the two operands' per-level multisets, so
      ``merge(a, b) == merge(b, a)`` byte-for-byte.
    * **Merge is associative up to rank error.**  Different groupings
      may compact at different moments; results agree within the rank
      error bound below (the property tests pin this).
    * **Bounded error and size.**  Quantile rank error is
      ``O(count * log2(count / capacity) / capacity)`` — under 0.1% of
      ranks at ``count = 10**6`` with the default capacity — and memory
      is ``O(capacity * log2(count / capacity))`` items regardless of
      ``count``.
    """

    DEFAULT_CAPACITY = 4096

    __slots__ = ("capacity", "count", "_levels")

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 8:
            raise ValueError(f"capacity must be >= 8 or None, got {capacity!r}")
        self.capacity = capacity
        self.count = 0
        self._levels: List[List[float]] = [[]]

    # ------------------------------------------------------------ ingestion
    def add(self, value: float) -> None:
        self._levels[0].append(float(value))
        self.count += 1
        self._compact()

    def extend(self, values: Sequence[float]) -> None:
        level0 = self._levels[0]
        added = 0
        for value in values:
            level0.append(float(value))
            added += 1
        self.count += added
        self._compact()

    def _compact(self) -> None:
        if self.capacity is None:
            return
        index = 0
        while index < len(self._levels):
            level = self._levels[index]
            if len(level) <= self.capacity:
                index += 1
                continue
            level.sort()
            promoted = level[1::2]
            if index + 1 == len(self._levels):
                self._levels.append([])
            self._levels[index + 1].extend(promoted)
            self._levels[index] = []
            index += 1

    # -------------------------------------------------------------- queries
    @property
    def exact(self) -> bool:
        """True while every ingested sample is still retained at weight 1."""
        return len(self._levels) == 1

    def values(self) -> List[float]:
        """The retained sample, sorted; only meaningful when :attr:`exact`."""
        if not self.exact:
            raise ValueError("reservoir has compacted; exact sample is gone")
        return sorted(self._levels[0])

    def _weighted(self) -> Tuple[np.ndarray, np.ndarray]:
        pairs = sorted(
            (value, 1 << level_index)
            for level_index, level in enumerate(self._levels)
            for value in level
        )
        values = np.asarray([pair[0] for pair in pairs], dtype=float)
        weights = np.asarray([pair[1] for pair in pairs], dtype=float)
        return values, weights

    def quantile(self, q: float) -> float:
        """Quantile estimate; bit-identical to :func:`summarize`'s exact
        lerp while :attr:`exact`, weighted type-1 selection after."""
        if self.count == 0:
            raise ValueError("quantile of empty reservoir")
        if self.exact:
            return _sorted_quantile(
                np.asarray(self.values(), dtype=float), q
            )
        values, weights = self._weighted()
        cumulative = np.cumsum(weights)
        position = min(max(q, 0.0), 1.0) * cumulative[-1]
        index = int(np.searchsorted(cumulative, position, side="left"))
        return float(values[min(index, values.shape[0] - 1)])

    def cdf(self) -> Tuple[List[float], List[float]]:
        """``(xs, ps)``; identical to :func:`empirical_cdf` while exact,
        the weighted step function of the sketch after compaction."""
        if self.count == 0:
            raise ValueError("empirical CDF of empty sample")
        if self.exact:
            return empirical_cdf(self.values())
        values, weights = self._weighted()
        cumulative = np.cumsum(weights)
        ps = cumulative / cumulative[-1]
        return values.tolist(), ps.tolist()

    # ---------------------------------------------------------------- merge
    def merge(self, other: "QuantileReservoir") -> None:
        """Fold another reservoir in (per-level multiset union + compact).

        Operands must share a capacity; the result depends only on the
        union of the per-level multisets (exactly commutative).
        """
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge reservoirs of capacity "
                f"{other.capacity!r} into {self.capacity!r}"
            )
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level_index, level in enumerate(other._levels):
            self._levels[level_index].extend(level)
        self.count += other.count
        self._compact()

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe state; levels are sorted so the encoding is
        canonical (a pure function of the ingested multisets)."""
        return {
            "capacity": self.capacity,
            "count": self.count,
            "levels": [sorted(level) for level in self._levels],
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "QuantileReservoir":
        reservoir = cls(record["capacity"])
        reservoir.count = int(record["count"])
        reservoir._levels = [
            [float(value) for value in level] for level in record["levels"]
        ]
        if not reservoir._levels:
            reservoir._levels = [[]]
        return reservoir


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` normal-approximation CI of the mean.

    ``z = 1.96`` gives a 95% interval; fine for the trial counts
    (tens to hundreds) the benches run.
    """
    if not values:
        raise ValueError("confidence interval of empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = z * math.sqrt(variance / n)
    return mean, mean - half, mean + half


def success_rate(successes: int, trials: int) -> float:
    """Fraction in [0, 1]; raises on zero trials."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes!r} out of range for {trials!r} trials"
        )
    return successes / trials


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extreme success
    rates the Fig. 2a panels produce (narrow ~1.0, omni ~0.1).
    """
    p = success_rate(successes, trials)
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
