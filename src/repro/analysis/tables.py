"""ASCII table rendering for benchmark output.

The benches print the same rows the paper's figures report; a plain
monospace table keeps the output diffable and terminal-friendly.
"""

from __future__ import annotations

from typing import List, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render headers + rows as an aligned ASCII table."""
    if not headers:
        raise ValueError("table needs at least one column")
    rendered_rows: List[List[str]] = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(separator)
    parts.append(line(list(headers)))
    parts.append(separator)
    for row in rendered_rows:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def format_cdf_series(
    label: str, xs: Sequence[float], ps: Sequence[float], points: int = 10
) -> str:
    """Down-sampled one-line-per-point rendering of a CDF curve."""
    if len(xs) != len(ps):
        raise ValueError("xs and ps must be the same length")
    if not xs:
        raise ValueError("empty CDF series")
    n = len(xs)
    step = max(1, n // points)
    indices = list(range(0, n, step))
    if indices[-1] != n - 1:
        indices.append(n - 1)
    lines = [f"CDF {label}:"]
    for i in indices:
        lines.append(f"  x={xs[i]:.3f}  p={ps[i]:.2f}")
    return "\n".join(lines)
