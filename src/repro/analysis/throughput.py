"""Service-quality accounting: throughput time-series and outage totals.

Interruption numbers summarize a handover in one scalar; the throughput
monitor records what the *user* experiences — serving-link Shannon rate
sampled on a fixed grid — so comparison benches and examples can show
the dip at the handover instant and the long outage plateau of the
reactive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.deployment import Deployment
from repro.net.mobile import Mobile
from repro.sim.engine import PeriodicTask


@dataclass(frozen=True)
class ThroughputSample:
    """One point of the service time-series."""

    time_s: float
    serving_cell: Optional[str]
    rate_bps: float

    @property
    def in_outage(self) -> bool:
        return self.rate_bps <= 0.0


class ServiceMonitor:
    """Samples the serving downlink's achievable rate on a fixed period.

    The rate is the Shannon capacity on the *current* serving beams
    through the mean channel (no fading draw — the monitor must not
    perturb the protocol's RNG streams).  No serving cell, or an SNR
    below the decode threshold, counts as outage (rate 0).
    """

    def __init__(
        self,
        deployment: Deployment,
        mobile: Mobile,
        period_s: float = 0.010,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError(f"period must be positive, got {period_s!r}")
        self._deployment = deployment
        self._mobile = mobile
        self._period = period_s
        self._samples: List[ThroughputSample] = []
        self._task: Optional[PeriodicTask] = None

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("monitor already started")
        self._task = PeriodicTask(
            self._deployment.sim,
            self._period,
            self._sample,
            label="service.monitor",
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _sample(self) -> None:
        now = self._deployment.sim.now
        connection = self._mobile.connection
        cell = connection.serving_cell
        rate = 0.0
        if cell is not None and connection.rx_beam is not None:
            station = self._deployment.station(cell)
            if station.is_attached(self._mobile.mobile_id):
                pose = self._mobile.pose_at(now)
                bearing_to_mobile = station.pose.bearing_to(pose.position)
                tx_beam = station.serving_tx_beam(self._mobile.mobile_id)
                rss = self._deployment.channel.mean_rss_dbm(
                    station.pose,
                    pose,
                    station.tx_gain_dbi(tx_beam, bearing_to_mobile),
                    self._mobile.rx_gain_fn(now)(
                        connection.rx_beam,
                        pose.bearing_to(station.pose.position),
                    ),
                    station.tx_power_dbm,
                )
                budget = station.link_budget
                if budget.snr_db(rss) >= budget.decode_snr_db:
                    rate = budget.shannon_rate_bps(rss)
        self._samples.append(ThroughputSample(now, cell, rate))

    # ------------------------------------------------------------- analysis
    @property
    def samples(self) -> List[ThroughputSample]:
        return list(self._samples)

    def outage_time_s(self) -> float:
        """Total time spent with zero achievable rate."""
        return self._period * sum(1 for s in self._samples if s.in_outage)

    def mean_rate_bps(self) -> float:
        """Average achievable rate over the monitored window."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(s.rate_bps for s in self._samples) / len(self._samples)

    def longest_outage_s(self) -> float:
        """Longest contiguous zero-rate stretch."""
        longest = 0
        current = 0
        for sample in self._samples:
            if sample.in_outage:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return self._period * longest
