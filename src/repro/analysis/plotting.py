"""Terminal plotting: ASCII CDF curves, sparklines and histograms.

The paper's figures are line/bar charts; these helpers render the same
series legibly in a terminal so benches and the CLI can show *shapes*,
not just summary numbers, without a plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

#: Eighth-block characters for sparklines, lowest to highest.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        raise ValueError("empty series")
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0.0:
        return _SPARK_LEVELS[4] * len(values)
    ticks = _SPARK_LEVELS[1:]
    chars = []
    for value in values:
        index = int((value - low) / span * (len(ticks) - 1))
        chars.append(ticks[index])
    return "".join(chars)


def ascii_cdf_plot(
    series: dict,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
) -> str:
    """Multi-series CDF plot on a character grid.

    ``series`` maps label -> sorted sample list.  Each series gets a
    distinct marker; the grid spans the pooled sample range.
    """
    if not series:
        raise ValueError("no series")
    markers = "*o+x#@"
    pooled: List[float] = []
    for values in series.values():
        if not values:
            raise ValueError("a series is empty")
        pooled.extend(values)
    x_min, x_max = min(pooled), max(pooled)
    span = max(x_max - x_min, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for series_index, (label, values) in enumerate(sorted(series.items())):
        ordered = sorted(values)
        n = len(ordered)
        marker = markers[series_index % len(markers)]
        for i, x in enumerate(ordered):
            p = (i + 1) / n
            col = int((x - x_min) / span * (width - 1))
            row = height - 1 - int(p * (height - 1))
            grid[row][col] = marker
    lines = []
    for row_index, row in enumerate(grid):
        p = 1.0 - row_index / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_min:<12.3g}{'':^{max(0, width - 24)}}{x_max:>12.3g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {label}"
        for i, label in enumerate(sorted(series))
    )
    lines.append(f"      {x_label}   [{legend}]")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal-bar histogram."""
    if not values:
        raise ValueError("empty sample")
    if bins < 1:
        raise ValueError(f"need >= 1 bin, got {bins!r}")
    low = min(values)
    high = max(values)
    span = max(high - low, 1e-12)
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = low + span * i / bins
        right = low + span * (i + 1) / bins
        bar = "#" * (0 if peak == 0 else int(count / peak * width))
        lines.append(f"  [{left:8.3f}, {right:8.3f})  {bar} {count}")
    return "\n".join(lines)
