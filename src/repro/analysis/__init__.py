"""Result analysis: empirical CDFs, summaries, and ASCII tables/reports."""

# NOTE: repro.analysis.report is intentionally NOT imported here — it
# pulls in repro.experiments (which itself uses repro.analysis.stats),
# and an eager import would create a cycle.  Import it explicitly:
# ``from repro.analysis.report import generate_report``.
from repro.analysis.stats import (
    empirical_cdf,
    mean_confidence_interval,
    summarize,
)
from repro.analysis.tables import format_table

__all__ = [
    "empirical_cdf",
    "format_table",
    "mean_confidence_interval",
    "summarize",
]
