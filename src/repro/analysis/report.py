"""Full reproduction report generator.

Ties every experiment together into one markdown document mirroring the
paper's evaluation section: Fig. 2a (both panels), Fig. 2b coverage,
Fig. 2c, and the extension ablations.  The ``examples/generate_report.py``
script and EXPERIMENTS.md are produced from this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import empirical_cdf, summarize
from repro.experiments.comparison import run_comparison, summarize_comparison
from repro.experiments.fig2a import run_fig2a
from repro.experiments.fig2c import run_fig2c


def _markdown_table(headers: List[str], rows: List[List]) -> str:
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def fig2a_section(n_trials: int, base_seed: int = 5000) -> str:
    """Markdown for both Fig. 2a panels."""
    results = run_fig2a(n_trials=n_trials, base_seed=base_seed)
    rows = []
    for kind in ("narrow", "wide", "omni"):
        data = results[kind]
        latency = data["latency"]
        rows.append(
            [
                kind,
                f"{100.0 * data['success_rate']:.0f}%",
                latency.get("mean", "-") if latency["count"] else "-",
                latency.get("p50", "-") if latency["count"] else "-",
            ]
        )
    table = _markdown_table(
        ["codebook", "search success", "mean dwells", "median dwells"], rows
    )
    return (
        "## Fig. 2a — directional search under mobility (human walk)\n\n"
        + table
        + "\n\nExpected shape: success narrow > wide >> omni; latency "
        "(dwell count) narrow > wide.\n"
    )


def fig2c_section(n_trials: int, base_seed: int = 5100) -> str:
    """Markdown for the Fig. 2c CDFs."""
    results = run_fig2c(n_trials=n_trials, base_seed=base_seed)
    rows = []
    cdf_lines = []
    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        times = data["completion_times_s"]
        summary = summarize(times)
        rows.append(
            [
                scenario,
                f"{100.0 * data['completion_rate']:.0f}%",
                f"{100.0 * data['soft_rate']:.0f}%",
                summary.get("p50", "-"),
                summary.get("p90", "-"),
            ]
        )
        if times:
            xs, ps = empirical_cdf(times)
            points = ", ".join(
                f"({x:.2f}s, {p:.2f})"
                for x, p in zip(xs[:: max(1, len(xs) // 6)],
                                ps[:: max(1, len(ps) // 6)])
            )
            cdf_lines.append(f"* {scenario}: {points}")
    table = _markdown_table(
        ["scenario", "completion", "soft", "p50 (s)", "p90 (s)"], rows
    )
    return (
        "## Fig. 2c — soft-handover completion time\n\n"
        + table
        + "\n\nEmpirical CDF samples:\n\n"
        + "\n".join(cdf_lines)
        + "\n"
    )


def comparison_section(n_trials: int, base_seed: int = 5200) -> str:
    """Markdown for the Silent Tracker vs baselines comparison."""
    results = run_comparison(
        scenario="vehicular", n_trials=n_trials, base_seed=base_seed
    )
    rows = [
        [
            row["protocol"],
            row["completed_any"],
            row["soft_ratio"] if row["soft_ratio"] is not None else "-",
            row["mean_interruption_s"]
            if row["mean_interruption_s"] is not None
            else "-",
        ]
        for row in summarize_comparison(results)
    ]
    table = _markdown_table(
        ["protocol", "completed", "soft ratio", "mean interruption (s)"], rows
    )
    return (
        "## Baseline comparison (vehicular)\n\n"
        + table
        + "\n\nExpected shape: Silent Tracker and the oracle hand over "
        "softly with ~tens of ms interruption; the reactive baseline "
        "always hands over hard after >1 s of outage.\n"
    )


def generate_report(
    n_trials: int = 20,
    sections: Optional[List[str]] = None,
    base_seed: int = 5000,
) -> str:
    """The full markdown report.

    ``sections`` selects from ``{"fig2a", "fig2c", "comparison"}``
    (all by default).
    """
    if n_trials < 1:
        raise ValueError(f"need >= 1 trial, got {n_trials!r}")
    wanted = sections or ["fig2a", "fig2c", "comparison"]
    builders: Dict[str, callable] = {
        "fig2a": lambda: fig2a_section(n_trials, base_seed),
        "fig2c": lambda: fig2c_section(n_trials, base_seed + 100),
        "comparison": lambda: comparison_section(
            max(6, n_trials // 2), base_seed + 200
        ),
    }
    unknown = [s for s in wanted if s not in builders]
    if unknown:
        raise ValueError(f"unknown sections {unknown!r}")
    parts = [
        "# Silent Tracker reproduction report",
        "",
        f"Trials per arm: {n_trials}.  All numbers regenerate "
        "deterministically from the seeds in the experiment modules.",
        "",
    ]
    for section in wanted:
        parts.append(builders[section]())
        parts.append("")
    return "\n".join(parts)
