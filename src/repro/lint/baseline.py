"""Baseline files: grandfathered findings that do not fail the gate.

A baseline is a committed JSON file keying findings by
``(rule, module key, stripped source line)`` — deliberately *without*
line numbers, so grandfathered findings survive unrelated edits above
them — with a count per key (several identical lines stay several
entries).  ``repro lint --baseline`` subtracts the baseline from the
run's findings; ``--write-baseline`` regenerates the file from the
current tree.

The contract for this repo: the shipped baseline is **empty for
``src/``** — library findings get fixed (or DET005/DET006-waived with a
justification), never grandfathered.  Only test-tree findings ride in
the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding, LintError

#: Baseline file schema version.
BASELINE_FORMAT = 1

#: The default committed baseline path.
DEFAULT_BASELINE = "lint-baseline.json"

_Key = Tuple[str, str, str]


def baseline_counts(findings: List[Finding]) -> Dict[_Key, int]:
    """Count findings per baseline key."""
    counts: Dict[_Key, int] = {}
    for finding in findings:
        key = finding.baseline_key
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(findings: List[Finding], path: object) -> Path:
    """Write ``findings`` as a canonical baseline file."""
    counts = baseline_counts(findings)
    entries = [
        {"rule": rule, "path": module, "text": text, "count": count}
        for (rule, module, text), count in sorted(counts.items())
    ]
    payload = {"format": BASELINE_FORMAT, "entries": entries}
    target = Path(path)
    target.write_text(
        json.dumps(payload, indent=1, sort_keys=True, separators=(",", ": "))
        + "\n",
        encoding="utf-8",
    )
    return target


def load_baseline(path: object) -> Dict[_Key, int]:
    """Read a baseline file into per-key counts (``LintError`` if bad)."""
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except OSError as error:
        raise LintError(
            f"cannot read baseline {target}: {error.strerror}"
        ) from None
    except json.JSONDecodeError as error:
        raise LintError(f"malformed baseline {target}: {error}") from None
    entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise LintError(
            f"malformed baseline {target}: expected an object with an "
            f"'entries' list"
        )
    counts: Dict[_Key, int] = {}
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "rule", "path", "text"
        } <= set(entry):
            raise LintError(
                f"malformed baseline {target}: entry needs "
                f"rule/path/text fields: {entry!r}"
            )
        key = (str(entry["rule"]), str(entry["path"]), str(entry["text"]))
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise LintError(
                f"malformed baseline {target}: bad count in {entry!r}"
            )
        counts[key] = counts.get(key, 0) + count
    return counts


def apply_baseline(
    findings: List[Finding], counts: Dict[_Key, int]
) -> List[Finding]:
    """Findings not covered by the baseline (new findings)."""
    remaining = dict(counts)
    fresh: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
