"""``repro.lint``: the AST-based determinism-contract linter.

Static analysis for the contracts this repo's byte-identity pins rest
on: RNG flows only through named ``sim.rng`` streams, wall-clock reads
stay inside telemetry/bench/progress code, every ``REPRO_*`` switch is
declared, and nothing iterates an unordered container into an artifact
or a hash.  Runtime equivalence tests catch violations *after* the
damage; this package catches them at lint time.

Entry points: ``repro lint [PATH...]`` (CLI), :class:`LintEngine`
(library).  See :mod:`repro.lint.rules` for the rule set and
:mod:`repro.lint.engine` for the waiver syntax.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.config import DEFAULT_CONFIG, LintConfig, module_key
from repro.lint.engine import LintEngine, parse_waivers
from repro.lint.findings import LINT_FORMAT, Finding, LintError, findings_payload
from repro.lint.rules import RULES, default_rules

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_CONFIG",
    "Finding",
    "LINT_FORMAT",
    "LintConfig",
    "LintEngine",
    "LintError",
    "RULES",
    "apply_baseline",
    "default_rules",
    "findings_payload",
    "load_baseline",
    "module_key",
    "parse_waivers",
    "write_baseline",
]
