"""Finding records and the machine-readable lint payload schema."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: ``repro lint --json`` payload schema version.
LINT_FORMAT = 1


class LintError(Exception):
    """Operational lint failure: bad path, unparseable source, malformed
    baseline or config.  The CLI turns these into a one-line message and
    exit status 2 (no traceback)."""


@dataclass(frozen=True)
class Finding:
    """One determinism-contract violation at a source location.

    ``path`` is the *module key* (``repro/net/deployment.py``-style,
    see :func:`repro.lint.config.module_key`) used for scoping and
    baseline matching; ``display_path`` is the path the user passed in,
    for clickable output.  ``text`` is the stripped source line — the
    line-number-free ingredient of the baseline key, so a grandfathered
    finding survives unrelated edits above it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    text: str = ""
    display_path: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline grandfathering."""
        return (self.rule, self.path, self.text)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }

    def render(self) -> str:
        where = self.display_path or self.path
        return f"{where}:{self.line}:{self.col}: {self.rule} {self.message}"


def findings_payload(
    findings: List[Finding], checked_files: int
) -> Dict[str, object]:
    """The ``repro lint --json`` payload for a finished run."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "format": LINT_FORMAT,
        "checked_files": checked_files,
        "findings": [f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)],
        "counts": dict(sorted(counts.items())),
    }
