"""Lint configuration: rule scopes, allowlists, declared namespaces.

Everything repo-specific the rules consult lives here as data — module
patterns (``fnmatch`` globs over *module keys*), the declared RNG
stream-key namespace, the declared seeding sites — so a rule class
stays a pure AST check and growing a contract means editing one table.

Module keys
-----------
Rules never see raw filesystem paths: :func:`module_key` normalizes a
path to the repo-relative form ``repro/net/deployment.py`` /
``tests/test_x.py`` / ``benchmarks/test_y.py`` by anchoring on the last
``repro`` / ``tests`` / ``benchmarks`` / ``examples`` component.  This
makes scoping stable whether the linter is invoked on ``src/``, on an
absolute path, or (in tests) on a copied tree under ``/tmp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Sequence, Tuple

#: Path components that anchor a module key, by priority: the first one
#: found scanning from the *right* wins, so ``src/repro/fleet/spec.py``
#: keys as ``repro/fleet/spec.py`` and ``tests/test_lint.py`` as itself.
_ANCHORS = ("repro", "tests", "benchmarks", "examples")


def module_key(path: object) -> str:
    """Repo-relative module key for ``path`` (posix separators)."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _ANCHORS:
            return "/".join(parts[index:])
    return parts[-1] if parts else ""


def in_scope(key: str, patterns: Sequence[str]) -> bool:
    """Whether module key ``key`` matches any of the fnmatch patterns."""
    return any(fnmatch(key, pattern) for pattern in patterns)


def _default_switch_names() -> Tuple[str, ...]:
    """The declared ``REPRO_*`` switch names (single source of truth)."""
    from repro.util.switches import SWITCHES

    return tuple(sorted(SWITCHES))


@dataclass(frozen=True)
class LintConfig:
    """Scopes and namespaces the determinism rules check against."""

    # -- DET001: modules whose *business* is the wall clock.  The
    # ``repro/obs/*`` glob is the sanctioned scope: telemetry spans,
    # the run ledger (``obs/ledger.py`` timestamps runs), and the
    # monitor (``obs/monitor.py`` heartbeat/stall clocks) all live
    # there.  Progress reporters are allowlisted by filename: every
    # subsystem's ``progress.py`` is wall-clock UI by construction.
    wall_clock_allow: Tuple[str, ...] = (
        "repro/obs/*",
        "repro/bench/*",
        "*/progress.py",
        "tests/*",
        "benchmarks/*",
        "examples/*",
    )

    # -- DET002: the declared seeding sites, the only modules allowed
    # to call ``numpy.random.default_rng`` (everything else must draw
    # from a named registry stream).
    seeding_sites: Tuple[str, ...] = (
        "repro/sim/rng.py",
        "repro/fleet/spec.py",
        "repro/fleet/runner.py",
        "repro/bench/*",
        "tests/*",
        "benchmarks/*",
        "examples/*",
    )

    # -- DET004: the one module that may read REPRO_* names from the
    # environment (the declared switch table itself).
    switch_modules: Tuple[str, ...] = ("repro/util/switches.py",)

    #: Declared REPRO_* switch names; literals outside this set are
    #: undeclared switches wherever they appear.
    switch_names: Tuple[str, ...] = field(default_factory=_default_switch_names)

    # -- DET005: the declared RNG stream-key namespace.  Exact names
    # plus prefixes for per-link / per-user families; a literal key
    # outside the namespace is a silent stream fork (usually a typo).
    stream_key_names: Tuple[str, ...] = ("uplink", "mobility")
    stream_key_prefixes: Tuple[str, ...] = (
        "decode/",
        "shadowing/",
        "blockage/",
        "fading/",
        "user/",
    )
    #: DET005 runs on library code only: tests mint scratch stream
    #: names deliberately.
    stream_key_scope: Tuple[str, ...] = ("repro/*",)
    #: The module defining the stream machinery is exempt (it derives
    #: seeds from caller-supplied names).
    stream_key_allow: Tuple[str, ...] = ("repro/sim/rng.py",)

    # -- DET006: packages whose determinism pins forbid hidden mutable
    # state (mutable default args, module-level mutable containers).
    mutable_state_scope: Tuple[str, ...] = (
        "repro/sim/*",
        "repro/phy/*",
        "repro/net/*",
        "repro/fleet/*",
    )


#: The default configuration used by the CLI and the test suite.
DEFAULT_CONFIG = LintConfig()
