"""The determinism-contract rules, DET001–DET006.

Each rule is a pure AST check with a stable ID; everything repo-specific
(allowlisted modules, declared namespaces) comes from the
:class:`~repro.lint.config.LintConfig` passed to :meth:`check`.  The
contracts these rules pin are the ones every byte-identity test in this
repo stakes its correctness on:

DET001  wall-clock reads outside telemetry/bench/progress modules
DET002  global or ad-hoc RNG outside the declared seeding sites
DET003  unordered-container iteration flowing into artifacts/hashes/RNG
DET004  raw ``os.environ`` reads of ``REPRO_*`` switches (or undeclared
        switch names anywhere)
DET005  RNG stream-key literals outside the declared key namespace
DET006  mutable default arguments / module-level mutable state in the
        simulation packages

Adding a rule: subclass :class:`Rule`, set ``rule_id`` / ``title``,
implement ``check(ctx, config)`` yielding findings via
``ctx.finding(...)``, and append an instance in :func:`default_rules`.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig, in_scope
from repro.lint.engine import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """Base class: one stable-ID determinism check."""

    rule_id: str = ""
    title: str = ""

    def check(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------- DET001
#: Qualified names whose call reads the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """DET001: wall-clock reads outside telemetry/bench/progress code.

    Wall-clock values anywhere else can leak into artifacts, seeds, or
    control flow and silently break byte-identity pins.  Sanctioned
    telemetry code uses :data:`repro.obs.telemetry.wall_clock`.
    """

    rule_id = "DET001"
    title = "wall-clock read outside telemetry/bench/progress modules"

    def check(self, ctx, config):
        if in_scope(ctx.key, config.wall_clock_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified(node.func)
            if qual in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"wall-clock read {qual}() outside the allowlisted "
                    f"telemetry/bench/progress modules; use "
                    f"repro.obs.telemetry.wall_clock for spans, or the "
                    f"simulated clock for simulation state",
                )


# --------------------------------------------------------------- DET002
#: numpy.random attributes that are *not* the legacy global-state API.
_NUMPY_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)


class AdHocRngRule(Rule):
    """DET002: global or ad-hoc RNG outside the declared seeding sites.

    All randomness must flow through named ``sim.rng`` registry streams
    (or the fleet's content-hash-derived per-user seeds).  The stdlib
    ``random`` module and numpy's legacy global API are process-wide
    mutable state; a bare ``default_rng`` call outside a declared
    seeding site is an undeclared seed source.
    """

    rule_id = "DET002"
    title = "global or ad-hoc RNG outside declared seeding sites"

    def check(self, ctx, config):
        declared = in_scope(ctx.key, config.seeding_sites)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            "stdlib random is process-global state; draw "
                            "from a named sim.rng registry stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "stdlib random is process-global state; draw "
                        "from a named sim.rng registry stream instead",
                    )
            elif isinstance(node, ast.Call):
                qual = ctx.qualified(node.func)
                if qual is None:
                    continue
                if qual.startswith("numpy.random."):
                    attr = qual.split(".", 2)[2]
                    if attr.split(".")[0] not in _NUMPY_RANDOM_OK:
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"legacy global-state numpy API {qual}(); "
                            f"use a named sim.rng registry stream",
                        )
                        continue
                if (
                    qual == "numpy.random.default_rng"
                    or qual.endswith(".default_rng")
                    or qual == "default_rng"
                ) and not declared:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "default_rng() outside the declared seeding sites "
                        "(sim/rng.py, fleet/spec.py, fleet/runner.py, "
                        "bench, tests); derive streams from the registry",
                    )


# --------------------------------------------------------------- DET003
#: Sinks whose inputs must have a deterministic order: artifact writers,
#: content hashes, and RNG stream creation.
_ORDER_SINKS = ("json.dump", "json.dumps")


def _sink_name(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    qual = ctx.qualified(node.func)
    if qual in _ORDER_SINKS:
        return qual
    if qual is not None and (
        qual.startswith("hashlib.") or qual.endswith(".derive_seed")
        or qual == "derive_seed"
    ):
        return qual
    if isinstance(node.func, ast.Attribute) and node.func.attr == "stream":
        return f"{ctx.qualified(node.func) or '<rng>.stream'}"
    return None


def _unordered_subexprs(node: ast.AST, ordered: bool) -> Iterator[ast.AST]:
    """Yield set displays/constructors not wrapped in an ordering call."""
    if isinstance(node, (ast.Set, ast.SetComp)) and not ordered:
        yield node
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name == "sorted":
            for child in ast.iter_child_nodes(node):
                yield from _unordered_subexprs(child, True)
            return
        if name in ("set", "frozenset") and not ordered:
            yield node
    for child in ast.iter_child_nodes(node):
        yield from _unordered_subexprs(child, ordered)


class OrderingHazardRule(Rule):
    """DET003: unordered containers flowing into artifacts/hashes/RNG.

    Two concrete hazards: a ``json.dump``/``dumps`` call without
    ``sort_keys=True`` (dict insertion order leaks into artifact
    bytes), and a set display/constructor reaching a content hash,
    artifact writer, or RNG stream key without an explicit
    ``sorted(...)``.
    """

    rule_id = "DET003"
    title = "unordered iteration flowing into an artifact, hash, or RNG"

    def check(self, ctx, config):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_name(ctx, node)
            if sink is None:
                continue
            if sink in ("json.dump", "json.dumps"):
                keywords = {kw.arg: kw.value for kw in node.keywords}
                has_splat = any(kw.arg is None for kw in node.keywords)
                sort_keys = keywords.get("sort_keys")
                sorts = (
                    isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True
                )
                if not sorts and not has_splat:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{sink}(...) without sort_keys=True: dict "
                        f"insertion order would leak into artifact bytes",
                    )
            seen = set()
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                for offender in _unordered_subexprs(arg, False):
                    marker = (offender.lineno, offender.col_offset)
                    if marker in seen:
                        continue
                    seen.add(marker)
                    yield ctx.finding(
                        self.rule_id,
                        offender,
                        f"unordered set expression flows into {sink}(); "
                        f"wrap it in sorted(...) to pin the order",
                    )


# --------------------------------------------------------------- DET004
#: Qualified call names that read the process environment.
_ENVIRON_READS = frozenset(
    {"os.environ.get", "os.getenv", "os.environ.pop", "os.environ.setdefault"}
)

#: Call names whose first string argument names a switch (declared-name
#: check applies even where the call itself is sanctioned).
_SWITCH_NAME_SINKS = frozenset(
    {"env_override", "switch_value", "switch", "setenv", "delenv"}
)


def _first_str_arg(node: ast.Call) -> Optional[Tuple[str, ast.AST]]:
    for arg in node.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value, arg
        break
    return None


class RawSwitchReadRule(Rule):
    """DET004: raw ``os.environ`` reads of ``REPRO_*`` names, and
    undeclared switch names anywhere.

    Every runtime switch must live in the declared table
    (:mod:`repro.util.switches`) so the tested matrix is the real
    matrix; a raw read bypasses validation, and a misspelled name would
    silently select the default path.
    """

    rule_id = "DET004"
    title = "raw os.environ read of a REPRO_* switch / undeclared switch"

    def check(self, ctx, config):
        sanctioned = in_scope(ctx.key, config.switch_modules)
        declared = set(config.switch_names)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                base = ctx.qualified(node.value)
                index = node.slice
                if (
                    base == "os.environ"
                    and isinstance(index, ast.Constant)
                    and isinstance(index.value, str)
                    and index.value.startswith("REPRO_")
                    and not sanctioned
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"raw os.environ[{index.value!r}] access; go "
                        f"through repro.util.switches.switch_value",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified(node.func) or ""
            last = qual.rsplit(".", 1)[-1]
            literal = _first_str_arg(node)
            if literal is None or not literal[0].startswith("REPRO_"):
                continue
            name, arg_node = literal
            if qual in _ENVIRON_READS and not sanctioned:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"raw {qual}({name!r}) read; go through "
                    f"repro.util.switches.switch_value",
                )
            if (
                qual in _ENVIRON_READS or last in _SWITCH_NAME_SINKS
            ) and name not in declared:
                yield ctx.finding(
                    self.rule_id,
                    arg_node,
                    f"undeclared switch {name!r}; declare it in "
                    f"repro.util.switches (declared: "
                    f"{', '.join(sorted(declared))})",
                )


# --------------------------------------------------------------- DET005
class StreamKeyRule(Rule):
    """DET005: RNG stream-key literals outside the declared namespace.

    Stream keys are a namespace, not free text: a typo'd key silently
    forks a fresh stream with a different seed, and every draw after it
    diverges.  Literal keys (including f-string prefixes) must match
    the declared names/prefixes in the lint config.
    """

    rule_id = "DET005"
    title = "RNG stream key outside the declared namespace"

    def _literal_prefix(
        self, node: ast.AST
    ) -> Optional[Tuple[str, bool]]:
        """(text, is_prefix_only) for a checkable key expression."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, False
        if isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return first.value, True
        return None

    def _in_namespace(
        self, text: str, prefix_only: bool, config: LintConfig
    ) -> bool:
        if not prefix_only:
            return text in config.stream_key_names or any(
                text.startswith(p) for p in config.stream_key_prefixes
            )
        return any(
            text.startswith(p) or p.startswith(text)
            for p in config.stream_key_prefixes
        ) or any(name.startswith(text) for name in config.stream_key_names)

    def check(self, ctx, config):
        if not in_scope(ctx.key, config.stream_key_scope):
            return
        if in_scope(ctx.key, config.stream_key_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            key_arg: Optional[ast.AST] = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "stream"
                and len(node.args) >= 1
            ):
                key_arg = node.args[0]
            else:
                qual = ctx.qualified(node.func) or ""
                if (
                    qual == "derive_seed" or qual.endswith(".derive_seed")
                ) and len(node.args) >= 2:
                    key_arg = node.args[1]
            if key_arg is None:
                continue
            literal = self._literal_prefix(key_arg)
            if literal is None:
                continue  # dynamic keys are checked at runtime, not here
            text, prefix_only = literal
            if not self._in_namespace(text, prefix_only, config):
                yield ctx.finding(
                    self.rule_id,
                    key_arg,
                    f"stream key {text!r} is outside the declared "
                    f"namespace (names: "
                    f"{', '.join(config.stream_key_names)}; prefixes: "
                    f"{', '.join(config.stream_key_prefixes)}) — a typo "
                    f"here silently forks a fresh RNG stream",
                )


# --------------------------------------------------------------- DET006
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "bytearray",
     "OrderedDict"}
)


def _mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


class MutableStateRule(Rule):
    """DET006: mutable defaults / module-level mutable state in the
    simulation packages.

    A mutable default argument is shared across calls; module-level
    mutable containers are shared across trials in one process but
    fresh in a spawned worker — both make results depend on execution
    history instead of the spec.
    """

    rule_id = "DET006"
    title = "mutable default argument or module-level mutable state"

    def check(self, ctx, config):
        if not in_scope(ctx.key, config.mutable_state_scope):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                args = node.args
                defaults: List[ast.AST] = list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _mutable_value(default):
                        label = getattr(node, "name", "<lambda>")
                        yield ctx.finding(
                            self.rule_id,
                            default,
                            f"mutable default argument in {label}(); "
                            f"default to None and allocate inside",
                        )
        for node in ctx.tree.body:
            targets: Sequence[ast.AST] = ()
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _mutable_value(value):
                continue
            names = [
                t.id for t in targets if isinstance(t, ast.Name)
            ]
            if names == ["__all__"]:
                continue  # export list: mutated by no one, by convention
            yield ctx.finding(
                self.rule_id,
                value,
                f"module-level mutable state "
                f"({', '.join(names) or 'assignment'}); hold per-run state "
                f"on the Deployment/run objects instead",
            )


def default_rules() -> List[Rule]:
    """The shipped rule set, in rule-ID order."""
    return [
        WallClockRule(),
        AdHocRngRule(),
        OrderingHazardRule(),
        RawSwitchReadRule(),
        StreamKeyRule(),
        MutableStateRule(),
    ]


#: rule_id -> rule instance, for docs and the CLI.
RULES = {rule.rule_id: rule for rule in default_rules()}
