"""The ``repro lint`` subcommand implementation.

Kept out of :mod:`repro.cli` so the argparse wiring stays thin and the
lint stack only imports when the command actually runs.

Exit codes (shared with the campaign/fleet CLI conventions):

* ``0`` — clean (no new findings),
* ``1`` — findings,
* ``2`` — operational error (bad path, malformed baseline), reported as
  a one-line message, never a traceback.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding, findings_payload


def run_lint(args) -> int:
    """Handler behind ``repro lint`` (raises ``LintError`` for exit 2)."""
    engine = LintEngine()
    checked, findings = engine.lint_paths(args.paths)

    if args.write_baseline is not None:
        target = write_baseline(findings, args.write_baseline)
        print(
            f"wrote {target}: {len(findings)} grandfathered finding(s) "
            f"from {checked} file(s)"
        )
        return 0

    if args.baseline is not None:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.json:
        print(json.dumps(findings_payload(findings, checked), indent=2,
                         sort_keys=True))
        return 1 if findings else 0

    _print_findings(findings)
    suffix = f" (baseline: {args.baseline})" if args.baseline else ""
    if findings:
        print(f"{len(findings)} finding(s) in {checked} file(s){suffix}")
        return 1
    print(f"clean: {checked} file(s), 0 findings{suffix}")
    return 0


def _print_findings(findings: List[Finding]) -> None:
    for finding in findings:
        print(finding.render())
