"""The lint engine: parse, resolve imports, run rules, apply waivers.

The engine is rule-agnostic: it parses each file once, builds a
:class:`ModuleContext` (AST + source lines + an import alias table so
rules can resolve ``pc()`` back to ``time.perf_counter``), runs every
registered rule, and post-filters the findings through inline waivers.

Waivers
-------
A finding is waived by an inline comment on the same line, or on a
comment-only line immediately above::

    value = time.time()  # repro: lint-waive[DET001]: bench-only label
    # repro: lint-waive[DET005]: historical stream name, pinned by traces
    rng.stream("legacy-name")

The bracket takes a comma-separated rule list.  A justification after
the bracket (``: why``) is required for the waiver to apply — an
unjustified waiver is itself reported (rule ``LINT100``), so "explain
or fix" is enforced mechanically.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.config import DEFAULT_CONFIG, LintConfig, module_key
from repro.lint.findings import Finding, LintError

#: Inline waiver syntax: ``# repro: lint-waive[DET001,DET005]: reason``.
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*lint-waive\[([A-Za-z0-9_,\s]*)\]\s*:?\s*(.*)$"
)

#: Directory names the recursive walk skips: caches, VCS internals and
#: fixture data (lint fixtures under ``tests/data/lint/`` are positive
#: examples by design).  Explicit file arguments are never skipped.
_SKIP_DIRS = {"__pycache__", "data", ".git", ".venv", "node_modules"}


class Waiver:
    """One parsed inline waiver."""

    __slots__ = ("line", "rules", "justification", "standalone")

    def __init__(
        self, line: int, rules: Tuple[str, ...], justification: str,
        standalone: bool,
    ) -> None:
        self.line = line
        self.rules = rules
        self.justification = justification
        self.standalone = standalone  # comment-only line: waives the next line

    def covers(self, rule: str) -> bool:
        return rule in self.rules


def parse_waivers(lines: Sequence[str]) -> List[Waiver]:
    """Extract every inline waiver from a module's source lines."""
    waivers: List[Waiver] = []
    for number, line in enumerate(lines, start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = match.group(2).strip()
        standalone = line.strip().startswith("#")
        waivers.append(Waiver(number, rules, justification, standalone))
    return waivers


class ModuleContext:
    """Everything a rule needs to check one module."""

    def __init__(
        self, key: str, tree: ast.Module, lines: Sequence[str],
        display_path: str = "",
    ) -> None:
        self.key = key
        self.tree = tree
        self.lines = lines
        self.display_path = display_path or key
        #: local name -> dotted origin ("np" -> "numpy",
        #: "pc" -> "time.perf_counter"), from top-of-tree imports.
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, alias-resolved.

        ``np.random.default_rng`` (with ``import numpy as np``) becomes
        ``numpy.random.default_rng``; a chain rooted in anything but a
        plain name (calls, subscripts) resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=rule,
            path=self.key,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            text=self.source_line(line),
            display_path=self.display_path,
        )


def _apply_waivers(
    findings: List[Finding], waivers: List[Waiver], ctx: ModuleContext
) -> List[Finding]:
    """Drop waived findings; report unjustified waiver use (LINT100)."""
    by_line: Dict[int, List[Waiver]] = {}
    for waiver in waivers:
        by_line.setdefault(waiver.line, []).append(waiver)
        if waiver.standalone:
            by_line.setdefault(waiver.line + 1, []).append(waiver)
    kept: List[Finding] = []
    for finding in findings:
        matched = [
            w for w in by_line.get(finding.line, []) if w.covers(finding.rule)
        ]
        if not matched:
            kept.append(finding)
            continue
        if not any(w.justification for w in matched):
            kept.append(finding)
            kept.append(
                Finding(
                    rule="LINT100",
                    path=ctx.key,
                    line=matched[0].line,
                    col=1,
                    message=(
                        "waiver without justification: write "
                        "'# repro: lint-waive[RULE]: why' or fix the finding"
                    ),
                    text=ctx.source_line(matched[0].line),
                    display_path=ctx.display_path,
                )
            )
    return kept


class LintEngine:
    """Runs a rule set over sources, directories, or whole trees."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[object]] = None,
    ) -> None:
        from repro.lint.rules import default_rules

        self.config = config or DEFAULT_CONFIG
        self.rules = list(rules) if rules is not None else default_rules()

    # ------------------------------------------------------------- sources
    def lint_source(
        self, source: str, key: str, display_path: str = ""
    ) -> List[Finding]:
        """Lint one module's source text under module key ``key``."""
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            raise LintError(
                f"{display_path or key}:{error.lineno}: syntax error: "
                f"{error.msg}"
            ) from None
        lines = source.splitlines()
        ctx = ModuleContext(key, tree, lines, display_path)
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx, self.config))
        findings = _apply_waivers(findings, parse_waivers(lines), ctx)
        return sorted(findings, key=lambda f: f.sort_key)

    def lint_file(self, path: Path) -> List[Finding]:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {path}: {error.strerror}") from None
        return self.lint_source(source, module_key(path), str(path))

    # ---------------------------------------------------------------- paths
    def collect_files(self, paths: Iterable[object]) -> List[Path]:
        """Expand path arguments into the ordered list of files to lint.

        Directories are walked recursively for ``*.py`` (skipping
        ``__pycache__`` / ``data`` / VCS internals); explicit file
        arguments are taken as-is.  A nonexistent path is a
        :class:`LintError` (CLI exit 2).
        """
        files: List[Path] = []
        seen = set()
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                candidates = [path]
            elif path.is_dir():
                candidates = sorted(
                    p
                    for p in path.rglob("*.py")
                    if not (set(p.parts) & _SKIP_DIRS)
                )
            else:
                raise LintError(f"no such file or directory: {path}")
            for candidate in candidates:
                marker = str(candidate.resolve())
                if marker not in seen:
                    seen.add(marker)
                    files.append(candidate)
        return files

    def lint_paths(
        self, paths: Iterable[object]
    ) -> Tuple[int, List[Finding]]:
        """Lint files/directories; returns ``(files_checked, findings)``."""
        files = self.collect_files(paths)
        findings: List[Finding] = []
        for path in files:
            findings.extend(self.lint_file(path))
        return len(files), sorted(findings, key=lambda f: f.sort_key)
