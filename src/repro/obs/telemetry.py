"""Runtime telemetry: counters, histograms and nestable wall-clock spans.

The :class:`Telemetry` hub is the substrate every scaling PR reports
through: hot paths wrap themselves in ``with telemetry.span("name")``
blocks, count events, and bucket batch sizes, and the per-run summary
rides along campaign/fleet artifacts as a *sidecar* file.

Two hard rules keep it safe to leave in the hot paths:

* **Near-zero cost when disabled.**  A disabled hub's :meth:`span`
  returns one shared no-op context manager, and every mutating method
  returns immediately.  Hot loops additionally guard on the
  ``enabled`` attribute so the disabled path costs a single attribute
  check.
* **Never touches simulation state.**  Telemetry reads
  ``time.perf_counter()`` only — no RNG streams, no simulated clock —
  so enabling or disabling it cannot change a single artifact byte.

The *current* hub is ambient (module-level): deployments, simulators
and link engines capture :func:`current` at construction, so callers
activate telemetry for a whole run with::

    with use(Telemetry()) as telemetry:
        result = run_fleet_trial(spec)
    print(telemetry.summary())

Each process has its own ambient hub; campaign workers activate a fresh
one per cell and ship its :meth:`summary` back over the pool pipe.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

#: Telemetry summary schema version.
TELEMETRY_FORMAT = 1

#: The sanctioned wall-clock reader for code outside the telemetry /
#: bench / progress layers.  A direct alias of ``time.perf_counter``
#: (zero call overhead), it exists so the determinism linter (rule
#: DET001 in :mod:`repro.lint`) can reject raw ``time`` / ``datetime``
#: reads everywhere else: wall-clock values obtained here may feed
#: telemetry spans and progress reporting only, never simulation state
#: or artifacts.
wall_clock = perf_counter


class _NullSpan:
    """Shared no-op span handed out by disabled hubs."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one wall-clock interval into the hub."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._telemetry.record_span(self._name, self._start, perf_counter())
        return False


class Telemetry:
    """Collects spans, counters and integer histograms for one run.

    Parameters
    ----------
    enabled:
        A disabled hub records nothing and hands out no-op spans.
    record_events:
        Keep individual span intervals (for Chrome-trace export) in
        addition to the per-name aggregates.  Off by default: a long
        run can fire millions of spans, and the aggregates are all the
        summary artifacts need.
    max_events:
        Interval-list cap under ``record_events``; spans beyond it
        still aggregate but their intervals are dropped (and counted
        in ``dropped_events``), so memory stays bounded.
    """

    __slots__ = (
        "enabled",
        "record_events",
        "max_events",
        "_span_totals",
        "_span_counts",
        "_counters",
        "_hists",
        "_events",
        "_dropped_events",
        "_origin",
    )

    def __init__(
        self,
        enabled: bool = True,
        record_events: bool = False,
        max_events: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.record_events = record_events
        self.max_events = max_events
        self._span_totals: Dict[str, float] = {}
        self._span_counts: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._hists: Dict[str, Dict[int, int]] = {}
        self._events: List[Tuple[str, float, float]] = []
        self._dropped_events = 0
        self._origin = perf_counter()

    # ------------------------------------------------------------------ spans
    def span(self, name: str):
        """Context manager timing one wall-clock interval under ``name``.

        Nestable; each level records independently.  Disabled hubs
        return a shared no-op manager.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def record_span(self, name: str, start_s: float, end_s: float) -> None:
        """Record one already-timed interval (``perf_counter`` values).

        The raw-call form of :meth:`span` for hot loops that guard on
        ``enabled`` themselves and skip the context-manager allocation.
        """
        if not self.enabled:
            return
        self._span_totals[name] = self._span_totals.get(name, 0.0) + (
            end_s - start_s
        )
        self._span_counts[name] = self._span_counts.get(name, 0) + 1
        if self.record_events:
            if len(self._events) < self.max_events:
                self._events.append((name, start_s - self._origin, end_s - start_s))
            else:
                self._dropped_events += 1

    def span_totals(self) -> Dict[str, float]:
        """Accumulated seconds per span name (copy)."""
        return dict(self._span_totals)

    def span_counts(self) -> Dict[str, int]:
        """Completed interval count per span name (copy)."""
        return dict(self._span_counts)

    def span_events(self) -> List[Tuple[str, float, float]]:
        """Recorded ``(name, start_s, duration_s)`` intervals.

        Start times are relative to hub construction.  Empty unless
        ``record_events`` is set.
        """
        return list(self._events)

    # --------------------------------------------------------------- counters
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (created at zero on first use)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current counter value; zero when never incremented."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters (copy)."""
        return dict(self._counters)

    # ------------------------------------------------------------- histograms
    def observe(self, name: str, value: int) -> None:
        """Bucket one integer observation into histogram ``name``.

        Buckets are exact integer values — batch sizes and queue depths
        are small and discrete, so no binning scheme is needed.
        """
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = {}
        bucket = int(value)
        hist[bucket] = hist.get(bucket, 0) + 1

    def histogram(self, name: str) -> Dict[int, int]:
        """Bucket -> count for one histogram (copy; empty if unknown)."""
        return dict(self._hists.get(name, {}))

    # ---------------------------------------------------------------- summary
    def summary(self) -> dict:
        """JSON-safe snapshot of everything recorded.

        This is the telemetry artifact schema: span totals/counts,
        counters, histograms (string bucket keys for JSON) and the
        dropped-interval count.
        """
        return {
            "format": TELEMETRY_FORMAT,
            "spans": {
                name: {
                    "count": self._span_counts[name],
                    "total_s": self._span_totals[name],
                }
                for name in self._span_totals
            },
            "counters": dict(self._counters),
            "hists": {
                name: {str(bucket): count for bucket, count in sorted(hist.items())}
                for name, hist in self._hists.items()
            },
            "dropped_events": self._dropped_events,
        }

    def merge_summary(self, summary: dict) -> None:
        """Accumulate another hub's :meth:`summary` into this one.

        Used by the campaign driver to fold worker-side per-cell
        summaries into a run-level aggregate.  Ignores ``enabled`` —
        merging is bookkeeping, not measurement.
        """
        for name, record in summary.get("spans", {}).items():
            self._span_totals[name] = (
                self._span_totals.get(name, 0.0) + float(record["total_s"])
            )
            self._span_counts[name] = (
                self._span_counts.get(name, 0) + int(record["count"])
            )
        for name, value in summary.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + int(value)
        for name, hist in summary.get("hists", {}).items():
            mine = self._hists.setdefault(name, {})
            for bucket, count in hist.items():
                mine[int(bucket)] = mine.get(int(bucket), 0) + int(count)
        self._dropped_events += int(summary.get("dropped_events", 0))

    def clear(self) -> None:
        """Drop everything recorded; the hub stays enabled/configured."""
        self._span_totals.clear()
        self._span_counts.clear()
        self._counters.clear()
        self._hists.clear()
        self._events.clear()
        self._dropped_events = 0
        self._origin = perf_counter()


#: The process-wide disabled hub — the default ambient telemetry.
DISABLED = Telemetry(enabled=False)

_current: Telemetry = DISABLED


def current() -> Telemetry:
    """The ambient telemetry hub (the shared :data:`DISABLED` by default)."""
    return _current


def set_current(telemetry: Optional[Telemetry]) -> None:
    """Install ``telemetry`` as the ambient hub (``None`` -> disabled)."""
    global _current
    _current = telemetry if telemetry is not None else DISABLED


@contextlib.contextmanager
def use(telemetry: Optional[Telemetry]) -> Iterator[Telemetry]:
    """Scoped ambient-hub override::

        with use(Telemetry()) as telemetry:
            run_fleet_trial(spec)   # deployments built here report to it
    """
    previous = _current
    set_current(telemetry)
    try:
        yield _current
    finally:
        set_current(previous)
