"""Observability substrate (``repro.obs``): telemetry, logging, export.

Three pieces, all deterministic-by-construction (wall clock only, no RNG
streams, no simulated state):

* :mod:`repro.obs.telemetry` — the :class:`Telemetry` hub: counters,
  integer histograms and nestable wall-clock spans, near-zero-cost when
  disabled, ambient per process (:func:`use` / :func:`current`).
* :mod:`repro.obs.log` — standard-library logging integration rooted at
  the ``repro`` logger; the CLI's ``--log-level``/``-v`` flags feed
  :func:`configure_logging`.
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — Chrome
  trace-event export for Perfetto, plus load/merge/top/diff over the
  telemetry summaries campaigns and fleets leave on disk.
* :mod:`repro.obs.ledger` — the append-only ``runs.jsonl`` run ledger
  behind ``repro obs history`` / ``repro obs regress``.
* :mod:`repro.obs.monitor` / :mod:`repro.obs.resources` — worker
  heartbeats + stall detection over the progress pipe, and the single
  source for RSS/CPU figures.

Quickstart::

    from repro.obs import Telemetry, use

    with use(Telemetry()) as telemetry:
        result = run_fleet_trial(spec)       # hot paths report spans
    print(telemetry.summary()["spans"])

or, from the command line: ``repro fleet run --telemetry``, then
``repro obs top <artifact>.telemetry.json``.
"""

from repro.obs.export import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.ledger import (
    LEDGER_FORMAT,
    RunLedger,
    RunRecord,
    default_ledger_path,
    record_run,
    regress_failures,
)
from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.monitor import HeartbeatEmitter, MonitorConfig, StallDetector
from repro.obs.resources import cpu_s, current_rss_kb, max_rss_kb, sample
from repro.obs.report import (
    ObsError,
    counter_rows,
    diff_rows,
    filter_summary,
    load_telemetry,
    merge_summaries,
    sidecar_path,
    top_rows,
    write_telemetry,
)
from repro.obs.telemetry import (
    DISABLED,
    TELEMETRY_FORMAT,
    Telemetry,
    current,
    set_current,
    use,
    wall_clock,
)

__all__ = [
    "DISABLED",
    "HeartbeatEmitter",
    "LEDGER_FORMAT",
    "MonitorConfig",
    "ObsError",
    "RunLedger",
    "RunRecord",
    "StallDetector",
    "TELEMETRY_FORMAT",
    "Telemetry",
    "chrome_trace",
    "chrome_trace_events",
    "configure_logging",
    "counter_rows",
    "cpu_s",
    "current",
    "current_rss_kb",
    "default_ledger_path",
    "diff_rows",
    "filter_summary",
    "get_logger",
    "load_telemetry",
    "max_rss_kb",
    "merge_summaries",
    "record_run",
    "regress_failures",
    "resolve_level",
    "sample",
    "set_current",
    "sidecar_path",
    "top_rows",
    "use",
    "wall_clock",
    "write_chrome_trace",
    "write_telemetry",
]
