"""Telemetry summaries on disk: load, merge, rank and diff.

The artifact side of :mod:`repro.obs.telemetry`: fleet runs write one
``*.telemetry.json`` sidecar, campaigns write one summary per cell under
``<out>/telemetry/``, and the ``repro obs top`` / ``repro obs diff``
commands consume either — a single summary file or a campaign directory
whose per-cell summaries are merged on the fly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry

_log = get_logger("obs")

PathLike = Union[str, Path]

#: Campaign subdirectory holding one telemetry summary per cell.
TELEMETRY_DIR_NAME = "telemetry"


class ObsError(RuntimeError):
    """Raised for missing or malformed telemetry artifacts."""


def merge_summaries(summaries: Iterable[dict]) -> dict:
    """Fold many telemetry summaries into one (span/counter/hist sums)."""
    merged = Telemetry(enabled=True)
    for summary in summaries:
        merged.merge_summary(summary)
    return merged.summary()


def _load_summary_file(path: Path) -> dict:
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ObsError(f"no telemetry artifact at {path}") from None
    except json.JSONDecodeError as error:
        raise ObsError(f"{path}: malformed telemetry JSON: {error}") from error
    if not isinstance(record, dict) or "spans" not in record:
        raise ObsError(
            f"{path}: not a telemetry summary (no 'spans' section)"
        )
    return record


def load_telemetry(path: PathLike) -> dict:
    """One telemetry summary from a file or a campaign directory.

    A directory may be a campaign output root (summaries under
    ``<dir>/telemetry/`` are merged), a sharded fleet output root
    (``*.telemetry.json`` sidecars next to the artifacts — including
    per-shard sidecars under ``<dir>/shards/`` — are merged), or the
    telemetry directory itself (its ``*.json`` files are merged).  A
    file must be a summary written by :func:`write_telemetry` (or a
    campaign cell / fleet shard sidecar).
    """
    target = Path(path)
    if target.is_dir():
        telemetry_dir = target / TELEMETRY_DIR_NAME
        files = sorted(telemetry_dir.glob("*.json"))
        if not files:
            # Fleet sidecar convention: summaries ride next to the
            # artifacts they describe, one `<name>.telemetry.json` per
            # run or per shard.
            files = sorted(target.glob("*.telemetry.json")) + sorted(
                (target / "shards").glob("*.telemetry.json")
            )
        if not files:
            # Fallback: the telemetry dir itself (manifests and merged
            # fleet artifacts are not summaries, keep the friendly
            # error for no-telemetry runs).
            files = sorted(
                f
                for f in target.glob("*.json")
                if f.name not in ("manifest.json", "fleet.json")
            )
        if not files:
            raise ObsError(
                f"{target}: no telemetry summaries under "
                f"{telemetry_dir} or {target} "
                f"(was the run made with --telemetry?)"
            )
        # A corrupt or unreadable sidecar (torn write, stray file) costs
        # one counted warning, not the whole merge — but if *nothing*
        # loads the caller still gets a loud error.
        summaries: List[dict] = []
        skipped = 0
        first_error: Optional[ObsError] = None
        for f in files:
            try:
                summaries.append(_load_summary_file(f))
            except ObsError as error:
                skipped += 1
                if first_error is None:
                    first_error = error
        if skipped:
            _log.warning(
                "%s: skipped %d unreadable telemetry summar%s (first: %s)",
                target,
                skipped,
                "y" if skipped == 1 else "ies",
                first_error,
            )
        if not summaries:
            raise ObsError(
                f"{target}: all {skipped} telemetry summaries unreadable "
                f"(first: {first_error})"
            )
        return merge_summaries(summaries)
    return _load_summary_file(target)


def write_telemetry(summary: dict, path: PathLike) -> Path:
    """Write one summary as canonical JSON (sorted keys, trailing newline)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(summary, sort_keys=True, separators=(",", ": "), indent=1)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    tmp.replace(target)
    return target


def sidecar_path(artifact_path: PathLike) -> Path:
    """Telemetry sidecar filename for a run artifact.

    ``fleet.json`` -> ``fleet.telemetry.json``; non-JSON names get the
    suffix appended.  Keeping telemetry out of the artifact itself is
    what preserves the byte-identity guarantee — wall-clock data can
    never leak into deterministic outputs.
    """
    target = Path(artifact_path)
    if target.suffix == ".json":
        return target.with_name(target.stem + ".telemetry.json")
    return target.with_name(target.name + ".telemetry.json")


# ------------------------------------------------------------------ ranking
def top_rows(
    summary: dict, limit: Optional[int] = 15
) -> Tuple[List[str], List[list]]:
    """``(headers, rows)`` of the hottest spans, by total time descending."""
    spans = summary.get("spans", {})
    total_all = sum(float(r["total_s"]) for r in spans.values()) or 1.0
    ordered = sorted(
        spans.items(), key=lambda item: (-float(item[1]["total_s"]), item[0])
    )
    if limit is not None:
        ordered = ordered[:limit]
    rows = []
    for name, record in ordered:
        total_s = float(record["total_s"])
        count = int(record["count"])
        rows.append(
            [
                name,
                count,
                1000.0 * total_s,
                1e6 * total_s / count if count else 0.0,
                100.0 * total_s / total_all,
            ]
        )
    return ["span", "count", "total (ms)", "mean (us)", "share %"], rows


def filter_summary(
    summary: dict, span_prefix: str, counter_prefix: str
) -> dict:
    """A copy of ``summary`` keeping only matching spans and counters.

    Backs ``repro obs top --events``: with the engine's per-label
    instrumentation (``sim.event.*`` spans, ``sim.events.*`` counters)
    this isolates where simulated-event time actually goes.  Share
    percentages downstream are then relative to the filtered set.
    """
    filtered = dict(summary)
    filtered["spans"] = {
        name: record
        for name, record in summary.get("spans", {}).items()
        if name.startswith(span_prefix)
    }
    filtered["counters"] = {
        name: value
        for name, value in summary.get("counters", {}).items()
        if name.startswith(counter_prefix)
    }
    return filtered


def counter_rows(
    summary: dict, limit: Optional[int] = None
) -> Tuple[List[str], List[list]]:
    """``(headers, rows)`` of counters, by value descending."""
    counters = summary.get("counters", {})
    ordered = sorted(counters.items(), key=lambda item: (-item[1], item[0]))
    if limit is not None:
        ordered = ordered[:limit]
    return ["counter", "value"], [[name, value] for name, value in ordered]


def diff_rows(
    a: dict, b: dict, limit: Optional[int] = None
) -> Tuple[List[str], List[list]]:
    """Span-by-span comparison of two summaries.

    Rows are ordered by the larger of the two totals; the ratio column
    is ``b / a`` ("-" when the span exists on one side only).
    """
    spans_a: Dict[str, dict] = a.get("spans", {})
    spans_b: Dict[str, dict] = b.get("spans", {})
    names = sorted(
        set(spans_a) | set(spans_b),
        key=lambda name: -max(
            float(spans_a.get(name, {}).get("total_s", 0.0)),
            float(spans_b.get(name, {}).get("total_s", 0.0)),
        ),
    )
    if limit is not None:
        names = names[:limit]
    rows = []
    for name in names:
        total_a = float(spans_a[name]["total_s"]) if name in spans_a else None
        total_b = float(spans_b[name]["total_s"]) if name in spans_b else None
        ratio = (
            f"{total_b / total_a:.2f}x"
            if total_a and total_b is not None
            else "-"
        )
        rows.append(
            [
                name,
                1000.0 * total_a if total_a is not None else "-",
                1000.0 * total_b if total_b is not None else "-",
                ratio,
            ]
        )
    return ["span", "A total (ms)", "B total (ms)", "B/A"], rows
