"""Live run monitoring: worker heartbeats and a stall detector.

The monitor rides the *existing* worker progress pipe — it never opens
a side channel and never touches the simulation, so artifacts stay
byte-identical with the monitor on or off.  Two pieces:

* :class:`HeartbeatEmitter` lives in a worker process.  Call
  :meth:`~HeartbeatEmitter.maybe_beat` from any per-event progress hook;
  at most once per ``interval_s`` it posts a ``("hb", shard_index,
  beat)`` tuple through the supplied ``post`` callable, where ``beat``
  carries the current phase, simulated time, cumulative engine events
  (when a simulator was bound), and an :mod:`repro.obs.resources`
  sample.  Rates (events/s) are computed driver-side from successive
  beats, so the payload stays cumulative and order-insensitive.

* :class:`StallDetector` lives in the driver.  ``watch`` each pending
  shard, ``note`` it on every progress event, and poll
  :meth:`~StallDetector.newly_stalled` from the pool drain loop: a
  watched key silent for ``stall_s`` is reported exactly once per
  silence episode ("shard 3 silent for 30s"), re-arming if the shard
  revives.

Thresholds come from the declared ``REPRO_HEARTBEAT_S`` /
``REPRO_STALL_S`` switches (see :mod:`repro.util.switches`) via
:meth:`MonitorConfig.from_switches`; both classes also take explicit
values and an injectable clock so tests never sleep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.obs import resources
from repro.obs.telemetry import wall_clock
from repro.util.switches import switch_float


@dataclass(frozen=True)
class MonitorConfig:
    """Monitor thresholds, in wall-clock seconds."""

    heartbeat_s: float = 5.0
    stall_s: float = 30.0

    @classmethod
    def from_switches(cls) -> "MonitorConfig":
        """Thresholds from ``REPRO_HEARTBEAT_S`` / ``REPRO_STALL_S``."""
        return cls(
            heartbeat_s=switch_float("REPRO_HEARTBEAT_S"),
            stall_s=switch_float("REPRO_STALL_S"),
        )


class HeartbeatEmitter:
    """Throttled worker-side heartbeat source.

    ``post`` is the progress sink's raw tuple writer; ``events_fn`` is
    optionally bound (see ``bind_events`` on the fleet progress
    classes) to the engine's cumulative ``events_fired`` counter.
    """

    def __init__(
        self,
        post: Callable[[tuple], None],
        shard_index: int,
        interval_s: float,
        clock: Callable[[], float] = wall_clock,
        sampler: Callable[[], Dict[str, object]] = resources.sample,
    ) -> None:
        self._post = post
        self._shard_index = int(shard_index)
        self._interval_s = float(interval_s)
        self._clock = clock
        self._sampler = sampler
        self._last_beat = clock()
        self.events_fn: Optional[Callable[[], int]] = None

    def maybe_beat(
        self,
        phase: str,
        sim_now_s: Optional[float] = None,
        duration_s: Optional[float] = None,
    ) -> bool:
        """Post one heartbeat if ``interval_s`` elapsed; True if posted."""
        now = self._clock()
        if now - self._last_beat < self._interval_s:
            return False
        self._last_beat = now
        beat: Dict[str, object] = {
            "phase": phase,
            "sim_now_s": sim_now_s,
            "duration_s": duration_s,
        }
        if self.events_fn is not None:
            beat["events"] = int(self.events_fn())
        beat.update(self._sampler())
        self._post(("hb", self._shard_index, beat))
        return True


class StallDetector:
    """Flags watched keys that go silent for longer than ``stall_s``.

    Each silence episode fires once: a key reported as stalled is not
    re-reported until activity (:meth:`note`) revives it.
    """

    def __init__(
        self,
        stall_s: float,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        self._stall_s = float(stall_s)
        self._clock = clock
        self._last_seen: Dict[int, float] = {}
        self._flagged: Set[int] = set()

    def watch(self, key: int) -> None:
        """Start the silence clock for ``key`` (no-op if already watched)."""
        self._last_seen.setdefault(key, self._clock())

    def note(self, key: int) -> None:
        """Record activity on ``key``, re-arming its stall flag."""
        self._last_seen[key] = self._clock()
        self._flagged.discard(key)

    def unwatch(self, key: int) -> None:
        """Stop watching ``key`` (it finished or was abandoned)."""
        self._last_seen.pop(key, None)
        self._flagged.discard(key)

    def watched(self) -> Tuple[int, ...]:
        """Currently watched keys, sorted."""
        return tuple(sorted(self._last_seen))

    def newly_stalled(self) -> List[Tuple[int, float]]:
        """``(key, silent_s)`` for keys that just crossed the threshold."""
        now = self._clock()
        stalled: List[Tuple[int, float]] = []
        for key in sorted(self._last_seen):
            silent_s = now - self._last_seen[key]
            if silent_s >= self._stall_s and key not in self._flagged:
                self._flagged.add(key)
                stalled.append((key, silent_s))
        return stalled
