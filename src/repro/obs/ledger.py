"""The run ledger: a durable, append-only index of completed runs.

Every campaign, fleet, and bench invocation records one JSON line in
``runs.jsonl`` (default ``.repro/runs.jsonl`` under the working
directory, or an explicit ``--ledger`` path): run ID, argv, content
hashes, wall-clock duration, exit status, the merged telemetry summary
when one was collected, and an :mod:`repro.obs.resources` sample.
``repro obs history`` lists the ledger and ``repro obs regress`` gates
span ratios between two entries; ``obs top``/``obs diff`` accept run
IDs wherever they accept sidecar paths.

Design constraints, in order:

* **Never hurt the run.**  Entries are written in ``finally`` (failures
  are recorded too, with a one-line error), each entry is a single
  ``write()`` of one line so concurrent appends from parallel
  invocations interleave at line granularity, and a ledger I/O error
  demotes to a warning — the artifacts always win.
* **Survive corruption.**  Readers skip (and count) undecodable lines,
  so a torn tail from a killed process costs one entry, not the ledger.
* **Stay bounded.**  At ``max_entries`` lines the file rotates to
  ``runs.jsonl.1`` (one generation kept) and a fresh file starts.

The ledger records *wall-clock facts about runs* — it lives in
``repro.obs`` precisely because it is allowed to read clocks, and it is
never an input to any simulation.
"""

from __future__ import annotations

import contextlib
import datetime
import hashlib
import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs import resources
from repro.obs.log import get_logger
from repro.obs.report import ObsError
from repro.obs.telemetry import wall_clock

_log = get_logger("obs")

#: Ledger entry schema version.
LEDGER_FORMAT = 1

#: Rotate ``runs.jsonl`` once it reaches this many lines.
DEFAULT_MAX_ENTRIES = 4096

#: Repo-scoped default ledger location (gitignored).
DEFAULT_LEDGER = Path(".repro") / "runs.jsonl"


def default_ledger_path() -> Path:
    """The default ledger path, relative to the working directory."""
    return DEFAULT_LEDGER


def _derive_run_id(entry: Dict[str, object]) -> str:
    """Content-derived run ID: ``r`` + short sha256 of the entry."""
    payload = json.dumps(entry, sort_keys=True, default=str)
    return "r" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:11]


def format_when(epoch_s: float) -> str:
    """``YYYY-mm-dd HH:MM:SS`` UTC rendering of an epoch timestamp."""
    when = datetime.datetime.fromtimestamp(
        float(epoch_s), tz=datetime.timezone.utc
    )
    return when.strftime("%Y-%m-%d %H:%M:%S")


class RunLedger:
    """Append-only ``runs.jsonl`` with rotation and tolerant reads."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self._path = Path(path) if path is not None else default_ledger_path()
        self._max_entries = int(max_entries)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def rotated_path(self) -> Path:
        """Where the previous generation lands on rotation."""
        return self._path.with_name(self._path.name + ".1")

    def append(self, entry: Dict[str, object]) -> str:
        """Append one entry (assigning a run ID if absent); returns the ID."""
        record = dict(entry)
        record.setdefault("format", LEDGER_FORMAT)
        run_id = record.get("run_id") or _derive_run_id(record)
        record["run_id"] = run_id
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._rotate_if_needed()
        with open(self._path, "a+b") as fh:
            # A killed writer can leave a torn final line with no
            # newline; heal it so the new entry stays line-granular.
            if fh.tell() > 0:
                fh.seek(-1, 2)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(line.encode("utf-8") + b"\n")
        return str(run_id)

    def _rotate_if_needed(self) -> None:
        try:
            with open(self._path, "r", encoding="utf-8") as fh:
                lines = sum(1 for _ in fh)
        except OSError:
            return
        if lines >= self._max_entries:
            self._path.replace(self.rotated_path)

    def _files(self) -> Iterator[Path]:
        for path in (self.rotated_path, self._path):
            if path.exists():
                yield path

    def scan(self) -> Tuple[List[Dict[str, object]], int]:
        """``(entries, corrupt_lines)`` oldest-first across generations.

        Undecodable or shapeless lines (a torn tail from a killed
        writer) are skipped and counted, never fatal.
        """
        entries: List[Dict[str, object]] = []
        corrupt = 0
        for path in self._files():
            for raw in path.read_text(encoding="utf-8").splitlines():
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if isinstance(record, dict) and record.get("run_id"):
                    entries.append(record)
                else:
                    corrupt += 1
        return entries, corrupt

    def entries(self) -> List[Dict[str, object]]:
        """All readable entries, oldest first."""
        return self.scan()[0]

    def last(self, n: int) -> List[Dict[str, object]]:
        """The most recent ``n`` entries, oldest first."""
        if n < 1:
            raise ObsError(f"need at least 1 entry, asked for {n}")
        return self.entries()[-n:]

    def find(self, run_id: str) -> Dict[str, object]:
        """The entry for ``run_id`` (unambiguous prefixes accepted)."""
        entries = self.entries()
        exact = [e for e in entries if e.get("run_id") == run_id]
        if exact:
            return exact[-1]
        prefixed = [
            e for e in entries if str(e.get("run_id", "")).startswith(run_id)
        ]
        ids = sorted({str(e["run_id"]) for e in prefixed})
        if len(ids) == 1:
            return prefixed[-1]
        if len(ids) > 1:
            raise ObsError(
                f"run id {run_id!r} is ambiguous in {self._path}: "
                f"{', '.join(ids)}"
            )
        raise ObsError(
            f"no run {run_id!r} in ledger {self._path}"
            + ("" if self._path.exists() else " (ledger does not exist yet)")
        )


class RunRecord:
    """Mutable fields a command fills in while :func:`record_run` times it."""

    def __init__(self, kind: str, command: Sequence[str], name: str) -> None:
        self.kind = kind
        self.command = list(command)
        self.name = name
        self.hashes: Dict[str, object] = {}
        self.artifacts: Optional[str] = None
        self.telemetry: Optional[Dict[str, object]] = None
        self.meta: Dict[str, object] = {}
        #: Assigned after the entry is written.
        self.run_id: Optional[str] = None


@contextlib.contextmanager
def record_run(
    ledger: Optional[RunLedger],
    kind: str,
    command: Sequence[str],
    name: str = "",
) -> Iterator[RunRecord]:
    """Time the enclosed command and append one ledger entry.

    The entry is written in ``finally`` — a failing run is recorded
    with ``status="failed"`` and a one-line error before the exception
    propagates — and a ledger write error is demoted to a warning so
    bookkeeping can never fail the run it books.  With ``ledger=None``
    the record is yielded but nothing is written (``--no-ledger``).
    """
    record = RunRecord(kind, command, name)
    if ledger is None:
        yield record
        return
    started_epoch = time.time()
    started = wall_clock()
    status = "ok"
    error: Optional[str] = None
    try:
        yield record
    except BaseException as exc:
        status = "failed"
        text = f"{type(exc).__name__}: {exc}".strip() or type(exc).__name__
        error = text.splitlines()[0][:200]
        raise
    finally:
        entry: Dict[str, object] = {
            "format": LEDGER_FORMAT,
            "kind": record.kind,
            "name": record.name,
            "command": list(record.command),
            "hashes": dict(record.hashes),
            "started_at": round(started_epoch, 3),
            "duration_s": round(wall_clock() - started, 6),
            "status": status,
            "error": error,
            "artifacts": record.artifacts,
            "telemetry": record.telemetry,
            "resources": resources.sample(),
        }
        if record.meta:
            entry["meta"] = dict(record.meta)
        try:
            record.run_id = ledger.append(entry)
        except OSError as err:
            _log.warning("run ledger write failed (%s); run not recorded", err)


def regress_failures(
    entry_a: Dict[str, object],
    entry_b: Dict[str, object],
    tolerance: float,
    min_span_s: float = 0.005,
) -> List[str]:
    """Names where entry B regressed beyond ``tolerance`` vs entry A.

    Gates the end-to-end ``duration_s`` plus every telemetry span both
    entries recorded, ignoring spans under ``min_span_s`` on both sides
    (sub-5ms spans are timing noise, not regressions).  A span ratio of
    ``B/A > 1 + tolerance`` fails; faster is never a failure.
    """
    failures: List[str] = []
    dur_a = float(entry_a.get("duration_s") or 0.0)
    dur_b = float(entry_b.get("duration_s") or 0.0)
    if dur_a >= min_span_s and dur_b > dur_a * (1.0 + tolerance):
        failures.append("run.duration")
    spans_a = (entry_a.get("telemetry") or {}).get("spans", {})
    spans_b = (entry_b.get("telemetry") or {}).get("spans", {})
    for name in sorted(set(spans_a) & set(spans_b)):
        total_a = float(spans_a[name].get("total_s", 0.0))
        total_b = float(spans_b[name].get("total_s", 0.0))
        if max(total_a, total_b) < min_span_s:
            continue
        if total_a > 0 and total_b > total_a * (1.0 + tolerance):
            failures.append(name)
    return failures
