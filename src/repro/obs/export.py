"""Chrome trace-event export: spans + simulation traces -> Perfetto.

Converts a run's :class:`~repro.obs.telemetry.Telemetry` span intervals
(wall-clock) and its :class:`~repro.sim.trace.TraceRecorder` events
(simulated time) into the Chrome trace-event JSON format, loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The two time bases cannot share an axis, so the export uses two trace
"processes":

* pid 1 — **wall clock**: one complete ("X") event per recorded span
  interval; nesting renders as flame-graph stacking.
* pid 2 — **simulated time**: one instant ("i") event per trace-recorder
  event, one thread row per emitting node.

The telemetry hub must have been created with ``record_events=True`` for
span intervals to exist; aggregate-only hubs export counters metadata
but an empty span track.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.telemetry import Telemetry

#: Trace-process ids for the two time bases.
SPAN_PID = 1
SIM_PID = 2


def _json_safe(value):
    """Primitive passthrough; everything else renders as its ``str``."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace_events(
    telemetry: Optional[Telemetry] = None,
    trace=None,
) -> List[dict]:
    """The ``traceEvents`` list for one run.

    ``trace`` is a :class:`~repro.sim.trace.TraceRecorder` (or anything
    with an ``events`` list of objects exposing ``time``, ``category``,
    ``node`` and ``data``).
    """
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": SPAN_PID,
            "tid": 0,
            "args": {"name": "telemetry spans (wall clock)"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": SIM_PID,
            "tid": 0,
            "args": {"name": "simulation trace (simulated time)"},
        },
    ]
    if telemetry is not None:
        for name, start_s, duration_s in telemetry.span_events():
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "span",
                    "ts": start_s * 1e6,
                    "dur": duration_s * 1e6,
                    "pid": SPAN_PID,
                    "tid": 1,
                }
            )
    if trace is not None:
        tids: Dict[str, int] = {}
        for event in trace.events:
            tid = tids.get(event.node)
            if tid is None:
                tid = tids[event.node] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": SIM_PID,
                        "tid": tid,
                        "args": {"name": event.node},
                    }
                )
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.category,
                    "cat": "trace",
                    "ts": event.time * 1e6,
                    "pid": SIM_PID,
                    "tid": tid,
                    "args": {
                        key: _json_safe(value)
                        for key, value in event.data.items()
                    },
                }
            )
    return events


def chrome_trace(
    telemetry: Optional[Telemetry] = None,
    trace=None,
) -> dict:
    """Full Chrome trace document (object form, ``displayTimeUnit`` ms)."""
    document = {
        "traceEvents": chrome_trace_events(telemetry, trace),
        "displayTimeUnit": "ms",
    }
    if telemetry is not None:
        # Aggregates ride along as document metadata: Perfetto ignores
        # unknown top-level keys, tooling can read them without
        # replaying the event list.
        document["otherData"] = {"telemetry": telemetry.summary()}
    return document


def write_chrome_trace(
    path: Union[str, Path],
    telemetry: Optional[Telemetry] = None,
    trace=None,
) -> Path:
    """Write the Chrome trace JSON for one run (atomic)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(chrome_trace(telemetry, trace), sort_keys=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    os.replace(tmp, target)
    return target
