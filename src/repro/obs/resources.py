"""Process resource sampling — the one source for RSS/CPU figures.

Every resident-set-size or CPU-time number the project reports (fleet
shard stats, bench fleet suite, run-ledger entries, monitor heartbeats)
comes from this module so units never drift between call sites:

* RSS is always **KiB** (``ru_maxrss`` is bytes on macOS and KiB on
  Linux; :func:`max_rss_kb` normalizes).
* CPU time is always **seconds** (user + system, this process only).

Everything degrades to ``None`` on platforms without ``resource`` or
``/proc`` rather than raising — resource figures are diagnostics, never
inputs to the simulation, so a missing sampler must not fail a run.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional

try:  # Unix only; RSS figures degrade to None elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix platforms
    _resource = None


def max_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB, or ``None``."""
    if _resource is None:  # pragma: no cover - non-Unix platforms
        return None
    peak = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return peak


def current_rss_kb() -> Optional[int]:
    """This process's *current* resident set size in KiB, or ``None``.

    Reads ``/proc/self/statm`` where available (Linux); falls back to
    the peak figure elsewhere so heartbeat payloads stay populated.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        pages = int(fields[1])
        return pages * os.sysconf("SC_PAGESIZE") // 1024
    except (OSError, IndexError, ValueError):
        return max_rss_kb()


def cpu_s() -> float:
    """CPU seconds (user + system) consumed by this process."""
    times = os.times()
    return float(times.user + times.system)


def sample() -> Dict[str, object]:
    """One point-in-time resource sample (heartbeats, ledger entries)."""
    return {
        "rss_kb": current_rss_kb(),
        "max_rss_kb": max_rss_kb(),
        "cpu_s": round(cpu_s(), 3),
    }
