"""Standard-library logging integration for the simulator.

Every module logs through a child of the ``repro`` root logger::

    from repro.obs.log import get_logger
    _log = get_logger("campaign")      # -> logging.Logger "repro.campaign"

Nothing is printed until :func:`configure_logging` installs a handler —
library users who configure ``logging`` themselves see our records
through their own handlers, and the CLI wires its ``--log-level``/
``-v`` flags into :func:`configure_logging` at startup.  The default
level is WARNING, so existing stdout/stderr output (tables, progress
lines) stays untouched unless verbosity is requested.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

#: Root logger name for everything under ``src/repro``.
ROOT_LOGGER = "repro"

#: Handler format: level + logger (no timestamps — simulation output is
#: deterministic-looking, wall clocks belong in telemetry spans).
LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: Marker attribute identifying the handler we installed, so repeated
#: configuration replaces it instead of stacking duplicates.
_HANDLER_MARK = "_repro_obs_handler"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger ``repro.<name>`` (or the ``repro`` root when no name)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def resolve_level(
    log_level: Optional[str] = None, verbosity: int = 0
) -> int:
    """Numeric level from an explicit ``--log-level`` or ``-v`` count.

    An explicit name wins; otherwise ``-v`` means INFO and ``-vv`` (or
    more) DEBUG, with WARNING as the quiet default.
    """
    if log_level:
        try:
            return _LEVELS[log_level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {log_level!r} "
                f"(choose from {', '.join(sorted(_LEVELS))})"
            ) from None
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    level: Union[int, str, None] = None,
    verbosity: int = 0,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the ``repro`` stderr handler and set levels.

    Idempotent: calling again adjusts the level and swaps the handler
    rather than stacking a second one.  Returns the root logger.
    """
    resolved = (
        level
        if isinstance(level, int)
        else resolve_level(level, verbosity)
    )
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(resolved)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    # Our handler is the delivery path; don't duplicate records through
    # the (possibly basicConfig'd) global root logger.
    root.propagate = False
    return root
