"""Azimuth angle arithmetic on the circle.

Beam boresights, mobile headings, and bearings all live on the circle, so
naive subtraction produces wrong distances across the ±π seam.  Every
angle comparison in the library goes through these helpers.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

TWO_PI = 2.0 * math.pi


def wrap_to_pi(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]``.

    >>> wrap_to_pi(math.pi * 3)  # doctest: +ELLIPSIS
    3.14159...
    """
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def wrap_to_pi_array(angles) -> np.ndarray:
    """Vectorized :func:`wrap_to_pi`, bit-identical to the scalar per element.

    The batch evaluation path promises byte-identical RSS traces versus
    the scalar path, so this mirrors the scalar's exact operation
    sequence (``fmod``, conditional period add, subtract) rather than
    using ``np.mod``, whose result differs at the ``±pi`` seam.
    Preserves the input shape.
    """
    wrapped = np.fmod(np.asarray(angles, dtype=float) + math.pi, TWO_PI)
    wrapped = np.where(wrapped <= 0.0, wrapped + TWO_PI, wrapped)
    return wrapped - math.pi


def wrap_to_two_pi(angle: float) -> float:
    """Wrap an angle into ``[0, 2*pi)``."""
    wrapped = math.fmod(angle, TWO_PI)
    if wrapped < 0.0:
        wrapped += TWO_PI
    return wrapped


def signed_angle_delta(target: float, source: float) -> float:
    """Smallest signed rotation taking ``source`` onto ``target``.

    Positive means counter-clockwise.  Result is in ``(-pi, pi]``.
    """
    return wrap_to_pi(target - source)


def angular_distance(a: float, b: float) -> float:
    """Unsigned circular distance between two angles, in ``[0, pi]``."""
    return abs(signed_angle_delta(a, b))


def angular_mean(angles: Iterable[float]) -> float:
    """Circular mean of a collection of angles.

    Computed via the mean resultant vector; raises :class:`ValueError`
    when the resultant is (numerically) zero, i.e. the mean is undefined
    (e.g. two opposite angles).
    """
    sin_sum = 0.0
    cos_sum = 0.0
    count = 0
    for angle in angles:
        sin_sum += math.sin(angle)
        cos_sum += math.cos(angle)
        count += 1
    if count == 0:
        raise ValueError("angular mean of empty collection")
    if math.hypot(sin_sum, cos_sum) < 1e-12:
        raise ValueError("angular mean undefined: zero resultant vector")
    return math.atan2(sin_sum / count, cos_sum / count)
