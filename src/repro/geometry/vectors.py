"""Immutable 3-D vectors and derived quantities (distance, bearing).

A tiny hand-rolled vector type keeps the hot per-measurement geometry
path free of numpy array-allocation overhead; bulk math elsewhere uses
numpy directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-D vector / point in world coordinates (meters)."""

    x: float
    y: float
    z: float = 0.0

    ZERO: "Vec3" = None  # populated after class definition

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def dot(self, other: "Vec3") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Cross product (right-handed)."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)

    def norm_xy(self) -> float:
        """Length of the horizontal (xy) projection."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction; raises on the zero vector."""
        length = self.norm()
        if length == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return self / length

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to another point."""
        return (self - other).norm()

    def azimuth(self) -> float:
        """Azimuth of this vector in the xy plane, CCW from +x, in (-pi, pi].

        Raises :class:`ValueError` when the horizontal projection is zero
        (azimuth undefined for purely vertical vectors).
        """
        if self.x == 0.0 and self.y == 0.0:
            raise ValueError("azimuth undefined for vector with zero xy projection")
        return math.atan2(self.y, self.x)

    def rotated_z(self, angle: float) -> "Vec3":
        """This vector rotated by ``angle`` radians CCW about the z axis."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Vec3(
            self.x * cos_a - self.y * sin_a,
            self.x * sin_a + self.y * cos_a,
            self.z,
        )

    @staticmethod
    def from_polar_xy(radius: float, azimuth: float, z: float = 0.0) -> "Vec3":
        """Build a vector from horizontal polar coordinates."""
        return Vec3(radius * math.cos(azimuth), radius * math.sin(azimuth), z)


# The canonical zero vector, shared.  Class-attribute assignment goes
# through type.__setattr__, which frozen dataclasses do not block.
Vec3.ZERO = Vec3(0.0, 0.0, 0.0)


def distance(a: Vec3, b: Vec3) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def bearing_xy(src: Vec3, dst: Vec3) -> float:
    """World-frame azimuth of the line of sight from ``src`` to ``dst``.

    This is the direction a transmitter at ``src`` must point to face a
    receiver at ``dst``.  Raises :class:`ValueError` when the two points
    are horizontally coincident.
    """
    return (dst - src).azimuth()
