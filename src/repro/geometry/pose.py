"""Rigid 2-D pose: position plus heading.

The mobile's beam codebook is defined in its *body frame*; when the user
rotates the device (the paper's 120 °/s rotation scenario), every beam's
world-frame boresight rotates with it.  :class:`Pose` is the bridge
between world-frame bearings (where the base station actually is) and
body-frame beam indices (what the mobile can select).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.angles import wrap_to_pi
from repro.geometry.vectors import Vec3, bearing_xy


@dataclass(frozen=True)
class Pose:
    """Position and heading of a node.

    Attributes
    ----------
    position:
        World-frame location in meters.
    heading:
        World-frame azimuth (radians, CCW from +x) that the node's body
        +x axis points toward.  Base stations normally have a fixed
        heading; mobiles get theirs from the mobility model.
    """

    position: Vec3
    heading: float = 0.0

    def world_to_body(self, world_azimuth: float) -> float:
        """Express a world-frame azimuth in this pose's body frame."""
        return wrap_to_pi(world_azimuth - self.heading)

    def body_to_world(self, body_azimuth: float) -> float:
        """Express a body-frame azimuth in the world frame."""
        return wrap_to_pi(body_azimuth + self.heading)

    def bearing_to(self, target: Vec3) -> float:
        """World-frame azimuth from this pose's position toward ``target``."""
        return bearing_xy(self.position, target)

    def body_bearing_to(self, target: Vec3) -> float:
        """Body-frame azimuth toward ``target``.

        This is the boresight a body-frame beam would need to point
        exactly at ``target``.
        """
        return self.world_to_body(self.bearing_to(target))

    def distance_to(self, target: Vec3) -> float:
        """Euclidean distance from this pose's position to ``target``."""
        return self.position.distance_to(target)

    def moved(self, delta: Vec3) -> "Pose":
        """A copy of this pose translated by ``delta`` (heading unchanged)."""
        return Pose(self.position + delta, self.heading)

    def rotated(self, delta_heading: float) -> "Pose":
        """A copy of this pose rotated by ``delta_heading`` radians."""
        return Pose(self.position, wrap_to_pi(self.heading + delta_heading))
