"""Geometry primitives: 3-D vectors, azimuth angle math, and rigid poses.

All angles in this package (and throughout the library) are **radians**.
Azimuth is measured counter-clockwise from the world +x axis in the
horizontal (xy) plane, which is the plane mm-wave beam steering operates
in for the paper's scenarios.
"""

from repro.geometry.angles import (
    TWO_PI,
    angular_distance,
    angular_mean,
    signed_angle_delta,
    wrap_to_pi,
    wrap_to_two_pi,
)
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3, bearing_xy, distance

__all__ = [
    "TWO_PI",
    "Pose",
    "Vec3",
    "angular_distance",
    "angular_mean",
    "bearing_xy",
    "distance",
    "signed_angle_delta",
    "wrap_to_pi",
    "wrap_to_two_pi",
]
