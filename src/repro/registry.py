"""Typed plugin registries: protocols, scenarios, codebooks, experiments.

The paper's evaluation is a grid of protocol arms x mobility scenarios x
receive codebooks.  Those axes are *extension points*: new arms are
registered here, by name, rather than wired into each experiment module
with ad-hoc string dispatch.  Everything downstream — the
:class:`~repro.api.Session` facade, the campaign grid validation, the
``repro list`` CLI — resolves names exclusively through these
registries, so a third-party protocol registered once is immediately
usable everywhere a built-in one is.

Four global registries, each with decorator registration:

=======================  =============================================
registry                 entry
=======================  =============================================
:data:`PROTOCOLS`        factory ``(deployment, mobile, serving_cell,
                         config=None) -> protocol`` returning an object
                         with ``start()``/``stop()`` and (for the
                         comparison experiments) a ``handover_log``
:data:`SCENARIOS`        :class:`ScenarioDef` — trajectory builder plus
                         per-scenario defaults (duration, start x)
:data:`CODEBOOKS`        factory ``() -> Codebook`` for the mobile's
                         receive codebook
:data:`EXPERIMENTS`      :class:`ExperimentDef` — how to run one
                         campaign cell of the kind and decode its
                         artifact payload
=======================  =============================================

Registering a custom arm::

    from repro.registry import register_protocol, register_scenario

    @register_protocol("my-tracker")
    def build_my_tracker(deployment, mobile, serving_cell, config=None):
        return MyTracker(deployment, mobile, serving_cell)

    @register_scenario("loiter", duration_s=6.0, default_start_x=10.0)
    def build_loiter(rng, start_x):
        return HumanWalk(Vec3(start_x, 0.0), Vec3(0.2, 0.0), rng=rng)

Unknown names fail with an error that lists the valid choices
(``unknown protocol 'oracel'; known: oracle, reactive,
silent-tracker``); duplicate registrations are refused unless
``override=True`` is passed explicitly.

Built-in arms live in the modules that implement them
(:mod:`repro.experiments.scenarios`, :mod:`repro.core.baselines`, the
``repro.experiments`` figure modules) and are imported lazily on the
first registry query, so importing :mod:`repro.registry` itself stays
cheap and free of circular imports.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")

#: Modules that register the built-in arms on import.  Loaded lazily by
#: the first query against any registry (see :func:`load_builtins`).
BUILTIN_MODULES = (
    "repro.experiments.scenarios",      # scenarios + mobile codebooks
    "repro.core.baselines",             # protocol arms
    "repro.experiments.fig2a",          # "search" experiment kind
    "repro.experiments.fig2c",          # "tracking"
    "repro.experiments.comparison",     # "comparison"
    "repro.experiments.workloads",      # "workload"
    "repro.experiments.hierarchical",   # "hierarchical"
    "repro.experiments.pingpong",       # "pingpong"
    "repro.fleet.experiment",           # "fleet" (population-scale runs)
)


class RegistryError(ValueError):
    """Base class for registry misuse (a :class:`ValueError`)."""


class UnknownNameError(RegistryError):
    """An unregistered name was looked up.

    The message lists every valid choice, sorted, so a typo is a
    one-glance fix: ``unknown protocol 'oracel'; known: oracle,
    reactive, silent-tracker``.
    """

    def __init__(self, kind: str, name: object, known: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        known_text = ", ".join(sorted(self.known)) if self.known else "(none)"
        super().__init__(f"unknown {kind} {name!r}; known: {known_text}")


class DuplicateNameError(RegistryError):
    """A name was registered twice without ``override=True``."""

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        super().__init__(
            f"{kind} {name!r} is already registered; "
            f"pass override=True to replace it"
        )


_loaded = False
_loading = False


def load_builtins() -> None:
    """Import every module in :data:`BUILTIN_MODULES` exactly once.

    Idempotent and re-entrant: registrations performed *during* the load
    (the built-in modules querying each other's registries) do not
    recurse.
    """
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True
    try:
        for module in BUILTIN_MODULES:
            importlib.import_module(module)
        _loaded = True
    finally:
        _loading = False


class Registry(Generic[T]):
    """An ordered name -> entry mapping with decorator registration.

    ``kind`` names what the registry holds ("protocol", "scenario", ...)
    and prefixes every error message.  Entries keep registration order
    (:meth:`names`), which for the built-ins matches the paper's
    presentation order; error messages sort the names for scanability.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # --------------------------------------------------------------- writing
    def register(
        self,
        name: str,
        entry: Optional[T] = None,
        *,
        override: bool = False,
    ):
        """Register ``entry`` under ``name``; decorator form when omitted.

        ``override=True`` replaces an existing entry (deliberate
        shadowing, e.g. a test stub); without it a duplicate name raises
        :class:`DuplicateNameError` so two plugins cannot silently
        swallow each other.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if entry is None:
            def decorator(obj: T) -> T:
                self.register(name, obj, override=override)
                return obj

            return decorator
        # Load the builtins before writing (a no-op while they are
        # being loaded): a plugin claiming a builtin name must collide
        # *here*, at its own registration, not later inside a builtin
        # module import triggered by the first lookup.
        load_builtins()
        if name in self._entries and not override:
            raise DuplicateNameError(self.kind, name)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> T:
        """Remove and return an entry (tests and plugin teardown)."""
        load_builtins()
        try:
            return self._entries.pop(name)
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    # --------------------------------------------------------------- reading
    def get(self, name: str) -> T:
        """The entry for ``name``; :class:`UnknownNameError` otherwise."""
        load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        load_builtins()
        return tuple(self._entries)

    def items(self) -> Tuple[Tuple[str, T], ...]:
        load_builtins()
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        load_builtins()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        load_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self._entries)!r})"


# ------------------------------------------------------------------ entries
@dataclass(frozen=True)
class ScenarioDef:
    """One mobility scenario: trajectory builder + testbed defaults.

    ``build(rng, start_x)`` returns a fresh
    :class:`~repro.mobility.base.Trajectory`; ``default_start_x`` places
    the mobile so one full handover episode plays out within
    ``duration_s`` (the default trial length for the scenario).
    """

    name: str
    duration_s: float
    default_start_x: float
    build: Callable
    description: str = ""

    def make_trajectory(self, rng=None, start_x: Optional[float] = None):
        """A fresh trajectory, at the scenario's default start unless given."""
        x0 = self.default_start_x if start_x is None else start_x
        return self.build(rng, x0)


@dataclass(frozen=True)
class ExperimentDef:
    """One campaign experiment kind.

    ``run(cell)`` executes one :class:`~repro.campaign.spec.CampaignCell`
    and returns its JSON-safe artifact payload; ``decode(payload)``
    rebuilds the trial dataclass from that payload.  The ``protocols``
    axis of a campaign grid is interpreted per kind: ``axis`` says which
    registry the values come from (``"codebook"``, ``"protocol"``, or
    ``"custom"`` for kind-private arms), ``protocol_axis`` is the
    human-readable meaning, and ``protocol_names()`` returns the
    currently-valid values (a live view, so in-process plugin
    registrations extend it immediately).

    ``duration_param`` names the cell-params key the kind reads its
    trial length from (``None`` for kinds without one), and
    ``accepts_config`` says whether ``run`` honors the cell's config
    overrides — :func:`repro.api.run_trial` uses both to map
    ``TrialSpec`` fields onto the cell, and to *reject* spec fields
    the kind would otherwise silently drop.
    """

    name: str
    run: Callable
    decode: Callable
    axis: str
    protocol_axis: str
    protocol_names: Callable[[], Tuple[str, ...]]
    default_protocols: Tuple[str, ...]
    description: str = ""
    duration_param: Optional[str] = "duration_s"
    accepts_config: bool = False


# ---------------------------------------------------------------- registries
PROTOCOLS: Registry = Registry("protocol")
SCENARIOS: "Registry[ScenarioDef]" = Registry("scenario")
CODEBOOKS: Registry = Registry("codebook")
EXPERIMENTS: "Registry[ExperimentDef]" = Registry("experiment")


# ---------------------------------------------------------------- decorators
def register_protocol(name: str, *, override: bool = False):
    """Register a protocol factory: ``@register_protocol("my-arm")``.

    The factory signature is ``(deployment, mobile, serving_cell,
    config=None)``; it must return an object with ``start()`` and
    ``stop()`` (and, for the comparison experiments, a ``handover_log``).
    """
    return PROTOCOLS.register(name, override=override)


def register_scenario(
    name: str,
    *,
    duration_s: float,
    default_start_x: float,
    description: str = "",
    override: bool = False,
):
    """Register a trajectory builder as a scenario.

    Decorates ``build(rng, start_x) -> Trajectory`` and wraps it in a
    :class:`ScenarioDef` carrying the scenario's default trial duration
    and starting x position.
    """
    if duration_s <= 0.0:
        raise RegistryError(
            f"scenario {name!r}: duration_s must be positive, got {duration_s!r}"
        )

    def decorator(build: Callable) -> Callable:
        SCENARIOS.register(
            name,
            ScenarioDef(
                name=name,
                duration_s=duration_s,
                default_start_x=default_start_x,
                build=build,
                description=description or _first_doc_line(build),
            ),
            override=override,
        )
        return build

    return decorator


def register_codebook(name: str, *, override: bool = False):
    """Register a mobile receive-codebook factory ``() -> Codebook``."""
    return CODEBOOKS.register(name, override=override)


def register_experiment(
    name: str,
    *,
    decode: Callable,
    axis: str,
    protocol_axis: str,
    protocol_names: Callable[[], Tuple[str, ...]],
    default_protocols: Tuple[str, ...],
    description: str = "",
    duration_param: Optional[str] = "duration_s",
    accepts_config: bool = False,
    override: bool = False,
):
    """Register a campaign experiment kind; decorates its cell runner."""
    if axis not in ("codebook", "protocol", "custom"):
        raise RegistryError(
            f"experiment {name!r}: axis must be 'codebook', 'protocol' or "
            f"'custom', got {axis!r}"
        )

    def decorator(run: Callable) -> Callable:
        EXPERIMENTS.register(
            name,
            ExperimentDef(
                name=name,
                run=run,
                decode=decode,
                axis=axis,
                protocol_axis=protocol_axis,
                protocol_names=protocol_names,
                default_protocols=tuple(default_protocols),
                description=description or _first_doc_line(run),
                duration_param=duration_param,
                accepts_config=accepts_config,
            ),
            override=override,
        )
        return run

    return decorator


# --------------------------------------------------------------- convenience
def make_protocol(name: str, deployment, mobile, serving_cell: str, config=None):
    """Build a registered protocol arm against a live deployment."""
    return PROTOCOLS.get(name)(deployment, mobile, serving_cell, config)


def make_codebook(name: str):
    """Build a registered mobile receive codebook."""
    return CODEBOOKS.get(name)()


def entry_description(entry) -> str:
    """Best-effort one-line description of a registry entry."""
    description = getattr(entry, "description", "")
    if description:
        return description
    return _first_doc_line(entry)


def _first_doc_line(obj) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""
