"""Trace persistence: JSON-lines export/import and CSV summaries.

Long experiment campaigns record traces to disk so runs can be
re-analyzed without re-simulating; the format is one JSON object per
line (stable, appendable, greppable).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.sim.trace import TraceEvent, TraceRecorder

PathLike = Union[str, Path]


def dump_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write events as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            record = {
                "time": event.time,
                "category": event.category,
                "node": event.node,
                "data": event.data,
            }
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: PathLike) -> List[TraceEvent]:
    """Read events back from a JSON-lines file.

    Raises :class:`ValueError` with the line number on malformed input.
    """
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed JSON: {error}"
                ) from error
            try:
                events.append(
                    TraceEvent(
                        time=float(record["time"]),
                        category=str(record["category"]),
                        node=str(record["node"]),
                        data=dict(record.get("data", {})),
                    )
                )
            except (KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: missing field: {error}"
                ) from error
    return events


def recorder_from_jsonl(path: PathLike) -> TraceRecorder:
    """A recorder pre-populated from a saved trace (for re-analysis)."""
    recorder = TraceRecorder()
    for event in load_jsonl(path):
        recorder.emit(event.time, event.category, event.node, **event.data)
    return recorder


def dump_csv(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Flat CSV export (data payload JSON-encoded in one column).

    Convenient for spreadsheet inspection; JSONL remains the canonical
    round-trip format.
    """
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "category", "node", "data"])
        for event in events:
            writer.writerow(
                [
                    f"{event.time:.9f}",
                    event.category,
                    event.node,
                    json.dumps(event.data, sort_keys=True),
                ]
            )
            count += 1
    return count
