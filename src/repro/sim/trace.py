"""Structured simulation trace.

Protocols emit trace events at every decision point (state transitions,
beam switches, RACH milestones).  The analysis layer replays traces to
compute the paper's metrics, and tests assert on them to pin protocol
behaviour — the trace is the audit trail for Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    category:
        Dotted namespace, e.g. ``"fsm.transition"`` or ``"rach.msg2"``.
    node:
        Identifier of the emitting node (mobile or base-station id).
    data:
        Free-form payload; keys are event-specific but stable per category.
    """

    time: float
    category: str
    node: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.time:.4f}s {self.node} {self.category} {self.data})"


class TraceRecorder:
    """Append-only event log with simple querying.

    Recording can be disabled wholesale (``enabled=False``) for large
    benchmark sweeps where only final metrics matter.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def emit(
        self,
        time: float,
        category: str,
        node: str,
        **data: Any,
    ) -> None:
        """Record one event (no-op when disabled, listeners still skipped)."""
        if not self.enabled:
            return
        event = TraceEvent(time, category, node, data)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a live listener invoked on every emitted event."""
        self._listeners.append(listener)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in emission order."""
        return list(self._events)

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria.

        ``category`` matches exact name or any dotted descendant, so
        ``filter(category="fsm")`` returns ``fsm.transition`` events too.
        """
        return list(self.iter_filter(category, node, since, until))

    def iter_filter(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[TraceEvent]:
        """Lazy version of :meth:`filter`."""
        prefix = None if category is None else category + "."
        for event in self._events:
            if category is not None:
                if event.category != category and not event.category.startswith(
                    prefix
                ):
                    continue
            if node is not None and event.node != node:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            yield event

    def count(self, category: Optional[str] = None, node: Optional[str] = None) -> int:
        """Number of events matching the criteria."""
        return sum(1 for _ in self.iter_filter(category=category, node=node))

    def last(
        self, category: Optional[str] = None, node: Optional[str] = None
    ) -> Optional[TraceEvent]:
        """Most recent matching event, or ``None``."""
        result = None
        for event in self.iter_filter(category=category, node=node):
            result = event
        return result

    def clear(self) -> None:
        """Drop all recorded events (listeners stay subscribed)."""
        self._events.clear()
