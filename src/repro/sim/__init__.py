"""Discrete-event simulation substrate.

The whole reproduction runs on this small, deterministic event engine:

* :class:`~repro.sim.engine.Simulator` — time base and event queue.
* :class:`~repro.sim.rng.RngRegistry` — named, independently-seeded
  random streams so results are reproducible bit-for-bit from one master
  seed regardless of module evaluation order.
* :class:`~repro.sim.trace.TraceRecorder` — structured event trace used
  both for debugging and for the experiment analysis.
* :class:`~repro.sim.metrics.MetricsRecorder` — counters, gauges and
  sample series collected during a run.
"""

from repro.sim.engine import Event, EventQueue, SimulationError, Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "MetricsRecorder",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
]
