"""Run-level metrics: counters, gauges and timestamped sample series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.numerics import RunningStats


@dataclass(frozen=True)
class Sample:
    """One timestamped metric sample."""

    time: float
    value: float


class MetricsRecorder:
    """Collects counters, gauges and sample series during a run.

    Separate from :class:`~repro.sim.trace.TraceRecorder`: traces capture
    *what happened* (qualitative protocol events), metrics capture *how
    much / how long* (quantitative aggregates the benchmarks report).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._series: Dict[str, List[Sample]] = {}
        self._stats: Dict[str, RunningStats] = {}

    # ---------------------------------------------------------------- counters
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (created at zero on first use)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current counter value; zero when never incremented."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters (copy) — the public view :meth:`merge_from` uses."""
        return dict(self._counters)

    # ------------------------------------------------------------------ gauges
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last-write-wins)."""
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        """Current gauge value, or ``None`` when never set."""
        return self._gauges.get(name)

    def gauges(self) -> Dict[str, float]:
        """All gauges (copy)."""
        return dict(self._gauges)

    # ------------------------------------------------------------------ series
    def record(self, name: str, time: float, value: float) -> None:
        """Append a timestamped sample to series ``name``.

        Also feeds an online :class:`RunningStats` so summaries do not
        require a second pass.
        """
        self._series.setdefault(name, []).append(Sample(time, value))
        self._stats.setdefault(name, RunningStats()).push(value)

    def series(self, name: str) -> List[Sample]:
        """All samples of a series, in insertion order."""
        return list(self._series.get(name, []))

    def series_values(self, name: str) -> List[float]:
        """Just the values of a series."""
        return [sample.value for sample in self._series.get(name, [])]

    def series_arrays(self, name: str) -> Tuple[List[float], List[float]]:
        """``(times, values)`` parallel lists for plotting/analysis."""
        samples = self._series.get(name, [])
        return [s.time for s in samples], [s.value for s in samples]

    def stats(self, name: str) -> RunningStats:
        """Online summary statistics for a series (empty stats if unknown)."""
        return self._stats.get(name, RunningStats())

    def series_names(self) -> List[str]:
        """Names of all recorded series, in first-recorded order."""
        return list(self._series)

    # ----------------------------------------------------------------- summary
    def summary(self) -> Dict[str, dict]:
        """Nested dict of everything recorded, for reports and debugging."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "series": {name: self._stats[name].summary() for name in self._series},
        }

    def merge_counters_from(self, other: "MetricsRecorder") -> None:
        """Accumulate another recorder's counters into this one.

        Used by experiment runners to aggregate per-trial recorders.
        Goes through the public :meth:`counters` view, so it works for
        any recorder-shaped object, not just this exact class.
        """
        for name, value in other.counters().items():
            self.incr(name, value)

    def merge_from(self, other: "MetricsRecorder") -> None:
        """Accumulate everything ``other`` recorded into this recorder.

        Counters add; gauges are last-write-wins (``other``'s value
        lands last, matching :meth:`set_gauge` semantics); series
        samples are replayed through :meth:`record`, so the online
        :class:`RunningStats` merge exactly rather than approximately.
        """
        self.merge_counters_from(other)
        for name, value in other.gauges().items():
            self.set_gauge(name, value)
        for name in other.series_names():
            for sample in other.series(name):
                self.record(name, sample.time, sample.value)
