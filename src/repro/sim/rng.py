"""Named random-number streams for reproducible simulations.

Every stochastic component (shadowing, fading, blockage, measurement
noise, RACH contention, ...) asks the registry for a stream by name.
Streams are derived from the master seed *and the name*, so:

* the same master seed always reproduces the same run, and
* adding a new consumer does not perturb the draws seen by existing
  consumers (no shared-sequence coupling).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(context: str, name: str) -> int:
    """Stable 64-bit seed from a context string and a name.

    The one hashing scheme every seed in the project derives from:
    SHA-256 over ``"{context}:{name}"`` (Python's ``hash`` is salted
    per-process and would break reproducibility).  The registry uses the
    master seed as context; the fleet population synthesis uses a spec
    content hash, so a user's seed is a pure function of *what the fleet
    computes* and the user's index — never of process or worker
    scheduling.
    """
    digest = hashlib.sha256(f"{context}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed!r}")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def _derive_seed(self, name: str) -> int:
        """Stable 64-bit seed from (master_seed, name) via :func:`derive_seed`."""
        return derive_seed(str(self._master_seed), name)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component's draws advance its own sequence only.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = generator
        return generator

    def fork(self, sub_seed: int) -> "RngRegistry":
        """A registry for an independent trial.

        Experiment runners fork one registry per trial index so trials
        are independent yet individually reproducible.
        """
        digest = hashlib.sha256(
            f"{self._master_seed}/fork/{sub_seed}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))

    def stream_names(self) -> list:
        """Names of streams created so far (diagnostic)."""
        return sorted(self._streams)
