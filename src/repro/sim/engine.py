"""Deterministic discrete-event simulation engine.

Design goals, in priority order:

1. **Determinism** — events scheduled for the same timestamp fire in
   scheduling order (a monotone sequence number breaks ties), so a run is
   a pure function of its configuration and master seed.
2. **Simplicity** — callbacks, not coroutines.  Protocol state machines
   in this codebase are explicit objects; they do not need generator
   processes, and plain callbacks keep stack traces readable.
3. **Cancelability** — timers (RACH response windows, handover guards)
   need to be cancelable without O(n) heap surgery; cancellation is a
   lazy tombstone flag.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import telemetry as _telemetry


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances are handles: hold one to :meth:`cancel` the event before it
    fires.  Events compare by ``(time, seq)`` so the heap ordering is total
    and deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None:
            self._queue._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6f}, label={self.label!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic same-time ordering."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0  # non-cancelled events currently in the heap

    def __len__(self) -> int:
        # Exact count of pending (non-cancelled) events; cancelled
        # tombstones still occupying heap slots are not included.
        return self._live

    def _on_cancel(self, event: Event) -> None:
        """Bookkeeping hook invoked exactly once per cancelled event."""
        self._live -= 1

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> Event:
        """Add an event; returns its handle."""
        event = Event(time, next(self._counter), callback, args, label, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                # Detach so a later cancel() of the fired handle is a
                # no-op for the count (the event has left the heap).
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Event loop and simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.02, burst_handler)
        sim.run_until(2.0)

    Time is in **seconds** of simulated time.  The engine never consults
    the wall clock.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self._stop_requested = False
        # Ambient telemetry captured once: the engine dispatch loop is
        # the hottest pure-Python path, so the disabled case must cost
        # one attribute check per event, not a registry lookup.
        self._telemetry = _telemetry.current()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Exact number of non-cancelled events still queued."""
        return len(self._queue)

    @property
    def stop_requested(self) -> bool:
        """Whether the last run was halted by :meth:`stop`.

        Stays true until the next run begins, so callers that advance
        time in slices can tell a drained/expired run from a stopped
        one between slices.
        """
        return self._stop_requested

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        A zero delay is allowed (fires after currently-executing event,
        before time advances); negative delays are an error.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past: delay={delay!r}")
        if math.isnan(delay) or math.isinf(delay):
            raise SimulationError(f"delay must be finite, got {delay!r}")
        return self._queue.push(self._now + delay, callback, args, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        return self._queue.push(time, callback, args, label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event returns."""
        self._stop_requested = True

    def _run_loop(
        self, end_time: Optional[float], max_events: Optional[int]
    ) -> None:
        """Shared event loop behind :meth:`run_until` / :meth:`run_until_idle`.

        Fires events in ``(time, seq)`` order until the queue drains,
        simulated time would pass ``end_time`` (when given), or
        :meth:`stop` is called from a callback.  ``max_events`` bounds
        the number of callbacks fired in this invocation.
        """
        if self._running:
            raise SimulationError("run loop is not reentrant")
        self._running = True
        self._stop_requested = False
        fired_this_run = 0
        telemetry = self._telemetry
        try:
            while not self._stop_requested:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if end_time is not None and next_time > end_time:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                if telemetry.enabled:
                    # Span names bucket by the label's first dotted
                    # component ("ssb", "rach", ...) to bound
                    # cardinality; counters keep the full label.
                    label = event.label or "unlabeled"
                    started = perf_counter()
                    event.callback(*event.args)
                    telemetry.record_span(
                        "sim.event." + label.partition(".")[0],
                        started,
                        perf_counter(),
                    )
                    telemetry.incr("sim.events." + label)
                else:
                    event.callback(*event.args)
                self._events_fired += 1
                fired_this_run += 1
                if max_events is not None and fired_this_run >= max_events:
                    horizon = f" before {end_time}s" if end_time is not None else ""
                    raise SimulationError(
                        f"exceeded max_events={max_events}{horizon}"
                    )
        finally:
            self._running = False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events in order until simulated time reaches ``end_time``.

        The clock is left exactly at ``end_time`` even when the queue
        drains early, so periodic post-run bookkeeping sees a consistent
        time base.  ``max_events`` guards against runaway self-scheduling
        loops in tests.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time!r} is before current time {self._now!r}"
            )
        self._run_loop(end_time, max_events)
        if not self._stop_requested:
            self._now = max(self._now, end_time)

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains (bounded by ``max_events``).

        Honors :meth:`stop` like :meth:`run_until`: a callback requesting
        a stop halts the loop with the remaining events still queued.
        """
        self._run_loop(None, max_events)


class PeriodicTask:
    """Self-rescheduling periodic callback with drift-free timing.

    Fires at ``start + k * period`` for k = 0, 1, 2, ... until
    :meth:`stop` is called.  Used for SSB burst schedules and measurement
    ticks.  Firing times are computed from the initial phase rather than
    accumulated, so long runs do not drift.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        start_delay: float = 0.0,
        label: str = "periodic",
    ) -> None:
        if period <= 0.0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._tick = 0
        self._origin = sim.now + start_delay
        self._stopped = False
        self._pending: Optional[Event] = sim.schedule(
            start_delay, self._fire, label=label
        )

    @property
    def period(self) -> float:
        return self._period

    @property
    def ticks_fired(self) -> int:
        return self._tick

    @property
    def next_fire_s(self) -> float:
        """Scheduled time of the next tick that has not fired yet.

        Remains meaningful after :meth:`stop` — it is the first tick the
        task *would* have fired — so a restarted schedule can resume
        without repeating a tick that already ran.
        """
        return self._origin + self._tick * self._period

    def _fire(self) -> None:
        if self._stopped:
            return
        self._pending = None
        # The in-flight tick counts as fired from here on: a stop()
        # issued inside the callback must leave next_fire_s pointing
        # past it, or a restarted schedule would repeat it.
        self._tick += 1
        self._callback()
        if self._stopped:
            return
        next_time = self._origin + self._tick * self._period
        # Guard against callbacks that consumed simulated time themselves
        # (they should not, but a clamped reschedule beats a crash).
        delay = max(0.0, next_time - self._sim.now)
        self._pending = self._sim.schedule(delay, self._fire, label=self._label)

    def stop(self) -> None:
        """Stop firing.  Safe to call from within the callback."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
