"""Deterministic discrete-event simulation engine.

Design goals, in priority order:

1. **Determinism** — events scheduled for the same timestamp fire in
   scheduling order (a monotone sequence number breaks ties), so a run is
   a pure function of its configuration and master seed.
2. **Simplicity** — callbacks, not coroutines.  Protocol state machines
   in this codebase are explicit objects; they do not need generator
   processes, and plain callbacks keep stack traces readable.
3. **Cancelability** — timers (RACH response windows, handover guards)
   need to be cancelable without O(n) heap surgery; cancellation is a
   lazy tombstone flag.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import wall_clock


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances are handles: hold one to :meth:`cancel` the event before it
    fires.  Events compare by ``(time, seq)`` so the heap ordering is total
    and deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None:
            self._queue._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6f}, label={self.label!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic same-time ordering."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0  # non-cancelled events currently in the heap

    def __len__(self) -> int:
        # Exact count of pending (non-cancelled) events; cancelled
        # tombstones still occupying heap slots are not included.
        return self._live

    def _on_cancel(self, event: Event) -> None:
        """Bookkeeping hook invoked exactly once per cancelled event."""
        self._live -= 1

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        label: str = "",
    ) -> Event:
        """Add an event; returns its handle."""
        event = Event(time, next(self._counter), callback, args, label, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                # Detach so a later cancel() of the fired handle is a
                # no-op for the count (the event has left the heap).
                event._queue = None
                return event
        return None

    def pop_batch(self) -> List[Event]:
        """Remove and return every non-cancelled event at the head timestamp.

        Events come back in ``(time, seq)`` order — exactly the order
        :meth:`pop` would have produced them one at a time — so a
        coalesced dispatch loop pays one heap scan per *timestamp*
        instead of one per event.  Returns ``[]`` when the queue is
        empty.
        """
        first = self.pop()
        if first is None:
            return []
        batch = [first]
        heap = self._heap
        while heap and heap[0].time == first.time:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            batch.append(event)
        return batch

    def requeue(self, events: List[Event]) -> None:
        """Return popped-but-unfired events to the heap.

        Used by the batched run loop when a stop request or
        ``max_events`` exhaustion lands mid-batch: the remaining events
        must look exactly as if they had never been popped.  Events
        cancelled after the pop are dropped (their live count was
        already settled when they left the heap).
        """
        for event in events:
            if event.cancelled:
                continue
            event._queue = self
            heapq.heappush(self._heap, event)
            self._live += 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Event loop and simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.02, burst_handler)
        sim.run_until(2.0)

    Time is in **seconds** of simulated time.  The engine never consults
    the wall clock.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self._stop_requested = False
        # Ambient telemetry, re-resolved at every `_run_loop` entry so a
        # hub installed via `obs.telemetry.use()` after construction
        # still sees engine spans; cached on the instance between entries
        # because the dispatch loop is the hottest pure-Python path and
        # the disabled case must cost one attribute check per event.
        self._telemetry = _telemetry.current()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Exact number of non-cancelled events still queued."""
        return len(self._queue)

    @property
    def stop_requested(self) -> bool:
        """Whether the last run was halted by :meth:`stop`.

        Stays true until the next run begins, so callers that advance
        time in slices can tell a drained/expired run from a stopped
        one between slices.
        """
        return self._stop_requested

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        A zero delay is allowed (fires after currently-executing event,
        before time advances); negative delays are an error.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past: delay={delay!r}")
        if math.isnan(delay) or math.isinf(delay):
            raise SimulationError(f"delay must be finite, got {delay!r}")
        return self._queue.push(self._now + delay, callback, args, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        return self._queue.push(time, callback, args, label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event returns."""
        self._stop_requested = True

    def _run_loop(
        self, end_time: Optional[float], max_events: Optional[int]
    ) -> None:
        """Shared event loop behind :meth:`run_until` / :meth:`run_until_idle`.

        Fires events in ``(time, seq)`` order until the queue drains,
        simulated time would pass ``end_time`` (when given), or
        :meth:`stop` is called from a callback.  ``max_events`` bounds
        the number of callbacks fired in this invocation.

        Dispatch is batched: all events sharing the head timestamp are
        popped together (:meth:`EventQueue.pop_batch`), so a dense
        deployment whose stations coalesce on a few tick grids pays one
        heap scan per tick instead of one per event.  Observable
        semantics are unchanged — events still fire one at a time in
        ``(time, seq)`` order, a stop/exhaustion mid-batch requeues the
        unfired remainder, and an event cancelled by an earlier event in
        its own batch does not fire.
        """
        if self._running:
            raise SimulationError("run loop is not reentrant")
        self._running = True
        self._stop_requested = False
        fired_this_run = 0
        # Satellite fix: re-resolve the ambient hub here, not only at
        # __init__ — a hub installed after the simulator was constructed
        # must see engine spans.
        telemetry = self._telemetry = _telemetry.current()
        try:
            while not self._stop_requested:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if end_time is not None and next_time > end_time:
                    break
                batch = self._queue.pop_batch()
                if not batch:
                    break
                self._now = next_time
                for index, event in enumerate(batch):
                    if self._stop_requested:
                        self._queue.requeue(batch[index:])
                        break
                    if event.cancelled:
                        # Cancelled after the pop by an earlier event in
                        # this batch; the single-pop loop would never
                        # have popped it.
                        continue
                    if telemetry.enabled:
                        # Span names bucket by the label's first dotted
                        # component ("ssb", "rach", ...) to bound
                        # cardinality; counters keep the full label.
                        label = event.label or "unlabeled"
                        started = wall_clock()
                        event.callback(*event.args)
                        telemetry.record_span(
                            "sim.event." + label.partition(".")[0],
                            started,
                            wall_clock(),
                        )
                        telemetry.incr("sim.events." + label)
                    else:
                        event.callback(*event.args)
                    self._events_fired += 1
                    fired_this_run += 1
                    if max_events is not None and fired_this_run >= max_events:
                        self._queue.requeue(batch[index + 1:])
                        horizon = (
                            f" before {end_time}s" if end_time is not None else ""
                        )
                        raise SimulationError(
                            f"exceeded max_events={max_events}{horizon}"
                        )
        finally:
            self._running = False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events in order until simulated time reaches ``end_time``.

        The clock is left exactly at ``end_time`` even when the queue
        drains early, so periodic post-run bookkeeping sees a consistent
        time base.  ``max_events`` guards against runaway self-scheduling
        loops in tests.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time!r} is before current time {self._now!r}"
            )
        self._run_loop(end_time, max_events)
        if not self._stop_requested:
            self._now = max(self._now, end_time)

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains (bounded by ``max_events``).

        Honors :meth:`stop` like :meth:`run_until`: a callback requesting
        a stop halts the loop with the remaining events still queued.
        """
        self._run_loop(None, max_events)


class PeriodicTask:
    """Self-rescheduling periodic callback with drift-free timing.

    Fires at ``start + k * period`` for k = 0, 1, 2, ... until
    :meth:`stop` is called.  Used for SSB burst schedules and measurement
    ticks.  Firing times are computed from the initial phase rather than
    accumulated, so long runs do not drift.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        start_delay: float = 0.0,
        label: str = "periodic",
    ) -> None:
        if period <= 0.0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._tick = 0
        self._origin = sim.now + start_delay
        self._stopped = False
        self._pending: Optional[Event] = sim.schedule(
            start_delay, self._fire, label=label
        )

    @property
    def period(self) -> float:
        return self._period

    @property
    def ticks_fired(self) -> int:
        return self._tick

    @property
    def next_fire_s(self) -> float:
        """Scheduled time of the next tick that has not fired yet.

        Remains meaningful after :meth:`stop` — it is the first tick the
        task *would* have fired — so a restarted schedule can resume
        without repeating a tick that already ran.
        """
        return self._origin + self._tick * self._period

    def _fire(self) -> None:
        if self._stopped:
            return
        self._pending = None
        # The in-flight tick counts as fired from here on: a stop()
        # issued inside the callback must leave next_fire_s pointing
        # past it, or a restarted schedule would repeat it.
        self._tick += 1
        self._callback()
        if self._stopped:
            return
        next_time = self._origin + self._tick * self._period
        # Guard against callbacks that consumed simulated time themselves
        # (they should not, but a clamped reschedule beats a crash).
        delay = max(0.0, next_time - self._sim.now)
        self._pending = self._sim.schedule(delay, self._fire, label=self._label)

    def stop(self) -> None:
        """Stop firing.  Safe to call from within the callback."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class BurstMember:
    """Handle for one payload registered on a :class:`BurstScheduler`.

    Mirrors the :class:`PeriodicTask` resume contract: after
    :meth:`stop`, :attr:`next_fire_s` is the first grid tick that has
    not delivered yet, so a restarted schedule can resume without
    repeating a tick.
    """

    __slots__ = ("payload", "label", "_grid", "_stopped")

    def __init__(self, payload: Any, label: str, grid: "_BurstGrid") -> None:
        self.payload = payload
        self.label = label
        self._grid = grid
        self._stopped = False

    @property
    def next_fire_s(self) -> float:
        """Scheduled time of the next tick that has not delivered yet."""
        return self._grid.origin + self._grid.tick * self._grid.period

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Withdraw this member from future ticks.  Safe mid-delivery."""
        if self._stopped:
            return
        self._stopped = True
        self._grid.on_member_stopped()


class _BurstGrid:
    """One ``(first_fire, period)`` tick grid shared by N members."""

    __slots__ = ("origin", "period", "members", "tick", "pending")

    def __init__(self, origin: float, period: float) -> None:
        self.origin = origin
        self.period = period
        self.members: List[BurstMember] = []
        self.tick = 0
        self.pending: Optional[Event] = None

    def live_members(self) -> List[BurstMember]:
        return [member for member in self.members if not member._stopped]

    def label(self) -> str:
        """Event label: the member's own label while the grid is
        single-member (observability continuity with the per-station
        ``PeriodicTask`` it replaces), an aggregate label once coalesced.
        """
        live = self.live_members()
        if len(live) == 1:
            return live[0].label
        prefix = live[0].label.partition(".")[0] if live else "burst"
        return f"{prefix}.x{len(live)}"

    def on_member_stopped(self) -> None:
        if self.pending is not None and not self.live_members():
            self.pending.cancel()
            self.pending = None


class BurstScheduler:
    """Coalesces periodic deliveries that share a tick grid.

    Members registered with the same ``(first_fire, period)`` key share
    one :class:`_BurstGrid`: a K-station deployment whose SSB phases
    fall into G distinct phase slots schedules G heap events per period
    instead of K, and each event hands the *whole* member group to the
    ``deliver`` callback, in registration order — the entry point for
    multi-station batched burst evaluation.

    Determinism contract (load-bearing; pinned by the scheduler
    equivalence tests):

    * A **single-member grid** is externally indistinguishable from the
      ``PeriodicTask`` it replaces: its event fires at the same times
      with the same label, and the tick-advance / deliver / re-arm
      sequence allocates event sequence numbers at the same execution
      positions, so runs are byte-identical to the legacy per-station
      scheduling for *any* workload.
    * A **multi-member grid** re-arms once per tick (after the whole
      group delivers) where the legacy path re-armed once per member
      (interleaved with deliveries).  The two orderings diverge only if
      some *other* event lands exactly on a shared grid tick.  Dense
      topologies built by this repo therefore place coalesced phases on
      non-integer-millisecond offsets, where the protocol layer — whose
      RACH/handover delays all live on an integer-millisecond lattice —
      provably cannot collide.
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[[List[Any]], None],
    ) -> None:
        self._sim = sim
        self._deliver = deliver
        self._grids: dict = {}

    @property
    def grid_count(self) -> int:
        """Number of distinct tick grids (heap events per period)."""
        return len(self._grids)

    def add(
        self,
        period_s: float,
        payload: Any,
        start_delay: float = 0.0,
        label: str = "burst",
    ) -> BurstMember:
        """Register a payload; coalesces with an existing grid on exact
        ``(origin, period)`` match, where ``origin = sim.now +
        start_delay`` — the same float expression ``PeriodicTask``
        evaluates, so single-member grids fire at bitwise-identical
        times."""
        if period_s <= 0.0:
            raise SimulationError(f"period must be positive, got {period_s!r}")
        if start_delay < 0.0:
            raise SimulationError(
                f"cannot schedule in the past: start_delay={start_delay!r}"
            )
        origin = self._sim.now + start_delay
        key = (origin, period_s)
        grid = self._grids.get(key)
        if grid is None:
            grid = _BurstGrid(origin, period_s)
            self._grids[key] = grid
        member = BurstMember(payload, label, grid)
        grid.members.append(member)
        if grid.pending is None and grid.tick == 0:
            # Arm on first registration; later same-key members ride the
            # already-armed event.  (A grid whose members all stopped
            # stays retired — re-registering on it would skip ticks.)
            grid.pending = self._sim.schedule(
                start_delay, self._fire, grid, label=grid.label()
            )
        return member

    def _fire(self, grid: _BurstGrid) -> None:
        grid.pending = None
        # The in-flight tick counts as delivered from here on, exactly
        # like PeriodicTask._fire: a stop() issued inside the delivery
        # callback must leave next_fire_s pointing past it.
        grid.tick += 1
        members = grid.live_members()
        if members:
            self._deliver([member.payload for member in members])
        members = grid.live_members()
        if not members:
            return
        next_time = grid.origin + grid.tick * grid.period
        # Same clamped-reschedule guard as PeriodicTask.
        delay = max(0.0, next_time - self._sim.now)
        grid.pending = self._sim.schedule(
            delay, self._fire, grid, label=grid.label()
        )

    def stop(self) -> None:
        """Stop every member and cancel all armed events."""
        for grid in self._grids.values():
            for member in grid.members:
                member._stopped = True
            if grid.pending is not None:
                grid.pending.cancel()
                grid.pending = None
