"""5G-NR-like discrete timing grid: SSB bursts and RACH occasions.

mm-wave initial access is paced by the synchronization-signal-block
(SSB) schedule: every ``ssb_period`` (20 ms default) the base station
transmits a burst in which it sweeps its transmit codebook, one SSB
dwell per beam.  A mobile holds **one receive beam per burst** (the
standard NR UE assumption) and must span its receive codebook across
bursts — this is why directional search is slow (up to 64 bursts *
20 ms = 1.28 s quoted in the paper's introduction) and why search under
mobility is failure-prone: the geometry changes while the scan walks
the codebook.

Random access occasions (RACH) recur on their own period; msg2 (random
access response) and msg4 (contention resolution) have windows and
processing delays that set the floor of handover completion time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class FrameConfig:
    """SSB sweep timing.

    Attributes
    ----------
    ssb_period_s:
        Burst repetition period (NR default 20 ms).
    ssb_dwell_s:
        Duration of one SSB dwell within the burst (one beam).
    max_ssb_per_burst:
        Cap on beams swept per burst (64 at FR2).
    """

    ssb_period_s: float = 0.020
    ssb_dwell_s: float = 125e-6
    max_ssb_per_burst: int = 64

    def __post_init__(self) -> None:
        if self.ssb_period_s <= 0.0:
            raise ValueError(f"ssb period must be positive, got {self.ssb_period_s!r}")
        if self.ssb_dwell_s <= 0.0:
            raise ValueError(f"ssb dwell must be positive, got {self.ssb_dwell_s!r}")
        if self.max_ssb_per_burst < 1:
            raise ValueError(
                f"max ssb per burst must be >= 1, got {self.max_ssb_per_burst!r}"
            )

    def burst_duration_s(self, n_beams: int) -> float:
        """Time span of one burst sweeping ``n_beams`` beams."""
        return self.ssb_dwell_s * min(n_beams, self.max_ssb_per_burst)

    def worst_case_search_s(self, n_rx_beams: int) -> float:
        """Upper bound on a blind exhaustive search with ``n_rx_beams``.

        One receive beam per burst, so a full receive sweep costs
        ``n_rx_beams`` bursts.  With 64 receive beams this reproduces the
        1.28 s figure from the paper's introduction.
        """
        if n_rx_beams < 1:
            raise ValueError(f"need >= 1 rx beam, got {n_rx_beams!r}")
        return n_rx_beams * self.ssb_period_s


@dataclass(frozen=True)
class RachConfig:
    """Random-access timing.

    The four-step RACH: preamble (msg1) on a RACH occasion, random
    access response (msg2) within a response window, scheduled uplink
    msg3, contention resolution (msg4).
    """

    occasion_period_s: float = 0.020
    #: Offset of the RACH occasion within its period (keeps RACH dwells
    #: from colliding with the SSB burst at the period start).
    occasion_offset_s: float = 0.010
    response_window_s: float = 0.010
    #: Base-station processing delay before msg2 is sent.
    response_delay_s: float = 0.003
    msg3_delay_s: float = 0.002
    msg4_delay_s: float = 0.003
    max_attempts: int = 8
    #: Backoff applied between failed attempts, in occasions.
    backoff_occasions: int = 1

    def __post_init__(self) -> None:
        if self.occasion_period_s <= 0.0:
            raise ValueError(
                f"occasion period must be positive, got {self.occasion_period_s!r}"
            )
        if not 0.0 <= self.occasion_offset_s < self.occasion_period_s:
            raise ValueError(
                "occasion offset must lie within the period, got "
                f"{self.occasion_offset_s!r}"
            )
        if self.response_delay_s > self.response_window_s:
            raise ValueError("response delay cannot exceed the response window")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    def next_occasion(self, now_s: float) -> float:
        """First RACH occasion at or after ``now_s``."""
        k = math.ceil((now_s - self.occasion_offset_s) / self.occasion_period_s - 1e-12)
        return max(0, k) * self.occasion_period_s + self.occasion_offset_s

    def minimum_completion_s(self) -> float:
        """Floor on msg1->msg4 latency for a single successful attempt."""
        return self.response_delay_s + self.msg3_delay_s + self.msg4_delay_s


class SsbSchedule:
    """Concrete SSB timing for one base station sweeping ``n_beams``."""

    def __init__(self, config: FrameConfig, n_beams: int, phase_s: float = 0.0) -> None:
        if n_beams < 1:
            raise ValueError(f"need >= 1 beam, got {n_beams!r}")
        if n_beams > config.max_ssb_per_burst:
            raise ValueError(
                f"{n_beams} beams exceeds max {config.max_ssb_per_burst} per burst"
            )
        if not 0.0 <= phase_s < config.ssb_period_s:
            raise ValueError(
                f"phase must be within one period, got {phase_s!r}"
            )
        self.config = config
        self.n_beams = n_beams
        #: Relative start offset of this cell's bursts; neighboring cells
        #: are not burst-synchronized in general, which is part of why
        #: the mobile cannot predict the neighbor's schedule.
        self.phase_s = phase_s

    def burst_start(self, burst_index: int) -> float:
        """Start time of burst ``burst_index`` (0-based)."""
        if burst_index < 0:
            raise ValueError(f"burst index must be >= 0, got {burst_index!r}")
        return self.phase_s + burst_index * self.config.ssb_period_s

    def burst_index_at(self, time_s: float) -> int:
        """Index of the last burst starting at or before ``time_s``.

        Returns -1 before the first burst.
        """
        return int(math.floor((time_s - self.phase_s) / self.config.ssb_period_s + 1e-12))

    def next_burst_start(self, now_s: float) -> float:
        """Start time of the first burst at or after ``now_s``."""
        index = math.ceil((now_s - self.phase_s) / self.config.ssb_period_s - 1e-12)
        return self.burst_start(max(0, index))

    def ssb_time(self, burst_index: int, beam_index: int) -> float:
        """Time of the dwell carrying ``beam_index`` within a burst."""
        if not 0 <= beam_index < self.n_beams:
            raise ValueError(
                f"beam index {beam_index!r} out of range for {self.n_beams} beams"
            )
        return self.burst_start(burst_index) + beam_index * self.config.ssb_dwell_s

    def beams_in_burst(self) -> List[int]:
        """Transmit-beam sweep order within every burst."""
        return list(range(self.n_beams))

    def burst_duration_s(self) -> float:
        """Span of one full burst."""
        return self.config.burst_duration_s(self.n_beams)
