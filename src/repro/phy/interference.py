"""Co-channel interference and SINR.

The cell-edge deployment staggers SSB burst phases so the one-RF-chain
mobile can visit every cell — a choice real deployments cannot always
make.  When neighboring cells' bursts *overlap*, the mobile's dwell
sees the serving SSB plus the neighbor's sweep as co-channel
interference, and detection is governed by SINR rather than SNR.  This
module supplies the aggregation math and a dwell-level interference
evaluator; the EXT-SINR experiment quantifies the cost of burst
alignment.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.geometry.pose import Pose
from repro.util.units import db_to_linear, linear_to_db


def aggregate_power_dbm(levels_dbm: Iterable[float]) -> float:
    """Sum of powers given in dBm (linear-domain addition).

    Raises :class:`ValueError` on an empty collection — "the sum of no
    interferers" should be handled by the caller (it is -inf dBm, which
    has no float-safe representation here).
    """
    total_mw = 0.0
    count = 0
    for level in levels_dbm:
        total_mw += db_to_linear(level)  # dBm -> mW
        count += 1
    if count == 0:
        raise ValueError("aggregate of empty power collection")
    return linear_to_db(total_mw)


def sinr_db(
    signal_dbm: float,
    interference_dbm: Sequence[float],
    noise_dbm: float,
) -> float:
    """Signal-to-interference-plus-noise ratio in dB."""
    denominator_mw = db_to_linear(noise_dbm)
    for level in interference_dbm:
        denominator_mw += db_to_linear(level)
    return signal_dbm - linear_to_db(denominator_mw)


class InterferenceField:
    """Evaluates aggregate interference at a mobile from active cells.

    Each interferer is a (station, tx_beam) pair assumed to be
    transmitting during the victim dwell.  The field computes the mean
    received power of each through the shared path-loss model (the
    interference-limited regime is dominated by large-scale terms, so
    per-interferer small-scale state is deliberately omitted — this
    keeps the evaluator stateless and conservative).
    """

    def __init__(self, channel) -> None:
        self._channel = channel

    def interference_levels_dbm(
        self,
        interferers: Sequence[Tuple[object, int]],
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
    ) -> List[float]:
        """Mean received power of each interferer on the victim rx beam."""
        levels = []
        for station, tx_beam in interferers:
            bearing_to_mobile = station.pose.bearing_to(mobile_pose.position)
            bearing_to_station = mobile_pose.bearing_to(station.pose.position)
            levels.append(
                self._channel.mean_rss_dbm(
                    station.pose,
                    mobile_pose,
                    station.tx_gain_dbi(tx_beam, bearing_to_mobile),
                    rx_gain_fn(rx_beam, bearing_to_station),
                    station.tx_power_dbm,
                )
            )
        return levels

    def dwell_sinr_db(
        self,
        signal_dbm: float,
        interferers: Sequence[Tuple[object, int]],
        mobile_pose: Pose,
        rx_gain_fn,
        rx_beam: int,
        noise_dbm: float,
    ) -> float:
        """SINR of a dwell whose desired signal arrived at ``signal_dbm``."""
        levels = self.interference_levels_dbm(
            interferers, mobile_pose, rx_gain_fn, rx_beam
        )
        return sinr_db(signal_dbm, levels, noise_dbm)
