"""Link budget: RSS to SNR, detection probability, packet success, rate.

The protocol's observable is RSS; whether a dwell actually *detects* the
synchronization signal (and whether an uplink preamble/control message
gets through) depends on SNR against the receiver noise floor.  This
module converts between the two and supplies the success models the
random-access procedure and the serving-cell uplink use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import db_to_linear, thermal_noise_dbm


@dataclass(frozen=True)
class LinkBudget:
    """Receiver-side link parameters.

    Defaults follow the NI 60 GHz SDR class of hardware: ~1.76 GHz
    channel (802.11ad channelization, also used by the testbed's OFDM
    PHY), ~8 dB noise figure.
    """

    bandwidth_hz: float = 1.76e9
    noise_figure_db: float = 8.0
    #: Minimum SNR at which the sync-signal correlator reliably detects
    #: an SSB dwell.  Below this the search dwell reports "nothing".
    detection_snr_db: float = 5.0
    #: SNR at which control/data packets decode with ~50% probability;
    #: the logistic success curve is centered here.
    decode_snr_db: float = 5.0
    #: Slope (dB per logistic unit) of the packet-success curve.  Small
    #: values make a sharp cliff, matching strong coding.
    decode_slope_db: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz!r}")
        if self.decode_slope_db <= 0.0:
            raise ValueError(f"slope must be positive, got {self.decode_slope_db!r}")
        # Cached non-field attribute (the dataclass is frozen): the
        # noise floor is consulted per dwell on the measurement hot
        # path, and the log10 behind it never changes.
        object.__setattr__(
            self,
            "_noise_floor_dbm",
            thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db),
        )

    @property
    def noise_floor_dbm(self) -> float:
        """Total integrated noise power at the detector input."""
        return self._noise_floor_dbm

    def snr_db(self, rss_dbm: float) -> float:
        """SNR of a received signal at ``rss_dbm``."""
        return rss_dbm - self.noise_floor_dbm

    def rss_for_snr(self, snr_db: float) -> float:
        """RSS needed to achieve a target SNR (inverse of :meth:`snr_db`)."""
        return snr_db + self.noise_floor_dbm

    def detects(self, rss_dbm: float) -> bool:
        """Hard detection decision for a search dwell."""
        return self.snr_db(rss_dbm) >= self.detection_snr_db

    def packet_success_probability(self, rss_dbm: float) -> float:
        """Probability a control packet at ``rss_dbm`` decodes.

        Logistic in SNR around :attr:`decode_snr_db`; saturates to 0/1
        beyond ~ +/-6 sigma to keep RNG consumption deterministic in the
        regimes that matter.
        """
        x = (self.snr_db(rss_dbm) - self.decode_snr_db) / self.decode_slope_db
        if x > 36.0:
            return 1.0
        if x < -36.0:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    def shannon_rate_bps(self, rss_dbm: float) -> float:
        """Shannon capacity of the link at the given RSS.

        Used by the throughput/interruption accounting in the handover
        comparison benches, not by the protocol itself.
        """
        snr_linear = db_to_linear(self.snr_db(rss_dbm))
        return self.bandwidth_hz * math.log2(1.0 + snr_linear)


#: A reasonable default shared by base stations and mobiles.
DEFAULT_LINK_BUDGET = LinkBudget()
