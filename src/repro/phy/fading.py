"""Small-scale fading for directional mm-wave links.

Beamformed 60 GHz LoS links are strongly Rician: the resolvable LoS ray
dominates and the residual multipath inside the beam contributes a small
diffuse component.  We model the per-dwell envelope power as a Rician
draw with configurable K-factor; NLoS (fully blocked) dwells degrade to
Rayleigh (K = 0).

Draws are i.i.d. per dwell: at 60 GHz even pedestrian motion decorrelates
small-scale fading within one SSB period (coherence time ~lambda/(2v)
~= 1.8 ms at 1.4 m/s), so consecutive 20 ms-spaced measurements see
independent fades.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.units import linear_to_db


class RicianFading:
    """Per-sample Rician envelope-power fading in dB about the mean.

    Parameters
    ----------
    k_factor_db:
        Ratio of dominant-ray power to diffuse power, dB.  Beamformed
        60 GHz LoS measurements report 8-15 dB; ``k_factor_db=None``
        disables fading entirely (deterministic channel for unit tests).
    """

    def __init__(self, k_factor_db: float, rng: np.random.Generator) -> None:
        self.k_factor_db = k_factor_db
        self._rng = rng
        k_linear = 10.0 ** (k_factor_db / 10.0)
        self._k = k_linear
        # Mean power of the Rician envelope is (K+1) * sigma^2 * ... ;
        # we normalize so E[power] = 1, i.e. 0 dB mean.
        self._los_amplitude = math.sqrt(self._k / (self._k + 1.0))
        self._diffuse_sigma = math.sqrt(1.0 / (2.0 * (self._k + 1.0)))

    def sample_db(self) -> float:
        """One envelope-power fade in dB (0 dB mean in the linear domain)."""
        in_phase = self._los_amplitude + self._diffuse_sigma * float(
            self._rng.normal()
        )
        quadrature = self._diffuse_sigma * float(self._rng.normal())
        power = in_phase * in_phase + quadrature * quadrature
        # power is almost surely positive; clamp defensively against a
        # pathological double-underflow.
        return linear_to_db(max(power, 1e-12))

    def sample_db_array(self, n: int) -> np.ndarray:
        """``n`` fades drawn in the same stream order as ``n`` scalar calls.

        One batched draw of ``2n`` normals, de-interleaved into I/Q
        exactly as the per-call pairs of :meth:`sample_db` would consume
        them, so the generator state after this call is identical to the
        state after ``n`` scalar calls and each fade is bit-identical to
        its scalar counterpart.  The batch burst-evaluation path
        (:meth:`repro.phy.channel.Channel.burst_rss_dbm`) relies on both
        properties.
        """
        if n < 0:
            raise ValueError(f"need a non-negative draw count, got {n!r}")
        draws = self._rng.normal(size=2 * n)
        in_phase = self._los_amplitude + self._diffuse_sigma * draws[0::2]
        quadrature = self._diffuse_sigma * draws[1::2]
        power = in_phase * in_phase + quadrature * quadrature
        # math.log10 per element (inlined linear_to_db): np.log10
        # differs from the scalar path by 1 ULP on some inputs, which
        # would break the byte-identical trace contract.
        log10 = math.log10
        return np.array(
            [10.0 * log10(p if p > 1e-12 else 1e-12) for p in power.tolist()],
            dtype=float,
        )


class NoFading:
    """Deterministic stand-in with the same interface (0 dB always).

    Draws nothing, so scalar and batch calls are trivially
    stream-equivalent.
    """

    k_factor_db = math.inf

    def sample_db(self) -> float:
        return 0.0

    def sample_db_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"need a non-negative draw count, got {n!r}")
        return np.zeros(n, dtype=float)
