"""Small-scale fading for directional mm-wave links.

Beamformed 60 GHz LoS links are strongly Rician: the resolvable LoS ray
dominates and the residual multipath inside the beam contributes a small
diffuse component.  We model the per-dwell envelope power as a Rician
draw with configurable K-factor; NLoS (fully blocked) dwells degrade to
Rayleigh (K = 0).

Draws are i.i.d. per dwell: at 60 GHz even pedestrian motion decorrelates
small-scale fading within one SSB period (coherence time ~lambda/(2v)
~= 1.8 ms at 1.4 m/s), so consecutive 20 ms-spaced measurements see
independent fades.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.units import linear_to_db


class RicianFading:
    """Per-sample Rician envelope-power fading in dB about the mean.

    Parameters
    ----------
    k_factor_db:
        Ratio of dominant-ray power to diffuse power, dB.  Beamformed
        60 GHz LoS measurements report 8-15 dB; ``k_factor_db=None``
        disables fading entirely (deterministic channel for unit tests).
    """

    def __init__(self, k_factor_db: float, rng: np.random.Generator) -> None:
        self.k_factor_db = k_factor_db
        self._rng = rng
        k_linear = 10.0 ** (k_factor_db / 10.0)
        self._k = k_linear
        # Mean power of the Rician envelope is (K+1) * sigma^2 * ... ;
        # we normalize so E[power] = 1, i.e. 0 dB mean.
        self._los_amplitude = math.sqrt(self._k / (self._k + 1.0))
        self._diffuse_sigma = math.sqrt(1.0 / (2.0 * (self._k + 1.0)))

    def sample_db(self) -> float:
        """One envelope-power fade in dB (0 dB mean in the linear domain)."""
        in_phase = self._los_amplitude + self._diffuse_sigma * float(
            self._rng.normal()
        )
        quadrature = self._diffuse_sigma * float(self._rng.normal())
        power = in_phase * in_phase + quadrature * quadrature
        # power is almost surely positive; clamp defensively against a
        # pathological double-underflow.
        return linear_to_db(max(power, 1e-12))

    def sample_db_array(self, n: int) -> np.ndarray:
        """Vectorized draws for workload generators."""
        in_phase = self._los_amplitude + self._diffuse_sigma * self._rng.normal(
            size=n
        )
        quadrature = self._diffuse_sigma * self._rng.normal(size=n)
        power = np.maximum(in_phase * in_phase + quadrature * quadrature, 1e-12)
        return 10.0 * np.log10(power)


class NoFading:
    """Deterministic stand-in with the same interface (0 dB always)."""

    k_factor_db = math.inf

    def sample_db(self) -> float:
        return 0.0

    def sample_db_array(self, n: int) -> np.ndarray:
        return np.zeros(n)
