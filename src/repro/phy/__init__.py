"""Physical-layer substrate: antennas, codebooks, channel, link budget, framing.

This package replaces the paper's 60 GHz NI mmWave SDR testbed with a
statistical link-level model.  The protocol layer above consumes only
what the real hardware would expose in-band: an RSS value per
(transmit-beam, receive-beam) dwell, plus the discrete timing grid on
which such dwells can occur.
"""

from repro.phy.antenna import (
    AntennaPattern,
    GaussianBeamPattern,
    OmniPattern,
    UlaPattern,
    peak_gain_dbi_for_beamwidth,
)
from repro.phy.channel import Channel, ChannelConfig, LinkState
from repro.phy.codebook import Beam, Codebook
from repro.phy.frame import FrameConfig, RachConfig, SsbSchedule
from repro.phy.link import LinkBudget

__all__ = [
    "AntennaPattern",
    "Beam",
    "Channel",
    "ChannelConfig",
    "Codebook",
    "FrameConfig",
    "GaussianBeamPattern",
    "LinkBudget",
    "LinkState",
    "OmniPattern",
    "RachConfig",
    "SsbSchedule",
    "UlaPattern",
    "peak_gain_dbi_for_beamwidth",
]
