"""Log-normal shadowing with temporal correlation.

Shadow fading varies as the mobile moves through the local scattering
environment.  We model it per-link as a Gauss-Markov (Ornstein-Uhlenbeck)
process sampled on demand: correlation decays exponentially with the
*distance traveled* between samples (the classical Gudmundson model),
with an equivalent time constant used for rotation-only motion.

Sampling on demand keeps the channel lazy — only (time, position) pairs
the protocol actually measures are ever drawn — while preserving the
correct correlation structure along the sampled sequence.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class ShadowingProcess:
    """Per-link correlated log-normal shadowing.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB.  60 GHz LoS campaign
        fits report ~2-3 dB.
    decorrelation_m:
        Distance over which autocorrelation falls to 1/e (Gudmundson).
        Short at mm-wave: 1-2 m.
    rng:
        Dedicated random stream for this link.
    """

    def __init__(
        self,
        sigma_db: float,
        decorrelation_m: float,
        rng: np.random.Generator,
    ) -> None:
        if sigma_db < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma_db!r}")
        if decorrelation_m <= 0.0:
            raise ValueError(
                f"decorrelation distance must be positive, got {decorrelation_m!r}"
            )
        self.sigma_db = sigma_db
        self.decorrelation_m = decorrelation_m
        self._rng = rng
        self._last_value_db: Optional[float] = None
        self._last_distance: Optional[float] = None

    def sample_db(self, traveled_m: float) -> float:
        """Shadowing value (dB) at cumulative traveled distance ``traveled_m``.

        ``traveled_m`` is the arc length of the mobile's trajectory, which
        must be non-decreasing across calls (the simulator samples time
        forward only).
        """
        if self.sigma_db == 0.0:
            return 0.0
        if self._last_value_db is None:
            self._last_value_db = float(self._rng.normal(0.0, self.sigma_db))
            self._last_distance = traveled_m
            return self._last_value_db
        delta = traveled_m - self._last_distance
        if delta < -1e-9:
            raise ValueError(
                f"traveled distance must be non-decreasing "
                f"({traveled_m!r} < {self._last_distance!r})"
            )
        delta = max(0.0, delta)
        rho = math.exp(-delta / self.decorrelation_m)
        innovation_sigma = self.sigma_db * math.sqrt(max(0.0, 1.0 - rho * rho))
        self._last_value_db = rho * self._last_value_db + float(
            self._rng.normal(0.0, innovation_sigma)
        )
        self._last_distance = traveled_m
        return self._last_value_db

    def sample_repeat_db(self, traveled_m: float, n: int) -> float:
        """The shadowing value at ``traveled_m``, consuming ``n`` calls' draws.

        Within an SSB burst every dwell shares one rx pose, so ``n``
        scalar :meth:`sample_db` calls at the same ``traveled_m`` all
        return the same value — but calls 2..n each still consume one
        zero-innovation normal (``rho`` is exactly 1, the innovation
        sigma exactly 0).  This batch equivalent returns the shared
        value while consuming the identical number of draws, keeping the
        generator state bit-compatible with the scalar path.
        """
        if n < 1:
            raise ValueError(f"need at least one sample, got {n!r}")
        value = self.sample_db(traveled_m)
        if self.sigma_db != 0.0 and n > 1:
            # Burn the zero-innovation draws the scalar loop would make.
            self._rng.standard_normal(n - 1)
        return value

    def reset(self) -> None:
        """Forget the process state (a fresh draw seeds the next sample)."""
        self._last_value_db = None
        self._last_distance = None
