"""Large-scale path-loss models for the 60 GHz band.

The close-in (CI) free-space-reference model is the standard mm-wave
measurement-campaign fit::

    PL(d) = FSPL(d0=1m, f) + 10 * n * log10(d / 1m)

with path-loss exponent ``n ~= 2.0-2.1`` for LoS and ``~3.2`` NLoS at
60 GHz.  The paper's experiments are line-of-sight at ~10 m, with NLoS
excursions caused by blockage, which we model separately
(:mod:`repro.phy.blockage`) as a time-varying excess loss.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0


def fspl_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss (Friis), dB.

    >>> round(fspl_db(1.0, 60e9), 1)
    68.0
    """
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m!r}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


class PathLossModel(ABC):
    """Distance-dependent mean path loss."""

    @abstractmethod
    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss in dB at ``distance_m`` meters."""

    def max_distance_for_loss(self, loss_db: float) -> Optional[float]:
        """Largest distance whose mean loss is **at most** ``loss_db``.

        The inverse used by the spatial cell index to turn a link-budget
        margin into a guard radius: every station farther than this
        provably attenuates below the budget.  Must be conservative —
        ``path_loss_db(d) >= loss_db`` for every ``d`` beyond the
        returned distance.  The default returns ``None`` (inverse
        unknown), which disables spatial pruning for deployments using
        the model; monotone models should override.
        """
        return None


class FreeSpacePathLoss(PathLossModel):
    """Pure Friis free-space loss at a fixed carrier frequency."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
        self.frequency_hz = frequency_hz

    def path_loss_db(self, distance_m: float) -> float:
        return fspl_db(distance_m, self.frequency_hz)

    def max_distance_for_loss(self, loss_db: float) -> Optional[float]:
        # Friis is CI with exponent 2 and a 1 m intercept.
        intercept = fspl_db(1.0, self.frequency_hz)
        return 10.0 ** ((loss_db - intercept) / 20.0)


class CloseInPathLoss(PathLossModel):
    """CI model: 1 m free-space intercept plus a fitted distance exponent.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency (60 GHz for the paper's testbed).
    exponent:
        Path-loss exponent ``n``.  2.0 = free space; 60 GHz LoS campaigns
        report 2.0-2.1, NLoS ~3.2.
    min_distance_m:
        Distances below this are clamped; the CI model is not defined
        inside the reference distance and nodes never get that close in
        the paper's scenarios.
    """

    def __init__(
        self,
        frequency_hz: float = 60.0e9,
        exponent: float = 2.1,
        min_distance_m: float = 1.0,
    ) -> None:
        if exponent <= 0.0:
            raise ValueError(f"exponent must be positive, got {exponent!r}")
        if min_distance_m <= 0.0:
            raise ValueError(f"min_distance must be positive, got {min_distance_m!r}")
        self.frequency_hz = frequency_hz
        self.exponent = exponent
        self.min_distance_m = min_distance_m
        self._intercept_db = fspl_db(1.0, frequency_hz)

    @property
    def intercept_db(self) -> float:
        """Free-space loss at the 1 m reference distance."""
        return self._intercept_db

    def path_loss_db(self, distance_m: float) -> float:
        distance = max(distance_m, self.min_distance_m)
        return self._intercept_db + 10.0 * self.exponent * math.log10(distance)

    def max_distance_for_loss(self, loss_db: float) -> Optional[float]:
        # Loss is monotone non-decreasing in distance (flat inside the
        # clamp), so the exact inverse of the log-distance line is a
        # valid conservative bound; below-intercept budgets collapse to
        # the clamp distance.
        distance = 10.0 ** ((loss_db - self._intercept_db) / (10.0 * self.exponent))
        return max(distance, self.min_distance_m)


class DualSlopePathLoss(PathLossModel):
    """Two-exponent model with a breakpoint distance.

    Included for the ablation benches: beyond the breakpoint (e.g. the
    edge of the LoS corridor) loss steepens, which sharpens the cell-edge
    RSS gradient and stresses the handover trigger.
    """

    def __init__(
        self,
        frequency_hz: float = 60.0e9,
        near_exponent: float = 2.0,
        far_exponent: float = 3.5,
        breakpoint_m: float = 15.0,
    ) -> None:
        if breakpoint_m <= 1.0:
            raise ValueError(f"breakpoint must exceed 1 m, got {breakpoint_m!r}")
        self._near = CloseInPathLoss(frequency_hz, near_exponent)
        self.far_exponent = far_exponent
        self.breakpoint_m = breakpoint_m
        self._loss_at_break = self._near.path_loss_db(breakpoint_m)

    def path_loss_db(self, distance_m: float) -> float:
        if distance_m <= self.breakpoint_m:
            return self._near.path_loss_db(distance_m)
        return self._loss_at_break + 10.0 * self.far_exponent * math.log10(
            distance_m / self.breakpoint_m
        )

    def max_distance_for_loss(self, loss_db: float) -> Optional[float]:
        if loss_db <= self._loss_at_break:
            near = self._near.max_distance_for_loss(loss_db)
            return min(near, self.breakpoint_m) if near is not None else None
        return self.breakpoint_m * 10.0 ** (
            (loss_db - self._loss_at_break) / (10.0 * self.far_exponent)
        )
