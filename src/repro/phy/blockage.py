"""Human-body blockage as a per-link renewal process.

At 60 GHz a human body crossing the LoS attenuates the link by 15-30 dB
for a few hundred milliseconds — the dominant cause of the sudden >10 dB
drops that drive Silent Tracker's beam-loss edge (D in Fig. 2b).

Model: alternating clear/blocked intervals.  Clear-interval lengths are
exponential (Poisson blocker arrivals); blocked-interval lengths are
log-normal (measured pedestrian crossing-time fits); attenuation depth
per event is normal around a configurable mean.  Events are materialized
lazily as the query time advances, so unmeasured epochs cost nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class BlockageEvent:
    """One blockage interval on a link."""

    start_s: float
    end_s: float
    attenuation_db: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class BlockageConfig:
    """Parameters of the blockage process.

    Attributes
    ----------
    rate_per_s:
        Mean blocker arrival rate (events per second of clear time).
        0 disables blockage.
    mean_duration_s:
        Mean blocked duration.  Pedestrian crossings: 0.2-0.6 s.
    duration_sigma:
        Log-domain sigma of the log-normal duration.
    mean_attenuation_db / attenuation_sigma_db:
        Depth of the blockage shadow.
    """

    rate_per_s: float = 0.2
    mean_duration_s: float = 0.35
    duration_sigma: float = 0.4
    mean_attenuation_db: float = 20.0
    attenuation_sigma_db: float = 4.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0.0:
            raise ValueError(f"rate must be non-negative, got {self.rate_per_s!r}")
        if self.mean_duration_s <= 0.0:
            raise ValueError(
                f"mean duration must be positive, got {self.mean_duration_s!r}"
            )
        if self.mean_attenuation_db < 0.0:
            raise ValueError(
                f"attenuation must be non-negative, got {self.mean_attenuation_db!r}"
            )

    @staticmethod
    def disabled() -> "BlockageConfig":
        """A config that never blocks (deterministic tests)."""
        return BlockageConfig(rate_per_s=0.0)


class BlockageProcess:
    """Lazy per-link blockage timeline.

    Queries must use non-decreasing times (the simulator only moves
    forward); this allows events before the horizon to be finalized and
    old events to be pruned.
    """

    def __init__(self, config: BlockageConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._events: List[BlockageEvent] = []
        self._horizon_s = 0.0
        self._last_query_s = -math.inf
        # Mean of ln(duration) such that E[duration] = mean_duration_s for
        # a log-normal with the configured sigma.
        self._log_duration_mu = (
            math.log(config.mean_duration_s) - 0.5 * config.duration_sigma**2
        )

    def _extend_to(self, time_s: float) -> None:
        """Materialize events up to ``time_s``."""
        if self.config.rate_per_s <= 0.0:
            self._horizon_s = time_s
            return
        while self._horizon_s <= time_s:
            clear_gap = float(self._rng.exponential(1.0 / self.config.rate_per_s))
            start = self._horizon_s + clear_gap
            duration = float(
                self._rng.lognormal(self._log_duration_mu, self.config.duration_sigma)
            )
            attenuation = max(
                0.0,
                float(
                    self._rng.normal(
                        self.config.mean_attenuation_db,
                        self.config.attenuation_sigma_db,
                    )
                ),
            )
            self._events.append(BlockageEvent(start, start + duration, attenuation))
            self._horizon_s = start + duration

    def attenuation_db(self, time_s: float) -> float:
        """Total blockage attenuation on the link at ``time_s``.

        Overlap cannot occur (the renewal construction serializes
        events), so at most one event contributes.
        """
        if time_s < self._last_query_s - 1e-9:
            raise ValueError(
                f"blockage queries must be time-ordered "
                f"({time_s!r} < {self._last_query_s!r})"
            )
        self._last_query_s = max(self._last_query_s, time_s)
        self._extend_to(time_s)
        # Prune events that ended long before the query point.
        while len(self._events) > 8 and self._events[0].end_s < time_s - 10.0:
            self._events.pop(0)
        for event in self._events:
            if event.active_at(time_s):
                return event.attenuation_db
        return 0.0

    def is_blocked(self, time_s: float) -> bool:
        """Whether any blocker is active at ``time_s``."""
        return self.attenuation_db(time_s) > 0.0

    @property
    def events_generated(self) -> int:
        """Number of events materialized so far (diagnostic)."""
        return len(self._events)
