"""Composite per-link channel: path loss + shadowing + fading + blockage.

The channel answers one question for the layers above: *given transmit
power and the two beam gains at time t, what RSS does a dwell observe?*
All statistical state (shadowing trajectory, blockage timeline, fading
stream) is kept per link and derived from named RNG streams, so any two
runs with the same master seed produce identical RSS traces.

Two evaluation paths are offered with one determinism contract:

* :meth:`Channel.rss_dbm` — one dwell at a time (the scalar reference).
* :meth:`Channel.burst_rss_dbm` — every dwell of one SSB burst in a
  single vectorized pass.  Geometry, path loss, shadowing and blockage
  are evaluated once per burst (all dwells share one timestamp and
  pose); each dwell still draws its own small-scale fade.

The batch path consumes exactly the RNG draws the equivalent scalar
loop would (n shadowing normals, the blockage renewal draws needed to
pass the burst timestamp, 2n interleaved fading normals) and produces
bit-identical RSS values, so scalar- and batch-evaluated runs yield
byte-identical artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.geometry.pose import Pose
from repro.phy.blockage import BlockageConfig, BlockageProcess
from repro.phy.fading import NoFading, RicianFading
from repro.phy.pathloss import CloseInPathLoss, PathLossModel
from repro.phy.shadowing import ShadowingProcess
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ChannelConfig:
    """All channel-model parameters with 60 GHz LoS defaults.

    The defaults are calibrated to published 60 GHz measurement
    campaigns and to the paper's setting (cell edge ~10 m, LoS with
    occasional body blockage); see DESIGN.md for the substitution
    rationale.
    """

    frequency_hz: float = 60.0e9
    pathloss_exponent: float = 2.1
    shadowing_sigma_db: float = 2.5
    shadowing_decorrelation_m: float = 1.5
    rician_k_db: Optional[float] = 10.0
    blockage: BlockageConfig = field(default_factory=BlockageConfig)
    #: Effective lever arm converting heading change to shadowing
    #: decorrelation distance (device rotation re-randomizes the local
    #: multipath about this much per radian).
    rotation_lever_arm_m: float = 0.15

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz!r}")
        if self.shadowing_sigma_db < 0.0:
            raise ValueError(
                f"shadowing sigma must be non-negative, got {self.shadowing_sigma_db!r}"
            )

    @staticmethod
    def deterministic() -> "ChannelConfig":
        """No randomness: pure path loss.  Used by unit tests."""
        return ChannelConfig(
            shadowing_sigma_db=0.0,
            rician_k_db=None,
            blockage=BlockageConfig.disabled(),
        )


class LinkState:
    """Mutable per-link statistical state."""

    def __init__(
        self,
        link_id: str,
        config: ChannelConfig,
        rng_registry: RngRegistry,
    ) -> None:
        self.link_id = link_id
        self.shadowing = ShadowingProcess(
            config.shadowing_sigma_db,
            config.shadowing_decorrelation_m,
            rng_registry.stream(f"shadowing/{link_id}"),
        )
        self.blockage = BlockageProcess(
            config.blockage, rng_registry.stream(f"blockage/{link_id}")
        )
        if config.rician_k_db is None:
            self.fading = NoFading()
        else:
            self.fading = RicianFading(
                config.rician_k_db, rng_registry.stream(f"fading/{link_id}")
            )
        self._traveled_m = 0.0
        self._last_rx_pose: Optional[Pose] = None
        self._rotation_lever_arm = config.rotation_lever_arm_m

    def traveled_m(self, rx_pose: Pose) -> float:
        """Update and return cumulative motion distance for shadowing.

        Translation contributes its Euclidean step; rotation contributes
        ``lever_arm * |delta_heading|`` so device rotation also
        decorrelates the shadowing process (the handset aperture moves
        through the local multipath field).
        """
        if self._last_rx_pose is not None:
            step = rx_pose.position.distance_to(self._last_rx_pose.position)
            turn = abs(
                math.remainder(rx_pose.heading - self._last_rx_pose.heading, math.tau)
            )
            self._traveled_m += step + self._rotation_lever_arm * turn
        self._last_rx_pose = rx_pose
        return self._traveled_m


class Channel:
    """The composite channel shared by every link in a deployment.

    One instance serves all (base-station, mobile) pairs; per-link state
    is created lazily keyed by ``link_id``.
    """

    def __init__(
        self,
        config: ChannelConfig,
        rng_registry: RngRegistry,
        pathloss_model: Optional[PathLossModel] = None,
    ) -> None:
        self.config = config
        self._rng_registry = rng_registry
        self.pathloss = pathloss_model or CloseInPathLoss(
            config.frequency_hz, config.pathloss_exponent
        )
        self._links: Dict[str, LinkState] = {}

    def link_state(self, link_id: str) -> LinkState:
        """Per-link state, created on first use."""
        state = self._links.get(link_id)
        if state is None:
            state = LinkState(link_id, self.config, self._rng_registry)
            self._links[link_id] = state
        return state

    def rss_dbm(
        self,
        link_id: str,
        time_s: float,
        tx_pose: Pose,
        rx_pose: Pose,
        tx_gain_dbi: float,
        rx_gain_dbi: float,
        tx_power_dbm: float,
        include_fading: bool = True,
    ) -> float:
        """Received signal strength for one dwell.

        ``RSS = Ptx + Gtx + Grx - PL(d) - shadowing - blockage + fading``.
        """
        state = self.link_state(link_id)
        distance = tx_pose.position.distance_to(rx_pose.position)
        loss_db = self.pathloss.path_loss_db(distance)
        shadowing_db = state.shadowing.sample_db(state.traveled_m(rx_pose))
        blockage_db = state.blockage.attenuation_db(time_s)
        fading_db = state.fading.sample_db() if include_fading else 0.0
        return (
            tx_power_dbm
            + tx_gain_dbi
            + rx_gain_dbi
            - loss_db
            - shadowing_db
            - blockage_db
            + fading_db
        )

    def burst_rss_dbm(
        self,
        link_id: str,
        time_s: float,
        tx_pose: Pose,
        rx_pose: Pose,
        tx_gains_dbi: np.ndarray,
        rx_gain_dbi: float,
        tx_power_dbm: float,
        include_fading: bool = True,
    ) -> np.ndarray:
        """Vectorized RSS of every dwell in one SSB burst.

        ``tx_gains_dbi`` holds the transmit gain of each dwell's beam
        toward the mobile (one entry per dwell, in sweep order).  The
        large-scale terms — geometry, path loss, shadowing, blockage —
        are computed once for the burst; fading is drawn per dwell in a
        single batched, stream-order-preserving draw.  Returns the
        per-dwell RSS array, bit-identical to a loop of :meth:`rss_dbm`
        over the same gains, and leaves every RNG stream in the exact
        state that loop would.
        """
        tx_gains = np.asarray(tx_gains_dbi, dtype=float)
        if tx_gains.ndim != 1:
            raise ValueError(
                f"tx gains must be one value per dwell, got shape {tx_gains.shape}"
            )
        n_dwells = tx_gains.shape[0]
        if n_dwells == 0:
            # A zero-dwell burst touches no per-link state in the scalar
            # loop either.
            return np.empty(0, dtype=float)
        state = self.link_state(link_id)
        distance = tx_pose.position.distance_to(rx_pose.position)
        loss_db = self.pathloss.path_loss_db(distance)
        shadowing_db = state.shadowing.sample_repeat_db(
            state.traveled_m(rx_pose), n_dwells
        )
        blockage_db = state.blockage.attenuation_db(time_s)
        fading_db = (
            state.fading.sample_db_array(n_dwells) if include_fading else 0.0
        )
        # Same left-to-right operation order as the scalar rss_dbm sum,
        # so each element is bit-identical to its scalar counterpart.
        return (
            tx_power_dbm
            + tx_gains
            + rx_gain_dbi
            - loss_db
            - shadowing_db
            - blockage_db
            + fading_db
        )

    def burst_rss_grid_dbm(
        self,
        link_ids,
        time_s: float,
        tx_pose: Pose,
        rx_poses,
        tx_gains_dbi: np.ndarray,
        rx_gains_dbi,
        tx_power_dbm: float,
        include_fading: bool = True,
    ) -> np.ndarray:
        """Vectorized RSS of one SSB burst heard by a whole population.

        The cross-user extension of :meth:`burst_rss_dbm`: ``link_ids``
        and ``rx_poses`` name one receiving link per user, and
        ``tx_gains_dbi`` is the ``(users, dwells)`` transmit-gain grid of
        the burst's sweep toward each user.  Large-scale terms and the
        per-link RNG draws (shadowing, blockage, fading) are made
        per user *in user order*, each from that link's own streams, so
        the grid is bit-identical to stacking ``burst_rss_dbm`` rows for
        the same users in the same order — and leaves every stream in
        the exact state that loop would.  Only the final dB combination
        runs as one ``(U, B)`` array op.
        """
        tx_gains = np.asarray(tx_gains_dbi, dtype=float)
        if tx_gains.ndim != 2:
            raise ValueError(
                f"tx gains must be a (users, dwells) grid, got shape {tx_gains.shape}"
            )
        n_users, n_dwells = tx_gains.shape
        if len(link_ids) != n_users or len(rx_poses) != n_users:
            raise ValueError(
                f"need one link id and rx pose per user, got "
                f"{len(link_ids)} links / {len(rx_poses)} poses for {n_users} rows"
            )
        if n_dwells == 0 or n_users == 0:
            # A zero-dwell burst touches no per-link state in the scalar
            # loop either.
            return np.empty((n_users, n_dwells), dtype=float)
        rx_gains_dbi = np.asarray(rx_gains_dbi, dtype=float)
        loss_db = np.empty(n_users, dtype=float)
        shadowing_db = np.empty(n_users, dtype=float)
        blockage_db = np.empty(n_users, dtype=float)
        fading_db = np.zeros((n_users, n_dwells), dtype=float)
        for u, link_id in enumerate(link_ids):
            state = self.link_state(link_id)
            distance = tx_pose.position.distance_to(rx_poses[u].position)
            loss_db[u] = self.pathloss.path_loss_db(distance)
            shadowing_db[u] = state.shadowing.sample_repeat_db(
                state.traveled_m(rx_poses[u]), n_dwells
            )
            blockage_db[u] = state.blockage.attenuation_db(time_s)
            if include_fading:
                fading_db[u] = state.fading.sample_db_array(n_dwells)
        # Same left-to-right operation order as burst_rss_dbm, with the
        # per-user terms broadcast down columns, so every element is
        # bit-identical to its per-mobile counterpart.
        return (
            tx_power_dbm
            + tx_gains
            + rx_gains_dbi[:, None]
            - loss_db[:, None]
            - shadowing_db[:, None]
            - blockage_db[:, None]
            + fading_db
        )

    def burst_rss_rows_dbm(
        self,
        link_ids,
        time_s: float,
        tx_poses,
        rx_poses,
        tx_gains_dbi: np.ndarray,
        rx_gains_dbi,
        tx_powers_dbm,
        n_dwells,
        include_fading: bool = True,
    ) -> np.ndarray:
        """Vectorized RSS over heterogeneous (station, user) link rows.

        The multi-station extension of :meth:`burst_rss_grid_dbm`: each
        row is one link of one station's burst — its own transmit pose,
        power, and dwell count — and ``tx_gains_dbi`` is a ``(rows,
        max_dwells)`` grid whose columns beyond a row's ``n_dwells`` are
        padded with ``-inf`` (a padded slot can never detect).  Per-link
        RNG draws happen row by row *in row order*, each sized by that
        row's true dwell count, so as long as the caller orders rows
        exactly as the per-station grid calls it replaces (station-major,
        user-minor), every stream is left in the identical state and the
        real (unpadded) entries are bit-identical to the per-station
        :meth:`burst_rss_grid_dbm` rows.
        """
        tx_gains = np.asarray(tx_gains_dbi, dtype=float)
        if tx_gains.ndim != 2:
            raise ValueError(
                f"tx gains must be a (rows, dwells) grid, got shape {tx_gains.shape}"
            )
        n_rows, max_dwells = tx_gains.shape
        if not (
            len(link_ids) == len(tx_poses) == len(rx_poses) == len(n_dwells) == n_rows
        ):
            raise ValueError(
                f"row inputs disagree: {len(link_ids)} links, "
                f"{len(tx_poses)} tx poses, {len(rx_poses)} rx poses, "
                f"{len(n_dwells)} dwell counts for {n_rows} rows"
            )
        if n_rows == 0 or max_dwells == 0:
            return np.empty((n_rows, max_dwells), dtype=float)
        rx_gains = np.asarray(rx_gains_dbi, dtype=float)
        tx_powers = np.asarray(tx_powers_dbm, dtype=float)
        loss_db = np.empty(n_rows, dtype=float)
        shadowing_db = np.empty(n_rows, dtype=float)
        blockage_db = np.empty(n_rows, dtype=float)
        fading_db = np.zeros((n_rows, max_dwells), dtype=float)
        for r, link_id in enumerate(link_ids):
            n_g = int(n_dwells[r])
            if n_g <= 0 or n_g > max_dwells:
                raise ValueError(
                    f"row {r}: dwell count {n_g} outside [1, {max_dwells}]"
                )
            state = self.link_state(link_id)
            distance = tx_poses[r].position.distance_to(rx_poses[r].position)
            loss_db[r] = self.pathloss.path_loss_db(distance)
            shadowing_db[r] = state.shadowing.sample_repeat_db(
                state.traveled_m(rx_poses[r]), n_g
            )
            blockage_db[r] = state.blockage.attenuation_db(time_s)
            if include_fading:
                fading_db[r, :n_g] = state.fading.sample_db_array(n_g)
        # Same left-to-right operation order as burst_rss_grid_dbm; the
        # per-row transmit power broadcasts down columns like the other
        # per-row terms, so adding identical floats yields bit-identical
        # elements.  -inf gain pads stay -inf through the sum.
        return (
            tx_powers[:, None]
            + tx_gains
            + rx_gains[:, None]
            - loss_db[:, None]
            - shadowing_db[:, None]
            - blockage_db[:, None]
            + fading_db
        )

    def mean_rss_dbm(
        self,
        tx_pose: Pose,
        rx_pose: Pose,
        tx_gain_dbi: float,
        rx_gain_dbi: float,
        tx_power_dbm: float,
    ) -> float:
        """Deterministic large-scale RSS (no shadowing/fading/blockage).

        Useful for link planning, oracle baselines, and tests.
        """
        distance = tx_pose.position.distance_to(rx_pose.position)
        return (
            tx_power_dbm
            + tx_gain_dbi
            + rx_gain_dbi
            - self.pathloss.path_loss_db(distance)
        )

    @property
    def active_links(self) -> int:
        """Number of links with materialized state (diagnostic)."""
        return len(self._links)
