"""Beam codebooks: indexed sets of steerable beams with adjacency.

Silent Tracker's receive-beam adaptation is defined entirely in terms of
codebook structure: "switch to one of the *directionally adjacent*
receive beams when RSS drops by 3 dB".  The codebook therefore exposes
adjacency explicitly, and the protocol layer never touches raw angles.

Beam boresights are in the owning node's **body frame** — a mobile
rotating at 120 °/s sweeps all of its beams' world-frame directions at
that rate, which is exactly the dynamic the rotation scenario stresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.angles import wrap_to_pi, wrap_to_pi_array
from repro.phy.antenna import (
    AntennaPattern,
    GaussianBeamPattern,
    OmniPattern,
)


@dataclass(frozen=True)
class Beam:
    """One codebook entry.

    Attributes
    ----------
    index:
        Position in the codebook; stable identifier used by protocols.
    boresight_rad:
        Body-frame azimuth of the beam peak.
    pattern:
        The gain pattern steered to this boresight.
    """

    index: int
    boresight_rad: float
    pattern: AntennaPattern

    def gain_dbi(self, body_azimuth_rad: float) -> float:
        """Gain toward a body-frame azimuth."""
        return self.pattern.gain_dbi(body_azimuth_rad - self.boresight_rad)

    @property
    def beamwidth_rad(self) -> float:
        return self.pattern.beamwidth_rad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Beam(#{self.index} @ {math.degrees(self.boresight_rad):.1f}deg, "
            f"bw={math.degrees(self.pattern.beamwidth_rad):.0f}deg)"
        )


class Codebook:
    """An ordered ring of beams covering the azimuth plane.

    Beams are stored sorted by boresight so that ``index +/- 1 (mod N)``
    is the *directionally adjacent* beam the protocol switches to.
    """

    def __init__(self, beams: Sequence[Beam], name: str = "codebook") -> None:
        if not beams:
            raise ValueError("codebook must contain at least one beam")
        expected = list(range(len(beams)))
        if [b.index for b in beams] != expected:
            raise ValueError("beam indices must be 0..N-1 in order")
        boresights = [b.boresight_rad for b in beams]
        if len(beams) > 1:
            wrapped = [wrap_to_pi(a) for a in boresights]
            # A ring is legal when it ascends with at most one wrap
            # point across the ±π seam (e.g. ..., 170°, -170°, ...):
            # rotate so the smallest wrapped boresight comes first, then
            # require ascending order.
            pivot = wrapped.index(min(wrapped))
            rotated = wrapped[pivot:] + wrapped[:pivot]
            if sorted(rotated) != rotated:
                raise ValueError(
                    "beams must be sorted by wrapped boresight "
                    "(a single ±pi wrap point is allowed)"
                )
        self._beams: Tuple[Beam, ...] = tuple(beams)
        self.name = name
        # Batch-path caches.  Beams are immutable, so these stay valid
        # for the codebook's lifetime; the boresight array is marked
        # read-only because it is handed out via :attr:`boresights_rad`.
        self._boresights = np.array(boresights, dtype=float)
        self._boresights.flags.writeable = False
        groups: dict = {}
        for position, beam in enumerate(self._beams):
            groups.setdefault(id(beam.pattern), (beam.pattern, []))[1].append(
                position
            )
        self._pattern_groups: List[Tuple[AntennaPattern, np.ndarray]] = [
            (pattern, np.array(positions, dtype=np.intp))
            for pattern, positions in groups.values()
        ]

    # ------------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self._beams)

    def __iter__(self) -> Iterator[Beam]:
        return iter(self._beams)

    def __getitem__(self, index: int) -> Beam:
        return self._beams[index]

    @property
    def beams(self) -> Tuple[Beam, ...]:
        return self._beams

    @property
    def boresights_rad(self) -> np.ndarray:
        """Beam boresights as a read-only float64 array (index order)."""
        return self._boresights

    @property
    def is_omni(self) -> bool:
        """True for the degenerate single-omni-beam codebook."""
        return len(self._beams) == 1 and self._beams[0].beamwidth_rad >= 2.0 * math.pi - 1e-9

    @property
    def max_gain_dbi(self) -> float:
        """Largest gain any beam can produce in any direction.

        The antenna-side term of the spatial cell index's guard-radius
        budget: no (beam, azimuth) evaluation of this codebook exceeds
        it.  Beams and patterns are immutable, so the peak over the
        distinct patterns is computed once.
        """
        return max(
            pattern.peak_gain_dbi for pattern, _ in self._pattern_groups
        )

    # ------------------------------------------------------------- topology
    def neighbors(self, index: int) -> Tuple[int, int]:
        """Indices of the two directionally adjacent beams (CW, CCW).

        For a single-beam codebook both neighbors are the beam itself.
        """
        n = len(self._beams)
        self._check_index(index)
        return ((index - 1) % n, (index + 1) % n)

    def adjacent_indices(self, index: int) -> List[int]:
        """Distinct adjacent beam indices (1 or 2 entries)."""
        left, right = self.neighbors(index)
        if left == right == index:
            return []
        if left == right:
            return [left]
        return [left, right]

    def hop_distance(self, a: int, b: int) -> int:
        """Ring distance between two beam indices (number of adjacent hops)."""
        self._check_index(a)
        self._check_index(b)
        n = len(self._beams)
        diff = abs(a - b) % n
        return min(diff, n - diff)

    # ------------------------------------------------------------- selection
    def best_beam_towards(self, body_azimuth_rad: float) -> Beam:
        """Beam whose boresight is closest to the given body-frame azimuth.

        Vectorized over the ring; ties resolve to the lowest beam index
        (the same beam the former scalar ``min`` scan selected).
        """
        distances = np.abs(wrap_to_pi_array(self._boresights - body_azimuth_rad))
        return self._beams[int(np.argmin(distances))]

    def gain_dbi(self, index: int, body_azimuth_rad: float) -> float:
        """Gain of beam ``index`` toward a body-frame azimuth."""
        self._check_index(index)
        return self._beams[index].gain_dbi(body_azimuth_rad)

    def gains_dbi(
        self, body_azimuth_rad: float, indices: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Gains of every beam (or of ``indices``) toward one azimuth.

        The batch counterpart of :meth:`gain_dbi`: one array op per
        distinct pattern object instead of one Python call per beam.
        Each element is bit-identical to the scalar ``gain_dbi`` of the
        same beam — the burst evaluation path depends on this.
        """
        if indices is None:
            offsets = body_azimuth_rad - self._boresights
            if len(self._pattern_groups) == 1:
                return self._pattern_groups[0][0].gain_dbi_array(offsets)
            gains = np.empty(len(self._beams), dtype=float)
            for pattern, positions in self._pattern_groups:
                gains[positions] = pattern.gain_dbi_array(offsets[positions])
            return gains
        selected = np.asarray(indices, dtype=np.intp)
        if selected.size and (
            selected.min() < 0 or selected.max() >= len(self._beams)
        ):
            raise IndexError(
                f"beam indices out of range for {len(self._beams)}-beam codebook"
            )
        # Evaluate only the selected beams (a schedule may sweep a
        # subset of the codebook).
        offsets = body_azimuth_rad - self._boresights[selected]
        if len(self._pattern_groups) == 1:
            return self._pattern_groups[0][0].gain_dbi_array(offsets)
        gains = np.empty(selected.shape, dtype=float)
        for pattern, positions in self._pattern_groups:
            mask = np.isin(selected, positions)
            if mask.any():
                gains[mask] = pattern.gain_dbi_array(offsets[mask])
        return gains

    def gains_grid_dbi(
        self,
        body_azimuths_rad: Sequence[float],
        indices: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Gains of every beam (or of ``indices``) toward many azimuths.

        The cross-user counterpart of :meth:`gains_dbi`: one ``(U, B)``
        offsets matrix and one array op per distinct pattern object
        cover a whole population's burst.  Row ``u`` is bit-identical to
        ``gains_dbi(body_azimuths_rad[u], indices)`` — the fleet batched
        burst path relies on this.
        """
        azimuths = np.asarray(body_azimuths_rad, dtype=float)
        if azimuths.ndim != 1:
            raise ValueError(
                f"need one azimuth per user, got shape {azimuths.shape}"
            )
        if indices is None:
            selected = np.arange(len(self._beams), dtype=np.intp)
        else:
            selected = np.asarray(indices, dtype=np.intp)
            if selected.size and (
                selected.min() < 0 or selected.max() >= len(self._beams)
            ):
                raise IndexError(
                    f"beam indices out of range for {len(self._beams)}-beam codebook"
                )
        offsets = azimuths[:, None] - self._boresights[selected][None, :]
        if len(self._pattern_groups) == 1:
            return self._pattern_groups[0][0].gain_dbi_array(offsets)
        gains = np.empty(offsets.shape, dtype=float)
        for pattern, positions in self._pattern_groups:
            mask = np.isin(selected, positions)
            if mask.any():
                gains[:, mask] = pattern.gain_dbi_array(offsets[:, mask])
        return gains

    def sweep_order(self, start: int = 0) -> List[int]:
        """Exhaustive-search visiting order starting from ``start``.

        A plain ring walk; base stations sweep SSB beams in this order and
        mobiles walk their receive codebook the same way during initial
        search.
        """
        self._check_index(start)
        n = len(self._beams)
        return [(start + k) % n for k in range(n)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._beams):
            raise IndexError(
                f"beam index {index} out of range for {len(self._beams)}-beam codebook"
            )

    # ----------------------------------------------------------- constructors
    @staticmethod
    def uniform_azimuth(
        beamwidth_deg: float,
        coverage_deg: float = 360.0,
        center_deg: float = 0.0,
        peak_gain_dbi: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Codebook":
        """Uniform codebook of Gaussian beams covering an azimuth sector.

        Beam spacing equals the beamwidth, so adjacent beams cross over at
        their -3 dB points — the design the 3 dB adaptation rule exploits:
        when RSS has dropped 3 dB due to pointing error, the crossover to
        an adjacent beam has been reached.

        Parameters
        ----------
        beamwidth_deg:
            Half-power beamwidth of every beam.
        coverage_deg:
            Total azimuth sector to cover (360 for a mobile, often less
            for a wall-mounted base station).
        center_deg:
            Center of the coverage sector in the body frame.
        """
        if beamwidth_deg <= 0.0 or beamwidth_deg > 360.0:
            raise ValueError(f"beamwidth_deg must be in (0, 360], got {beamwidth_deg!r}")
        if coverage_deg <= 0.0 or coverage_deg > 360.0:
            raise ValueError(f"coverage_deg must be in (0, 360], got {coverage_deg!r}")
        n_beams = max(1, int(round(coverage_deg / beamwidth_deg)))
        beamwidth_rad = math.radians(beamwidth_deg)
        pattern = GaussianBeamPattern(beamwidth_rad, peak_gain_dbi)
        full_circle = coverage_deg >= 360.0 - 1e-9
        if full_circle:
            # Evenly spaced around the ring.
            step = 2.0 * math.pi / n_beams
            start = math.radians(center_deg) - math.pi + 0.5 * step
        else:
            step = math.radians(coverage_deg) / n_beams
            start = math.radians(center_deg) - math.radians(coverage_deg) / 2.0 + 0.5 * step
        boresights = sorted(wrap_to_pi(start + k * step) for k in range(n_beams))
        beams = [
            Beam(i, boresight, pattern) for i, boresight in enumerate(boresights)
        ]
        label = name or f"uniform-{beamwidth_deg:g}deg"
        return Codebook(beams, name=label)

    @staticmethod
    def omni(gain_dbi: float = 0.0) -> "Codebook":
        """The degenerate omni 'codebook': one isotropic beam.

        This models the paper's omnidirectional/single-antenna baseline.
        """
        return Codebook([Beam(0, 0.0, OmniPattern(gain_dbi))], name="omni")


class HierarchicalCodebook:
    """Two-tier (wide -> narrow) codebook for accelerated initial search.

    The paper's initial search uses narrow beams directly; hierarchical
    search is a standard alternative the ablation benches compare
    against: scan a coarse tier first, then refine only the winning
    sector's children.
    """

    def __init__(self, coarse: Codebook, fine: Codebook) -> None:
        if len(fine) < len(coarse):
            raise ValueError("fine tier must have at least as many beams as coarse")
        self._coarse = coarse
        self._fine = fine
        # Coarse parent index of every fine beam: one array op over the
        # full fine x coarse distance matrix instead of a nested Python
        # scan; ties resolve to the lowest coarse index exactly as
        # :meth:`Codebook.best_beam_towards` does.  Computed eagerly —
        # the tiers are read-only, so it can never go stale.
        offsets = coarse.boresights_rad[None, :] - fine.boresights_rad[:, None]
        self._parents = np.argmin(np.abs(wrap_to_pi_array(offsets)), axis=1)

    @property
    def coarse(self) -> Codebook:
        return self._coarse

    @property
    def fine(self) -> Codebook:
        return self._fine

    def children(self, coarse_index: int) -> List[int]:
        """Fine-tier beams whose boresights fall inside a coarse beam.

        A fine beam belongs to the coarse beam whose boresight it is
        closest to, so every fine beam has exactly one parent and the
        children sets partition the fine tier.
        """
        self._coarse._check_index(coarse_index)
        return [int(i) for i in np.flatnonzero(self._parents == coarse_index)]

    def search_cost(self, coarse_index: int) -> int:
        """Number of dwells for a two-stage search landing in this sector."""
        return len(self.coarse) + len(self.children(coarse_index))
