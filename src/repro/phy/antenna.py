"""Antenna beam patterns.

Two levels of fidelity are provided:

* :class:`GaussianBeamPattern` — the standard sectored-Gaussian
  approximation used throughout the mm-wave systems literature.  The
  mainlobe is Gaussian in dB (exactly -3 dB at half the nominal
  beamwidth) with a flat sidelobe floor.  This is the default for
  system-level simulation because it is fast and its two parameters
  (beamwidth, peak gain) map directly onto the paper's 20°/60°/omni
  codebook descriptions.
* :class:`UlaPattern` — a true uniform-linear-array factor for
  half-wavelength-spaced isotropic elements, used in validation tests to
  check that the Gaussian approximation tracks a physical array within
  tolerance inside the mainlobe.

Patterns are azimuth-only: the paper's scenarios (walk, rotation,
drive-by at fixed height) exercise horizontal beam management, and both
testbed arrays steer in azimuth.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.geometry.angles import wrap_to_pi, wrap_to_pi_array

#: ln(2), used by the Gaussian mainlobe shape constant.
_LN2 = math.log(2.0)

#: Default sidelobe level relative to the beam peak, dB.  Phased-array
#: prototypes of the class used in the paper's testbed have first
#: sidelobes 10-15 dB below peak; we use a conservative flat floor.
DEFAULT_SIDELOBE_REL_DB = -12.0

#: Gain of the idealized omni (single patch) element, dBi.
OMNI_GAIN_DBI = 0.0


def peak_gain_dbi_for_beamwidth(beamwidth_rad: float, efficiency: float = 0.8) -> float:
    """Peak gain (dBi) of a sector beam with the given azimuth HPBW.

    Uses the elliptical-aperture directivity approximation
    ``D = eta * 16 / (theta_az * theta_el)`` with the elevation beamwidth
    fixed at a phone-array-typical 60° (the paper's arrays steer only in
    azimuth).  For a 20° azimuth beam this yields ~19 dBi and for 60°
    ~14 dBi, consistent with 8- and 3-element 60 GHz modules.
    """
    if beamwidth_rad <= 0.0 or beamwidth_rad > 2.0 * math.pi:
        raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth_rad!r}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency!r}")
    theta_el = math.radians(60.0)
    directivity = efficiency * 16.0 / (beamwidth_rad * theta_el)
    # Never report less than omni: a beam covering the full circle is
    # just an omni element.
    return max(OMNI_GAIN_DBI, 10.0 * math.log10(directivity))


class AntennaPattern(ABC):
    """Gain as a function of azimuth offset from boresight."""

    @abstractmethod
    def gain_dbi(self, offset_rad: float) -> float:
        """Gain (dBi) at ``offset_rad`` radians off boresight.

        ``offset_rad`` may be any real angle; implementations wrap it.
        """

    @property
    @abstractmethod
    def peak_gain_dbi(self) -> float:
        """Boresight gain in dBi."""

    @property
    @abstractmethod
    def beamwidth_rad(self) -> float:
        """Half-power (3 dB) beamwidth in radians; ``2*pi`` for omni."""

    def gain_dbi_array(self, offsets_rad: np.ndarray) -> np.ndarray:
        """Vectorized gain over an array of offsets.

        The default evaluates :meth:`gain_dbi` per element (override for
        speed).  Contract for all implementations: the result has the
        input's shape, is float64 even for empty input, and each element
        is bit-identical to the scalar :meth:`gain_dbi` of the same
        offset — the batch burst-evaluation path relies on this to keep
        RSS traces byte-identical to the scalar path.
        """
        offsets = np.asarray(offsets_rad, dtype=float)
        gains = np.empty(offsets.shape, dtype=float)
        flat = gains.ravel()
        for i, offset in enumerate(offsets.ravel()):
            flat[i] = self.gain_dbi(float(offset))
        return gains


class GaussianBeamPattern(AntennaPattern):
    """Sectored-Gaussian mainlobe with a flat sidelobe floor.

    The mainlobe obeys ``G(d) = G0 - 12 * (d / bw)^2 * ... `` — concretely
    a Gaussian in the dB domain calibrated so that
    ``G(bw/2) = G0 - 3 dB`` exactly.  Outside the mainlobe region the
    pattern sits at ``G0 + sidelobe_rel_db`` (but never below an
    isotropic back-lobe floor of -10 dBi, matching measured 60 GHz
    module patterns).
    """

    def __init__(
        self,
        beamwidth_rad: float,
        peak_gain_dbi: float = None,
        sidelobe_rel_db: float = DEFAULT_SIDELOBE_REL_DB,
    ) -> None:
        if beamwidth_rad <= 0.0 or beamwidth_rad > 2.0 * math.pi:
            raise ValueError(
                f"beamwidth must be in (0, 2*pi], got {beamwidth_rad!r}"
            )
        if sidelobe_rel_db >= 0.0:
            raise ValueError(
                f"sidelobe level must be below peak (negative), got {sidelobe_rel_db!r}"
            )
        self._beamwidth = beamwidth_rad
        if peak_gain_dbi is None:
            peak_gain_dbi = peak_gain_dbi_for_beamwidth(beamwidth_rad)
        self._peak = peak_gain_dbi
        self._sidelobe_floor = max(self._peak + sidelobe_rel_db, -10.0)
        # dB-domain Gaussian: G(d) = G0 - 3 * (2d/bw)^2 gives exactly
        # -3 dB at d = bw/2.
        self._shape = 3.0 * (2.0 / beamwidth_rad) ** 2

    @property
    def peak_gain_dbi(self) -> float:
        return self._peak

    @property
    def beamwidth_rad(self) -> float:
        return self._beamwidth

    @property
    def sidelobe_floor_dbi(self) -> float:
        """Absolute sidelobe gain level in dBi."""
        return self._sidelobe_floor

    def gain_dbi(self, offset_rad: float) -> float:
        offset = abs(wrap_to_pi(offset_rad))
        mainlobe = self._peak - self._shape * offset * offset
        return max(mainlobe, self._sidelobe_floor)

    def gain_dbi_array(self, offsets_rad: np.ndarray) -> np.ndarray:
        offsets = np.abs(wrap_to_pi_array(offsets_rad))
        mainlobe = self._peak - self._shape * offsets * offsets
        return np.maximum(mainlobe, self._sidelobe_floor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GaussianBeamPattern(bw={math.degrees(self._beamwidth):.1f}deg, "
            f"peak={self._peak:.1f}dBi)"
        )


class OmniPattern(AntennaPattern):
    """Idealized omnidirectional element (flat gain over azimuth)."""

    def __init__(self, gain_dbi: float = OMNI_GAIN_DBI) -> None:
        self._gain = gain_dbi

    @property
    def peak_gain_dbi(self) -> float:
        return self._gain

    @property
    def beamwidth_rad(self) -> float:
        return 2.0 * math.pi

    def gain_dbi(self, offset_rad: float) -> float:
        return self._gain

    def gain_dbi_array(self, offsets_rad: np.ndarray) -> np.ndarray:
        return np.full(np.shape(offsets_rad), self._gain, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OmniPattern(gain={self._gain:.1f}dBi)"


class UlaPattern(AntennaPattern):
    """Uniform linear array of isotropic elements, half-wavelength spacing.

    The array factor for an N-element ULA steered to broadside is::

        AF(psi) = sin(N * pi/2 * sin(psi)) / (N * sin(pi/2 * sin(psi)))

    Power gain is ``N * |AF|^2`` (directivity of an N-element ULA).  Used
    as the physical ground truth in antenna validation tests.
    """

    def __init__(self, n_elements: int, element_gain_dbi: float = 0.0) -> None:
        if n_elements < 1:
            raise ValueError(f"need at least 1 element, got {n_elements!r}")
        self._n = n_elements
        self._element_gain = element_gain_dbi

    @property
    def n_elements(self) -> int:
        return self._n

    @property
    def peak_gain_dbi(self) -> float:
        return self._element_gain + 10.0 * math.log10(self._n)

    @property
    def beamwidth_rad(self) -> float:
        """Approximate HPBW of a broadside ULA: ``0.886 * lambda / (N*d)``.

        With half-wavelength spacing this reduces to ``2 * 0.886 / N``
        radians for large N; for N=1 the element is omni.
        """
        if self._n == 1:
            return 2.0 * math.pi
        return min(2.0 * math.pi, 2.0 * 0.886 / self._n)

    def _array_factor_power(self, offset: float) -> float:
        # psi measured from boresight; electrical angle for d = lambda/2.
        u = 0.5 * math.pi * math.sin(offset)
        numerator = math.sin(self._n * u)
        denominator = self._n * math.sin(u)
        if abs(denominator) < 1e-12:
            return 1.0
        af = numerator / denominator
        return af * af

    def gain_dbi(self, offset_rad: float) -> float:
        offset = wrap_to_pi(offset_rad)
        # Behind the array plane the pattern of a real module is shielded;
        # model a -10 dBi backplane floor as in the Gaussian model.
        if abs(offset) > 0.5 * math.pi:
            return -10.0
        power = self._n * self._array_factor_power(offset)
        if power <= 1e-12:
            return -10.0
        return max(-10.0, self._element_gain + 10.0 * math.log10(power))

    def gain_dbi_array(self, offsets_rad: np.ndarray) -> np.ndarray:
        offsets = wrap_to_pi_array(offsets_rad)
        gains = np.full(offsets.shape, -10.0)
        front = np.abs(offsets) <= 0.5 * math.pi
        # math.sin per element (like the log10 below): numpy can route
        # float64 sin through SIMD implementations that differ from the
        # scalar path's libm by a ULP on some hosts, which would break
        # the bit-identity contract of gain_dbi_array.
        sin = math.sin
        u = 0.5 * math.pi * np.array(
            [sin(o) for o in offsets[front].tolist()]
        )
        numerator = np.array([sin(x) for x in (self._n * u).tolist()])
        denominator = self._n * np.array([sin(x) for x in u.tolist()])
        af_power = np.ones_like(u)
        steerable = np.abs(denominator) >= 1e-12
        af = numerator[steerable] / denominator[steerable]
        af_power[steerable] = af * af
        power = self._n * af_power
        front_gains = np.full(power.shape, -10.0)
        detectable = power > 1e-12
        # math.log10 per element: np.log10 differs from the scalar path
        # by 1 ULP on some inputs, which would break the bit-identity
        # contract of gain_dbi_array.
        front_gains[detectable] = [
            max(-10.0, self._element_gain + 10.0 * math.log10(p))
            for p in power[detectable]
        ]
        gains[front] = front_gains
        return gains

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UlaPattern(n={self._n})"
