"""Typed session API: one trial from spec to structured result.

Every figure trial used to repeat the same boilerplate — build the
cell-edge deployment, construct a protocol by name, ``start()`` it, run
the simulator, remember to ``stop()``.  :class:`Session` owns that
lifecycle behind a context manager (protocols are *always* stopped, even
when the trial body raises), and resolves every axis — scenario,
codebook, protocol — through :mod:`repro.registry`, so a plugin arm
registered once runs through the same path as the built-ins.

Typical use::

    from repro.api import Session, TrialSpec

    spec = TrialSpec(scenario="vehicular", protocol="silent-tracker",
                     seed=7)
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()                      # scenario-default duration
    print(protocol.handover_log.records)

:func:`run_trial` goes one level higher: it executes any registered
experiment kind for one grid point and returns a :class:`TrialResult`
envelope — the common structure (axes + decoded per-experiment payload)
shared by every kind.  That includes the population-scale ``fleet``
kind::

    result = run_trial("fleet", scenario="walk", seed=2, arm="uniform",
                       params={"n_users": 64})
    result.payload.aggregates["summary"]["search_latency_s"]

(:class:`Session` itself stays single-UE by design; multi-UE lifecycles
are owned by :func:`repro.fleet.run_fleet_trial`.)

Construction order inside :class:`Session` is identical to the code it
replaced (deployment, then protocol, then ``protocol.start()``, then the
event loop), so RNG streams — and therefore campaign artifacts — are
byte-for-byte unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.registry import (
    CODEBOOKS,
    EXPERIMENTS,
    PROTOCOLS,
    SCENARIOS,
    RegistryError,
    UnknownNameError,
    make_protocol,
)

#: Sentinel distinguishing "not passed" from an explicit ``None`` config.
_UNSET = object()


class SessionError(RuntimeError):
    """Raised for session lifecycle misuse (attach twice, run closed...)."""


@dataclass(frozen=True)
class TrialSpec:
    """Declarative description of one trial on the cell-edge testbed.

    Attributes
    ----------
    scenario:
        Registered mobility scenario name.
    codebook:
        Registered mobile receive-codebook name.
    protocol:
        Registered protocol arm to attach, or ``None`` for protocol-less
        trials (pure search probes, workload traces).
    seed:
        Master seed of the deployment's RNG registry.
    duration_s:
        Trial length; ``None`` uses the scenario's default duration.
    serving_cell:
        Cell the protocol starts attached to.
    start_x:
        Mobile start position override (scenario default when ``None``).
    n_cells:
        Base stations to deploy (2..3 on the standard street grid).
    bs_beamwidth_deg:
        Base-station codebook beamwidth override (paper default when
        ``None``); the bench suites use this for SSB-dense variants.
    config:
        :class:`~repro.core.config.SilentTrackerConfig` handed to the
        protocol factory (``None`` = paper defaults).
    deployment_config:
        :class:`~repro.net.deployment.DeploymentConfig` template for
        channel/frame/RACH overrides.

    Axis names are validated against the registries at construction
    time, so a typo fails here — with the valid choices listed — rather
    than deep inside a trial.
    """

    scenario: str = "walk"
    codebook: str = "narrow"
    protocol: Optional[str] = None
    seed: int = 1
    duration_s: Optional[float] = None
    serving_cell: str = "cellA"
    start_x: Optional[float] = None
    n_cells: int = 3
    bs_beamwidth_deg: Optional[float] = None
    config: Optional[object] = None
    deployment_config: Optional[object] = None

    def __post_init__(self) -> None:
        SCENARIOS.get(self.scenario)
        CODEBOOKS.get(self.codebook)
        if self.protocol is not None:
            PROTOCOLS.get(self.protocol)
        if self.duration_s is not None and self.duration_s < 0.0:
            raise ValueError(
                f"duration_s must be non-negative, got {self.duration_s!r}"
            )

    @property
    def resolved_duration_s(self) -> float:
        """``duration_s``, falling back to the scenario default."""
        if self.duration_s is not None:
            return self.duration_s
        return SCENARIOS.get(self.scenario).duration_s


@dataclass(frozen=True)
class TrialResult:
    """Common envelope around one trial's per-experiment payload.

    ``payload`` is the experiment's own trial dataclass (e.g.
    :class:`~repro.experiments.fig2a.SearchTrialResult`); the envelope
    carries the grid coordinates that produced it, so downstream code
    can aggregate results of different kinds uniformly.
    """

    experiment: str
    scenario: str
    protocol: Optional[str]
    codebook: str
    seed: int
    duration_s: Optional[float]
    payload: object

    def to_dict(self) -> dict:
        """JSON-friendly dict (payload dataclasses flattened)."""
        payload = self.payload
        if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
            payload = dataclasses.asdict(payload)
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "protocol": self.protocol,
            "codebook": self.codebook,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "payload": payload,
        }


class Session:
    """Context-managed lifecycle of one deployment + protocol trial.

    Building the session builds the deployment (stations, mobile,
    trajectory) from the spec.  :meth:`attach_protocol` constructs a
    registered protocol arm against it; :meth:`run` starts the protocol
    (once) and advances simulated time; leaving the ``with`` block stops
    the protocol and the burst tasks **unconditionally** — a trial body
    that raises can no longer leak a running watchdog into the caller.
    """

    def __init__(self, spec: Optional[TrialSpec] = None, **spec_kwargs) -> None:
        from repro.experiments.scenarios import build_cell_edge_deployment

        if spec is None:
            spec = TrialSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError("pass either a TrialSpec or keyword fields, not both")
        self.spec = spec
        self.deployment, self.mobile = build_cell_edge_deployment(
            spec.seed,
            mobile_codebook=spec.codebook,
            scenario=spec.scenario,
            config=spec.deployment_config,
            n_cells=spec.n_cells,
            start_x=spec.start_x,
            bs_beamwidth_deg=spec.bs_beamwidth_deg,
        )
        self.protocol = None
        self.protocol_name: Optional[str] = None
        self._protocol_started = False
        self._closed = False
        self._ran_s = 0.0

    # ----------------------------------------------------------------- wiring
    def attach_protocol(self, name: Optional[str] = None, config=_UNSET):
        """Construct the protocol arm ``name`` (default: the spec's).

        Returns the protocol instance; it is started lazily by the first
        :meth:`run` so construction order matches the pre-Session trial
        code exactly.
        """
        self._check_open()
        if self.protocol is not None:
            raise SessionError(
                f"protocol {self.protocol_name!r} already attached"
            )
        name = self.spec.protocol if name is None else name
        if name is None:
            raise SessionError(
                "no protocol to attach: set TrialSpec.protocol or pass name="
            )
        effective = self.spec.config if config is _UNSET else config
        self.protocol = make_protocol(
            name, self.deployment, self.mobile, self.spec.serving_cell, effective
        )
        self.protocol_name = name
        return self.protocol

    def attach_listener(self, listener):
        """Attach a raw :class:`~repro.net.mobile.BurstListener`."""
        self._check_open()
        self.mobile.attach_listener(listener)
        return listener

    # ---------------------------------------------------------------- running
    def run(self, duration_s: Optional[float] = None) -> float:
        """Advance simulated time; returns the duration actually run.

        Starts the attached protocol on the first call.  ``None`` runs
        for the spec duration (scenario default unless overridden).
        """
        self._check_open()
        if self.protocol is not None and not self._protocol_started:
            self.protocol.start()
            self._protocol_started = True
        duration = (
            self.spec.resolved_duration_s if duration_s is None else duration_s
        )
        self.deployment.run(duration)
        self._ran_s += duration
        return duration

    @property
    def elapsed_s(self) -> float:
        """Total simulated time advanced through this session."""
        return self._ran_s

    def close(self) -> None:
        """Stop the protocol (if started) and all burst tasks.

        Idempotent; called automatically on ``with`` exit.  The
        protocol's ``stop()`` runs even when the deployment teardown
        would fail, and vice versa.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self.protocol is not None and self._protocol_started:
                self.protocol.stop()
        finally:
            self.deployment.stop()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- results
    def result(self, experiment: str, payload) -> TrialResult:
        """Wrap a per-experiment payload in the common envelope."""
        return TrialResult(
            experiment=experiment,
            scenario=self.spec.scenario,
            protocol=self.protocol_name or self.spec.protocol,
            codebook=self.spec.codebook,
            seed=self.spec.seed,
            duration_s=self._ran_s if self._ran_s else None,
            payload=payload,
        )


def run_trial(
    experiment: str,
    spec: Optional[TrialSpec] = None,
    *,
    arm: Optional[str] = None,
    params: Optional[Mapping] = None,
    **spec_kwargs,
) -> TrialResult:
    """Execute one grid point of a registered experiment kind.

    ``arm`` is the value of the kind's protocol axis; when omitted it is
    taken from the spec field the kind declares (``codebook`` or
    ``protocol``).  ``params`` are the kind-specific knobs a campaign
    cell would carry (``deadline_s``, ``duration_s``, ...).  Returns the
    decoded trial payload inside a :class:`TrialResult` envelope.

    Every spec field is either mapped onto the cell (``duration_s``
    through the kind's declared ``duration_param``, ``config`` through
    the overrides for kinds that honor them, ``codebook`` through the
    axis or the ``codebook`` param) or — when the kind cannot honor it —
    rejected, so the returned envelope never misreports the coordinates
    that produced the payload.  For full deployment control (serving
    cell, start position, cell count, PHY overrides) drive a
    :class:`Session` directly.
    """
    kind = EXPERIMENTS.get(experiment)
    if spec is None:
        spec = TrialSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a TrialSpec or keyword fields, not both")
    if arm is None:
        if kind.axis == "codebook":
            arm = spec.codebook
        elif kind.axis == "protocol":
            arm = spec.protocol
        if arm is None:
            raise RegistryError(
                f"experiment {experiment!r} needs an explicit arm= "
                f"({kind.protocol_axis}; known: "
                f"{', '.join(sorted(kind.protocol_names()))})"
            )
    valid = kind.protocol_names()
    if valid is not None and arm not in valid:
        raise UnknownNameError(kind.protocol_axis, arm, tuple(valid))

    unsupported = []
    if spec.serving_cell != "cellA":
        unsupported.append("serving_cell")
    if spec.start_x is not None:
        unsupported.append("start_x")
    if spec.n_cells != 3:
        unsupported.append("n_cells")
    if spec.bs_beamwidth_deg is not None:
        unsupported.append("bs_beamwidth_deg")
    if spec.deployment_config is not None:
        unsupported.append("deployment_config")
    if spec.config is not None and not kind.accepts_config:
        unsupported.append("config")
    if spec.duration_s is not None and kind.duration_param is None:
        unsupported.append("duration_s")
    if kind.axis == "custom" and spec.codebook != "narrow":
        unsupported.append("codebook")
    if unsupported:
        raise RegistryError(
            f"experiment {experiment!r} cannot honor TrialSpec field(s) "
            f"{', '.join(unsupported)}; drive a Session directly for full "
            f"deployment control"
        )

    from repro.campaign.spec import CampaignCell, config_to_overrides

    cell_params = dict(params or {})
    if spec.duration_s is not None:
        cell_params.setdefault(kind.duration_param, spec.duration_s)
    if kind.axis == "protocol":
        cell_params.setdefault("codebook", spec.codebook)
    cell = CampaignCell(
        experiment=experiment,
        scenario=spec.scenario,
        protocol=arm,
        override_label="default",
        overrides=config_to_overrides(spec.config),
        seed_index=0,
        seed=spec.seed,
        params=cell_params,
    )
    payload = kind.run(cell)
    return TrialResult(
        experiment=experiment,
        scenario=spec.scenario,
        protocol=spec.protocol if kind.axis != "protocol" else arm,
        codebook=spec.codebook if kind.axis != "codebook" else arm,
        seed=spec.seed,
        duration_s=spec.duration_s,
        payload=kind.decode(payload),
    )
