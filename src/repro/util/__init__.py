"""Utility helpers shared across the repro library.

This package holds small, dependency-free building blocks: unit
conversions between logarithmic and linear power domains
(:mod:`repro.util.units`) and generic numeric helpers
(:mod:`repro.util.numerics`).
"""

from repro.util.numerics import (
    Ewma,
    RunningStats,
    clamp,
    is_close,
    lin_interp,
    pairwise,
)
from repro.util.units import (
    GHZ,
    MHZ,
    db_to_linear,
    dbm_to_watts,
    deg_per_s_to_rad_per_s,
    kmh_to_mps,
    linear_to_db,
    mph_to_mps,
    mw_to_dbm,
    thermal_noise_dbm,
    watts_to_dbm,
)

__all__ = [
    "GHZ",
    "MHZ",
    "Ewma",
    "RunningStats",
    "clamp",
    "db_to_linear",
    "dbm_to_watts",
    "deg_per_s_to_rad_per_s",
    "is_close",
    "kmh_to_mps",
    "lin_interp",
    "linear_to_db",
    "mph_to_mps",
    "mw_to_dbm",
    "pairwise",
    "thermal_noise_dbm",
    "watts_to_dbm",
]
