"""The declared table of ``REPRO_*`` environment switches.

Every runtime behaviour toggle this project reads from the environment
is declared here — name, allowed values, default, and what the switch
trades off — and read through :func:`switch_value`.  Centralizing the
reads buys three things:

* the byte-identity test matrix (``tests/test_dense_topology.py``,
  ``tests/test_fleet_equivalence.py``, the bench suites) can enumerate
  the full switch space instead of chasing ad-hoc ``os.environ`` reads;
* an undeclared or misspelled switch name is a hard error, not a
  silently-ignored environment variable; and
* the :mod:`repro.lint` determinism linter (rule DET004) can statically
  reject any raw ``os.environ`` read of a ``REPRO_*`` name outside this
  module.

``repro list switches`` prints the table.

Values are read from the environment *at call time* (not import time),
so the bench suites' ``env_override`` contexts and test monkeypatching
behave as expected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple


class SwitchError(ValueError):
    """An undeclared switch name or an out-of-range switch value.

    A ``ValueError`` subclass so library callers and tests can keep
    catching ``ValueError``; the CLI maps it to a one-line exit 2.
    """


@dataclass(frozen=True)
class Switch:
    """One declared environment switch.

    ``values`` is the closed set of legal strings for an enum switch.
    An *empty* ``values`` tuple declares a free-form switch (e.g. a
    numeric threshold) whose legal range is described by ``hint`` and
    enforced by its typed accessor (:func:`switch_float`).
    """

    name: str
    default: str
    values: Tuple[str, ...]
    description: str
    hint: str = ""


#: The declared switches, in display order.  Adding a runtime toggle
#: means adding a row here — DET004 rejects raw reads elsewhere.
_TABLE: Tuple[Switch, ...] = (
    Switch(
        name="REPRO_BURST_PATH",
        default="vectorized",
        values=("vectorized", "scalar"),
        description=(
            "LinkEngine burst evaluation: the vectorized batch path or "
            "the scalar per-dwell reference loop (byte-identical)"
        ),
    ),
    Switch(
        name="REPRO_BURST_SCHED",
        default="coalesced",
        values=("coalesced", "legacy"),
        description=(
            "Burst scheduling: one coalesced heap event per shared SSB "
            "tick, or the legacy one-PeriodicTask-per-station reference"
        ),
    ),
    Switch(
        name="REPRO_FLEET_PATH",
        default="batch",
        values=("batch", "scalar"),
        description=(
            "Burst delivery: the cross-user batched grid call or the "
            "per-mobile reference loop (byte-identical)"
        ),
    ),
    Switch(
        name="REPRO_CELL_INDEX",
        default="on",
        values=("on", "off"),
        description=(
            "Spatial cell index: prune provably-undetectable "
            "(station, mobile) pairs behind the link-budget guard "
            "radius, or evaluate every pair"
        ),
    ),
    Switch(
        name="REPRO_HEARTBEAT_S",
        default="5",
        values=(),
        description=(
            "Monitor heartbeat interval: how often a fleet worker posts "
            "an events/s + RSS/CPU heartbeat over the progress pipe "
            "(only read when the monitor is enabled)"
        ),
        hint="seconds > 0",
    ),
    Switch(
        name="REPRO_STALL_S",
        default="30",
        values=(),
        description=(
            "Monitor stall threshold: a shard silent on the progress "
            "pipe for this long is flagged as a straggler "
            "(only read when the monitor is enabled)"
        ),
        hint="seconds > 0",
    ),
)

#: Declared switches by name.
SWITCHES: Dict[str, Switch] = {switch.name: switch for switch in _TABLE}


def declared_switches() -> Tuple[Switch, ...]:
    """The declared switch table, in display order."""
    return _TABLE


def switch(name: str) -> Switch:
    """The declaration for ``name``; ``SwitchError`` if undeclared."""
    try:
        return SWITCHES[name]
    except KeyError:
        raise SwitchError(
            f"undeclared switch {name!r}; declared: "
            f"{', '.join(sorted(SWITCHES))}"
        ) from None


def switch_value(name: str) -> str:
    """The validated current value of declared switch ``name``.

    Reads the environment at call time; an unset variable yields the
    declared default, and a value outside the declared set raises
    ``SwitchError`` naming the switch (loud failure beats a typo
    silently selecting the default path).
    """
    declared = switch(name)
    value = os.environ.get(declared.name, declared.default)
    if declared.values and value not in declared.values:
        raise SwitchError(
            f"{declared.name} must be one of {declared.values}, got {value!r}"
        )
    return value


def switch_float(name: str) -> float:
    """The current value of free-form switch ``name`` as a positive float.

    Same call-time environment semantics as :func:`switch_value`, with
    the numeric validation a free-form (empty ``values``) switch needs:
    non-numeric or non-positive values raise ``SwitchError``.
    """
    raw = switch_value(name)
    try:
        value = float(raw)
    except ValueError:
        raise SwitchError(
            f"{name} must be a number ({switch(name).hint or 'seconds'}), "
            f"got {raw!r}"
        ) from None
    if value <= 0:
        raise SwitchError(f"{name} must be > 0, got {raw!r}")
    return value


def switch_records() -> list:
    """JSON-friendly rows for ``repro list switches``."""
    return [
        {
            "name": s.name,
            "default": s.default,
            "values": list(s.values),
            "description": s.description,
            "hint": s.hint,
        }
        for s in _TABLE
    ]
