"""Generic numeric helpers: smoothing filters, running statistics, interpolation."""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    >>> clamp(5.0, 0.0, 1.0)
    1.0
    """
    if low > high:
        raise ValueError(f"empty interval: low={low!r} > high={high!r}")
    return max(low, min(high, value))


def is_close(a: float, b: float, tol: float = 1e-9) -> bool:
    """Absolute-tolerance float comparison."""
    return abs(a - b) <= tol


def lin_interp(x: float, x0: float, x1: float, y0: float, y1: float) -> float:
    """Linearly interpolate ``y`` at ``x`` between ``(x0, y0)`` and ``(x1, y1)``.

    Extrapolates outside the interval; callers that need clamping should
    clamp ``x`` first.
    """
    if x1 == x0:
        return y0
    frac = (x - x0) / (x1 - x0)
    return y0 + frac * (y1 - y0)


def pairwise(items: Sequence) -> Iterator[Tuple]:
    """Yield consecutive pairs ``(items[i], items[i+1])``.

    >>> list(pairwise([1, 2, 3]))
    [(1, 2), (2, 3)]
    """
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


class Ewma:
    """Exponentially-weighted moving average.

    Used to smooth raw RSS samples before the protocol compares them to
    adaptation thresholds; the paper's prototype applies similar L1
    filtering to measurement reports.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``.  ``alpha=1`` means no smoothing
        (the filter just returns the latest sample).
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current filtered value, or ``None`` before the first update."""
        return self._value

    def update(self, sample: float) -> float:
        """Feed one sample and return the new filtered value."""
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        return self._value

    def reset(self) -> None:
        """Forget all history; the next sample seeds the filter."""
        self._value = None


class RunningStats:
    """Online mean/variance via Welford's algorithm.

    Numerically stable for long runs; used by the metrics recorder and
    analysis helpers to avoid storing full sample lists when only summary
    statistics are needed.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected).  Zero with fewer than 2 samples."""
        if self._count == 0:
            raise ValueError("no samples recorded")
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def max(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._max

    def push(self, sample: float) -> None:
        """Add one sample."""
        self._count += 1
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)
        self._min = min(self._min, sample)
        self._max = max(self._max, sample)

    def extend(self, samples: Iterable[float]) -> None:
        """Add many samples."""
        for sample in samples:
            self.push(sample)

    def summary(self) -> dict:
        """Dictionary summary for reports; empty stats yield count=0 only."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min,
            "max": self.max,
        }


def quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list.

    Matches numpy's default ("linear") method; implemented here so the
    hot analysis path has no array-conversion overhead for tiny lists.
    """
    if not sorted_values:
        raise ValueError("quantile of empty list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac
