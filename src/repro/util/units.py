"""Unit conversions used throughout the link-budget and channel code.

All protocol-level quantities in the library are expressed in dB / dBm;
linear power is only used inside channel-model internals.  These helpers
are the single place where the two domains meet, so sign or base-10
mistakes cannot creep into individual modules.
"""

from __future__ import annotations

import math

#: Hertz in one megahertz.
MHZ = 1.0e6
#: Hertz in one gigahertz.
GHZ = 1.0e9

#: Boltzmann constant times the reference temperature (290 K), in dBm/Hz.
#: ``-174 dBm/Hz`` is the conventional thermal-noise floor density.
THERMAL_NOISE_DENSITY_DBM_PER_HZ = -174.0

#: Meters per second in one mile per hour.
_MPS_PER_MPH = 0.44704


def db_to_linear(value_db: float) -> float:
    """Convert a ratio in decibels to a linear ratio.

    >>> db_to_linear(3.0)  # doctest: +ELLIPSIS
    1.995...
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises :class:`ValueError` for non-positive inputs: a zero or negative
    power has no dB representation, and silently returning ``-inf`` hides
    upstream bugs.
    """
    if value <= 0.0:
        raise ValueError(f"cannot convert non-positive ratio {value!r} to dB")
    return 10.0 * math.log10(value)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (power_dbm / 10.0) / 1000.0


def watts_to_dbm(power_w: float) -> float:
    """Convert a power level in watts to dBm."""
    if power_w <= 0.0:
        raise ValueError(f"cannot convert non-positive power {power_w!r} to dBm")
    return 10.0 * math.log10(power_w * 1000.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert a power level in milliwatts to dBm."""
    if power_mw <= 0.0:
        raise ValueError(f"cannot convert non-positive power {power_mw!r} to dBm")
    return 10.0 * math.log10(power_mw)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` including receiver noise figure.

    ``N = -174 dBm/Hz + 10 log10(B) + NF``.

    >>> round(thermal_noise_dbm(1e9), 1)
    -84.0
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    return (
        THERMAL_NOISE_DENSITY_DBM_PER_HZ
        + 10.0 * math.log10(bandwidth_hz)
        + noise_figure_db
    )


def mph_to_mps(speed_mph: float) -> float:
    """Convert miles per hour to meters per second.

    The paper's vehicular scenario is specified as 20 mph.
    """
    return speed_mph * _MPS_PER_MPH


def kmh_to_mps(speed_kmh: float) -> float:
    """Convert kilometers per hour to meters per second."""
    return speed_kmh / 3.6


def deg_per_s_to_rad_per_s(rate_deg_per_s: float) -> float:
    """Convert an angular rate from degrees/second to radians/second."""
    return math.radians(rate_deg_per_s)
