"""Campaign specifications: declarative experiment grids.

A campaign is the cross product of four axes::

    scenario x protocol x config-override x seed

Each point of the grid is a :class:`CampaignCell` with a stable,
content-hashed ``cell_id``.  The ID is a pure function of *what the cell
computes* (experiment kind, coordinates, overrides, params) — not of the
campaign name, worker count, or execution order — so artifacts written
by one campaign are recognised and skipped by any later campaign that
contains the same cell, and an interrupted run resumes exactly where it
stopped.

The ``protocols`` axis is interpreted per experiment kind: each kind
registered in :data:`repro.registry.EXPERIMENTS` declares the meaning
(``protocol_axis``) and the valid values (``protocol_names()``) of its
axis — codebook kinds for ``search``/``tracking``/``pingpong``,
protocol arms for ``comparison``, receive-beam policies for
``workload``, search strategies for ``hierarchical``.  Spec
construction validates every axis value against the registries, so a
typo'd arm fails here, listing the valid choices, instead of deep
inside a worker process mid-campaign; ``repro list`` prints the live
sets.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

#: Hex digits of SHA-256 kept for a cell ID: collision-safe for any
#: realistic grid (64-bit space) yet short enough for filenames/logs.
CELL_ID_HEX_DIGITS = 16

PathLike = Union[str, Path]


class SpecError(ValueError):
    """Raised for malformed campaign specifications."""


def canonical_json(value) -> str:
    """Deterministic JSON encoding used for hashing and artifacts.

    Sorted keys, no whitespace: the same logical value always encodes to
    the same bytes, which is what makes cell IDs stable and artifacts
    byte-identical across worker counts.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_hash(value) -> str:
    """Stable short hash of a JSON-serialisable value."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8"))
    return digest.hexdigest()[:CELL_ID_HEX_DIGITS]


@dataclass(frozen=True)
class CampaignCell:
    """One grid point: a single simulation run.

    ``seed`` is derived from the spec's ``base_seed`` and the cell's
    seed index when the spec expands — it is part of the cell content,
    so a worker process needs nothing beyond the cell itself to
    reproduce the run bit-for-bit.
    """

    experiment: str
    scenario: str
    protocol: str
    override_label: str
    overrides: Mapping
    seed_index: int
    seed: int
    params: Mapping

    @property
    def cell_id(self) -> str:
        """Content hash identifying this cell across campaigns."""
        return content_hash(self.identity())

    def identity(self) -> dict:
        """The dict the cell ID hashes: everything the run depends on."""
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "protocol": self.protocol,
            "override_label": self.override_label,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "params": dict(self.params),
        }

    def to_dict(self) -> dict:
        record = self.identity()
        record["seed_index"] = self.seed_index
        record["cell_id"] = self.cell_id
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "CampaignCell":
        return cls(
            experiment=str(record["experiment"]),
            scenario=str(record["scenario"]),
            protocol=str(record["protocol"]),
            override_label=str(record["override_label"]),
            overrides=dict(record["overrides"]),
            seed_index=int(record.get("seed_index", 0)),
            seed=int(record["seed"]),
            params=dict(record["params"]),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a full experiment campaign.

    Attributes
    ----------
    name:
        Human-readable campaign name (not part of cell IDs).
    experiment:
        A kind registered in :data:`repro.registry.EXPERIMENTS`.
    scenarios:
        Mobility scenarios to sweep.
    protocols:
        Per-kind protocol arms (see module docstring).
    seeds:
        Trials per (scenario, protocol, override) arm.
    base_seed:
        Seed of trial 0; trial ``k`` runs with ``base_seed + k``.  Every
        arm sees the same seed sequence, giving paired comparisons and —
        because the seed is baked into each cell — bit-identical results
        regardless of worker scheduling.
    overrides:
        Mapping of label -> config-override dict (fields of
        :class:`~repro.core.config.SilentTrackerConfig`; a nested
        ``beamsurfer`` dict overrides
        :class:`~repro.core.beamsurfer.BeamSurferConfig`).  ``{}``
        means the paper defaults.
    params:
        Extra kind-specific knobs (``deadline_s``, ``duration_s``,
        ``period_s``, ``fixed_rx_beam``, ...), passed to the trial
        function.
    """

    name: str
    experiment: str
    scenarios: Tuple[str, ...]
    protocols: Tuple[str, ...]
    seeds: int
    base_seed: int = 0
    overrides: Mapping[str, Mapping] = field(
        default_factory=lambda: {"default": {}}
    )
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.registry import EXPERIMENTS, UnknownNameError

        if not self.name:
            raise SpecError("campaign name must be non-empty")
        try:
            kind = EXPERIMENTS.get(self.experiment)
        except UnknownNameError as error:
            raise SpecError(str(error)) from None
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if not self.scenarios:
            raise SpecError("need >= 1 scenario")
        if not self.protocols:
            raise SpecError("need >= 1 protocol arm")
        # Duplicate axis values would expand to duplicate cell IDs and
        # silently double every aggregated statistic — refuse loudly.
        if len(set(self.scenarios)) != len(self.scenarios):
            raise SpecError(f"duplicate scenarios in {self.scenarios!r}")
        if len(set(self.protocols)) != len(self.protocols):
            raise SpecError(f"duplicate protocol arms in {self.protocols!r}")
        if self.seeds < 1:
            raise SpecError(f"need >= 1 trial, got {self.seeds!r}")
        if self.base_seed < 0:
            raise SpecError(
                f"base seed must be non-negative, got {self.base_seed!r}"
            )
        from repro.registry import SCENARIOS

        for scenario in self.scenarios:
            try:
                SCENARIOS.get(scenario)
            except UnknownNameError as error:
                raise SpecError(str(error)) from None
        valid_protocols = kind.protocol_names()
        if valid_protocols is not None:
            for protocol in self.protocols:
                if protocol not in valid_protocols:
                    raise SpecError(
                        f"unknown {kind.protocol_axis} {protocol!r} for "
                        f"experiment {self.experiment!r}; known: "
                        f"{', '.join(sorted(valid_protocols))}"
                    )
        if not self.overrides:
            raise SpecError("need >= 1 override arm (use {'default': {}})")
        canonical_json(dict(self.overrides))  # must be JSON-serialisable
        canonical_json(dict(self.params))

    # ------------------------------------------------------------- expansion
    @property
    def n_cells(self) -> int:
        return (
            len(self.scenarios)
            * len(self.protocols)
            * len(self.overrides)
            * self.seeds
        )

    def expand(self) -> List[CampaignCell]:
        """The full cell grid, in deterministic scenario-major order."""
        return list(self.iter_cells())

    def iter_cells(self) -> Iterator[CampaignCell]:
        for scenario in self.scenarios:
            for protocol in self.protocols:
                for label, override in self.overrides.items():
                    for k in range(self.seeds):
                        yield CampaignCell(
                            experiment=self.experiment,
                            scenario=scenario,
                            protocol=protocol,
                            override_label=label,
                            overrides=dict(override),
                            seed_index=k,
                            seed=self.base_seed + k,
                            params=dict(self.params),
                        )

    # ---------------------------------------------------------- serialization
    @property
    def spec_hash(self) -> str:
        """Content hash of the spec (campaign name excluded)."""
        record = self.to_dict()
        record.pop("name")
        return content_hash(record)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "overrides": {k: dict(v) for k, v in self.overrides.items()},
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "CampaignSpec":
        try:
            return cls(
                name=str(record["name"]),
                experiment=str(record["experiment"]),
                scenarios=tuple(record["scenarios"]),
                protocols=tuple(record["protocols"]),
                seeds=int(record["seeds"]),
                base_seed=int(record.get("base_seed", 0)),
                overrides=dict(record.get("overrides") or {"default": {}}),
                params=dict(record.get("params") or {}),
            )
        except KeyError as error:
            raise SpecError(f"spec missing field: {error}") from error

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )


def __getattr__(name: str):
    # Back-compat: EXPERIMENT_KINDS used to be a static tuple here; it
    # now reflects the live experiment registry (plugins included).
    if name == "EXPERIMENT_KINDS":
        from repro.registry import EXPERIMENTS

        return EXPERIMENTS.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def load_spec(path: PathLike) -> CampaignSpec:
    """Read a :class:`CampaignSpec` from a JSON file."""
    try:
        record = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SpecError(f"{path}: malformed JSON: {error}") from error
    return CampaignSpec.from_dict(record)


# ---------------------------------------------------------- config overrides
def config_to_overrides(config) -> Dict:
    """Flatten a :class:`SilentTrackerConfig` into an override dict.

    Lossless inverse of :func:`build_config`; lets one-shot entry points
    that accept a config object route through the campaign machinery.
    """
    if config is None:
        return {}
    record = dataclasses.asdict(config)
    return record


def build_config(overrides: Optional[Mapping]):
    """Materialise a :class:`SilentTrackerConfig` from an override dict.

    ``None`` / ``{}`` return ``None`` so downstream code applies its own
    default (identical to ``SilentTrackerConfig()``).  Unknown field
    names raise ``TypeError`` — a typo in a spec fails loudly rather
    than silently running the defaults.
    """
    if not overrides:
        return None
    from repro.core.beamsurfer import BeamSurferConfig
    from repro.core.config import SilentTrackerConfig

    record = dict(overrides)
    beamsurfer = record.pop("beamsurfer", None)
    if beamsurfer is not None:
        record["beamsurfer"] = BeamSurferConfig(**dict(beamsurfer))
    return SilentTrackerConfig(**record)
