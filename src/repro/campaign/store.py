"""Persistent campaign artifacts: one JSON file per cell plus a manifest.

Layout under the campaign output directory::

    <root>/manifest.json            # spec + expanded cell index
    <root>/cells/<cell_id>.json     # {"cell": {...}, "payload": {...}}
    <root>/telemetry/<cell_id>.json # wall-clock telemetry (sidecar, optional)

Telemetry summaries live *outside* ``cells/`` on purpose: cell
artifacts are deterministic (byte-identical across runs and worker
counts) while telemetry is wall-clock and inherently not, and
:meth:`ArtifactStore.completed_ids` must never mistake a telemetry
sidecar for a finished cell.

Design rules:

* **Canonical bytes** — every file is canonical JSON (sorted keys, fixed
  separators, trailing newline), so artifacts are byte-identical no
  matter how many workers produced the results or in what order they
  finished.
* **Atomic writes** — artifacts land via write-to-temp + ``os.replace``;
  a run killed mid-write leaves no half-written artifact, which is what
  makes resume trustworthy.
* **Single writer** — only the campaign driver process writes; workers
  return payloads over the pool pipe.  No cross-process file locking is
  needed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.campaign.spec import CampaignCell, CampaignSpec, canonical_json

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
CELL_DIR_NAME = "cells"
TELEMETRY_DIR_NAME = "telemetry"
STORE_FORMAT = 1


class StoreError(RuntimeError):
    """Raised for artifact-store misuse or on-disk corruption."""


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class ArtifactStore:
    """Reads and writes one campaign's on-disk artifacts."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._cell_dir = self._root / CELL_DIR_NAME
        self._telemetry_dir = self._root / TELEMETRY_DIR_NAME

    @property
    def root(self) -> Path:
        return self._root

    @property
    def manifest_path(self) -> Path:
        return self._root / MANIFEST_NAME

    def cell_path(self, cell_id: str) -> Path:
        return self._cell_dir / f"{cell_id}.json"

    # ---------------------------------------------------------------- manifest
    def initialize(self, spec: CampaignSpec) -> None:
        """Create the directory layout and manifest for ``spec``.

        Re-initialising with the *same* spec (by content hash) is the
        resume path and is a no-op; a different spec over the same
        directory is refused so artifacts from unrelated campaigns never
        mix.
        """
        self._root.mkdir(parents=True, exist_ok=True)
        self._cell_dir.mkdir(exist_ok=True)
        existing = self.load_manifest_record()
        if existing is not None:
            if existing.get("spec_hash") != spec.spec_hash:
                raise StoreError(
                    f"{self._root} already holds campaign "
                    f"{existing.get('name')!r} with a different spec "
                    f"(hash {existing.get('spec_hash')} != {spec.spec_hash}); "
                    "use a fresh output directory"
                )
            return
        record = {
            "format": STORE_FORMAT,
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash,
            "cells": [
                {
                    "cell_id": cell.cell_id,
                    "scenario": cell.scenario,
                    "protocol": cell.protocol,
                    "override_label": cell.override_label,
                    "seed": cell.seed,
                }
                for cell in spec.iter_cells()
            ],
        }
        _atomic_write_text(self.manifest_path, canonical_json(record) + "\n")

    def load_manifest_record(self) -> Optional[dict]:
        """The raw manifest dict, or ``None`` when absent."""
        if not self.manifest_path.exists():
            return None
        try:
            record = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{self.manifest_path}: malformed manifest: {error}"
            ) from error
        if record.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{self.manifest_path}: unsupported format "
                f"{record.get('format')!r} (expected {STORE_FORMAT})"
            )
        return record

    def load_spec(self) -> CampaignSpec:
        """The campaign spec recorded in the manifest."""
        record = self.load_manifest_record()
        if record is None:
            raise StoreError(f"{self._root}: no campaign manifest found")
        return CampaignSpec.from_dict(record["spec"])

    # ------------------------------------------------------------------- cells
    def write_cell(self, cell: CampaignCell, payload: dict) -> Path:
        """Persist one cell's result artifact (atomic, canonical bytes)."""
        self._cell_dir.mkdir(parents=True, exist_ok=True)
        path = self.cell_path(cell.cell_id)
        record = {"cell": cell.to_dict(), "payload": payload}
        _atomic_write_text(path, canonical_json(record) + "\n")
        return path

    def has_cell(self, cell_id: str) -> bool:
        return self.cell_path(cell_id).exists()

    def completed_ids(self) -> Set[str]:
        """Cell IDs with a readable, self-consistent artifact on disk.

        A file that fails to parse or whose recorded ID mismatches its
        name is treated as missing (it will simply be re-run), so a
        partially corrupted store degrades to extra work, not wrong
        results.
        """
        done: Set[str] = set()
        if not self._cell_dir.is_dir():
            return done
        for path in self._cell_dir.glob("*.json"):
            cell_id = path.stem
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                continue
            if record.get("cell", {}).get("cell_id") == cell_id:
                done.add(cell_id)
        return done

    def load_cell(self, cell_id: str) -> Tuple[CampaignCell, dict]:
        """One cell's ``(cell, payload)`` from disk."""
        path = self.cell_path(cell_id)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(f"no artifact for cell {cell_id}") from None
        except json.JSONDecodeError as error:
            raise StoreError(f"{path}: malformed artifact: {error}") from error
        return CampaignCell.from_dict(record["cell"]), record["payload"]

    # --------------------------------------------------------------- telemetry
    def telemetry_path(self, cell_id: str) -> Path:
        return self._telemetry_dir / f"{cell_id}.json"

    def write_cell_telemetry(self, cell_id: str, summary: dict) -> Path:
        """Persist one cell's wall-clock telemetry summary (sidecar).

        Sidecars are advisory: they never participate in resume
        decisions or the byte-identity contract, so a missing or stale
        one is harmless.
        """
        self._telemetry_dir.mkdir(parents=True, exist_ok=True)
        path = self.telemetry_path(cell_id)
        _atomic_write_text(path, canonical_json(summary) + "\n")
        return path

    def load_cell_telemetry(self, cell_id: str) -> Optional[dict]:
        """One cell's telemetry summary, or ``None`` when absent/corrupt."""
        path = self.telemetry_path(cell_id)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return record if isinstance(record, dict) else None

    def iter_results(self) -> Iterator[Tuple[CampaignCell, dict]]:
        """All completed ``(cell, payload)`` pairs, in manifest order."""
        record = self.load_manifest_record()
        if record is None:
            raise StoreError(f"{self._root}: no campaign manifest found")
        for entry in record["cells"]:
            cell_id = entry["cell_id"]
            if self.has_cell(cell_id):
                yield self.load_cell(cell_id)

    def load_results(self) -> List[Tuple[CampaignCell, dict]]:
        return list(self.iter_results())
