"""Parallel experiment campaigns with persistent artifacts and resume.

A **campaign** declares a grid of simulation cells — scenario x protocol
x config-override x seed — and executes them across a worker pool while
writing one JSON artifact per cell:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` / the content-hashed
  :class:`CampaignCell` grid.
* :mod:`repro.campaign.runner` — serial / ``multiprocessing`` execution,
  deterministic regardless of worker count.
* :mod:`repro.campaign.store` — the on-disk artifact layout and resume
  bookkeeping.
* :mod:`repro.campaign.aggregate` — artifacts back into the summary
  structures :mod:`repro.analysis` consumes.
* :mod:`repro.campaign.progress` — reporting hooks for the CLI.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="demo",
        experiment="comparison",
        scenarios=("walk", "vehicular"),
        protocols=("silent-tracker", "reactive"),
        seeds=6,
        base_seed=700,
    )
    result = run_campaign(spec, out_dir="out/demo", workers=4)

Interrupt it, run it again: completed cells are skipped.
"""

from repro.campaign.aggregate import (
    aggregate_by_protocol,
    aggregate_comparison,
    aggregate_search,
    aggregate_sweep,
    aggregate_tracking,
    aggregate_workload,
    load_campaign,
    summarize_campaign,
)
from repro.campaign.progress import ConsoleProgress, NullProgress, ProgressReporter
from repro.campaign.runner import (
    CampaignError,
    CampaignResult,
    decode_payload,
    execute_cell,
    resume_campaign,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    SpecError,
    build_config,
    config_to_overrides,
    load_spec,
)
from repro.campaign.store import ArtifactStore, StoreError


def __getattr__(name: str):
    # Back-compat aliases for the pre-registry experiment table: both
    # now resolve through repro.registry (lazily, to keep importing
    # this package from pulling in every experiment module).
    if name == "EXPERIMENTS":
        from repro.registry import EXPERIMENTS

        return EXPERIMENTS
    if name == "EXPERIMENT_KINDS":
        from repro.registry import EXPERIMENTS

        return EXPERIMENTS.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EXPERIMENTS",
    "EXPERIMENT_KINDS",
    "ArtifactStore",
    "CampaignCell",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "ConsoleProgress",
    "NullProgress",
    "ProgressReporter",
    "SpecError",
    "StoreError",
    "aggregate_by_protocol",
    "aggregate_comparison",
    "aggregate_search",
    "aggregate_sweep",
    "aggregate_tracking",
    "aggregate_workload",
    "build_config",
    "config_to_overrides",
    "decode_payload",
    "execute_cell",
    "load_campaign",
    "load_spec",
    "resume_campaign",
    "run_campaign",
    "summarize_campaign",
]
