"""Aggregate campaign artifacts into the structures the figures consume.

The one-shot experiment entry points (``run_fig2a`` and friends) predate
the campaign subsystem, and everything downstream — ``repro.analysis``
tables, the markdown report, the benchmarks — consumes their return
shapes.  The aggregators here rebuild exactly those shapes from
``(cell, payload)`` pairs, whether the pairs come from an in-memory
:class:`~repro.campaign.runner.CampaignResult` or were loaded back from
a campaign directory written last week.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.campaign.runner import decode_payload
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ArtifactStore

PathLike = Union[str, Path]
ResultPairs = Iterable[Tuple[CampaignCell, dict]]


def load_campaign(out_dir: PathLike) -> Tuple[CampaignSpec, List[Tuple[CampaignCell, dict]]]:
    """``(spec, completed pairs)`` from a campaign artifact directory."""
    store = ArtifactStore(out_dir)
    return store.load_spec(), store.load_results()


def decoded_trials(pairs: ResultPairs) -> List[Tuple[CampaignCell, object]]:
    """Decode every payload into its trial dataclass, keeping the cell."""
    return [
        (cell, decode_payload(cell.experiment, payload))
        for cell, payload in pairs
    ]


# ------------------------------------------------------------------- search
def aggregate_search(pairs: ResultPairs) -> Dict[str, Dict[str, dict]]:
    """Fig. 2a shape per scenario: ``{scenario: {codebook: {...}}}``.

    The inner dict matches :func:`repro.experiments.fig2a.run_fig2a`:
    ``success_rate``, ``latency`` summary over successful trials'
    dwell counts, and the full ``trials`` list.
    """
    from repro.analysis.stats import success_rate, summarize

    grouped: Dict[str, Dict[str, list]] = {}
    for cell, trial in decoded_trials(pairs):
        grouped.setdefault(cell.scenario, {}).setdefault(
            cell.protocol, []
        ).append(trial)
    results: Dict[str, Dict[str, dict]] = {}
    for scenario, by_codebook in grouped.items():
        results[scenario] = {}
        for codebook, trials in by_codebook.items():
            successes = [t for t in trials if t.success]
            results[scenario][codebook] = {
                "success_rate": success_rate(len(successes), len(trials)),
                "latency": summarize([float(t.dwells) for t in successes]),
                "trials": trials,
            }
    return results


# ----------------------------------------------------------------- tracking
def aggregate_tracking(pairs: ResultPairs) -> Dict[str, dict]:
    """Fig. 2c shape: ``{scenario: {...}}`` with completion-time stats."""
    from repro.net.handover import HandoverOutcome

    grouped: Dict[str, list] = {}
    for cell, trial in decoded_trials(pairs):
        grouped.setdefault(cell.scenario, []).append(trial)
    results: Dict[str, dict] = {}
    for scenario, trials in grouped.items():
        completed = [t for t in trials if t.completed]
        soft = [t for t in completed if t.outcome is HandoverOutcome.SOFT]
        results[scenario] = {
            "completion_times_s": [t.completion_time_s for t in completed],
            "completion_rate": len(completed) / len(trials),
            "soft_rate": (len(soft) / len(completed)) if completed else 0.0,
            "trials": trials,
        }
    return results


def aggregate_sweep(pairs: ResultPairs) -> Dict[str, list]:
    """Ablation shape: ``{override_label: [TrackingTrialResult, ...]}``."""
    grouped: Dict[str, list] = {}
    for cell, trial in decoded_trials(pairs):
        grouped.setdefault(cell.override_label, []).append(trial)
    return grouped


# --------------------------------------------------------------- comparison
def aggregate_by_protocol(pairs: ResultPairs) -> Dict[str, list]:
    """``{protocol arm: [trial, ...]}`` in grid order, any experiment kind."""
    grouped: Dict[str, list] = {}
    for cell, trial in decoded_trials(pairs):
        grouped.setdefault(cell.protocol, []).append(trial)
    return grouped


def aggregate_comparison(pairs: ResultPairs) -> Dict[str, list]:
    """Baseline-comparison shape: ``{protocol: [trial, ...]}``."""
    return aggregate_by_protocol(pairs)


# ----------------------------------------------------------------- workload
def aggregate_workload(pairs: ResultPairs) -> Dict[str, Dict[str, list]]:
    """Workload shape: ``{scenario: {policy: [trace, ...]}}`` (seed order)."""
    grouped: Dict[str, Dict[str, list]] = {}
    for cell, trace in decoded_trials(pairs):
        grouped.setdefault(cell.scenario, {}).setdefault(
            cell.protocol, []
        ).append(trace)
    return grouped


# ------------------------------------------------------------------ summary
def summarize_campaign(
    spec: CampaignSpec, pairs: ResultPairs
) -> Tuple[List[str], List[list]]:
    """``(headers, rows)`` for a per-arm summary table of any kind.

    One row per (scenario, protocol, override) arm with the headline
    number(s) for the experiment kind; feed straight into
    :func:`repro.analysis.tables.format_table`.
    """
    from repro.analysis.stats import summarize
    from repro.net.handover import HandoverOutcome

    arms: Dict[Tuple[str, str, str], list] = {}
    for cell, trial in decoded_trials(pairs):
        key = (cell.scenario, cell.protocol, cell.override_label)
        arms.setdefault(key, []).append(trial)

    headers = ["scenario", "protocol", "override", "cells"]
    rows: List[list] = []
    if spec.experiment == "search":
        headers += ["success %", "mean dwells"]
        for (scenario, protocol, label), trials in arms.items():
            successes = [t for t in trials if t.success]
            latency = summarize([float(t.dwells) for t in successes])
            rows.append(
                [
                    scenario,
                    protocol,
                    label,
                    len(trials),
                    100.0 * len(successes) / len(trials),
                    latency["mean"] if latency["count"] else "-",
                ]
            )
    elif spec.experiment == "tracking":
        headers += ["completion", "soft", "p50 (s)"]
        for (scenario, protocol, label), trials in arms.items():
            completed = [t for t in trials if t.completed]
            soft = [t for t in completed if t.outcome is HandoverOutcome.SOFT]
            times = summarize([t.completion_time_s for t in completed])
            rows.append(
                [
                    scenario,
                    protocol,
                    label,
                    len(trials),
                    len(completed) / len(trials),
                    (len(soft) / len(completed)) if completed else 0.0,
                    times["p50"] if times["count"] else "-",
                ]
            )
    elif spec.experiment == "comparison":
        headers += ["completed", "soft", "hard", "mean interruption (s)"]
        for (scenario, protocol, label), trials in arms.items():
            completed = [t for t in trials if t.handovers_completed > 0]
            interruptions = [
                t.first_interruption_s
                for t in completed
                if t.first_interruption_s is not None
            ]
            rows.append(
                [
                    scenario,
                    protocol,
                    label,
                    len(trials),
                    len(completed),
                    sum(t.soft_handovers for t in trials),
                    sum(t.hard_handovers for t in trials),
                    sum(interruptions) / len(interruptions)
                    if interruptions
                    else "-",
                ]
            )
    elif spec.experiment == "fleet":
        headers += [
            "users",
            "handovers",
            "p50 search (s)",
            "p90 outage frac",
        ]
        for (scenario, protocol, label), trials in arms.items():
            totals = [t.aggregates["totals"] for t in trials]
            searches = [
                x for t in trials for u in t.users for x in u.search_latencies_s
            ]
            outages = [u.outage_fraction for t in trials for u in t.users]
            search_summary = summarize(searches)
            outage_summary = summarize(outages)
            rows.append(
                [
                    scenario,
                    protocol,
                    label,
                    len(trials),
                    sum(t["users"] for t in totals),
                    sum(t["handovers_completed"] for t in totals),
                    search_summary.get("p50", "-"),
                    outage_summary.get("p90", "-"),
                ]
            )
    elif spec.experiment == "workload":
        headers += ["mean duty cycle", "points"]
        from repro.experiments.workloads import detection_duty_cycle

        for (scenario, protocol, label), traces in arms.items():
            duties = [detection_duty_cycle(trace) for trace in traces]
            rows.append(
                [
                    scenario,
                    protocol,
                    label,
                    len(traces),
                    sum(duties) / len(duties),
                    sum(len(trace) for trace in traces),
                ]
            )
    return headers, rows
