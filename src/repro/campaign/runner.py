"""Campaign execution: serial or multiprocessing, always deterministic.

Each cell is an independent simulation: it builds its own deployment
from the seed recorded *in the cell*, so a cell's result is a pure
function of the cell content — never of which worker ran it, in what
order, or alongside what else.  That is the whole determinism story:
``--workers 8`` and ``--workers 1`` produce byte-identical artifacts.

Only the driver process writes artifacts; workers ship payloads back
over the pool pipe.  Failed cells are collected (not written), the rest
of the campaign completes, and a :class:`CampaignError` summarising the
failures is raised at the end — a subsequent resume retries exactly the
failed/missing cells.

Experiment kinds are registered in :data:`repro.registry.EXPERIMENTS`
(the built-ins by the ``repro.experiments`` modules themselves, plugins
via :func:`repro.registry.register_experiment`); the registry is
queried lazily so ``repro.experiments`` modules can in turn import this
package for their thin one-shot wrappers.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.campaign.progress import NullProgress, ProgressReporter
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ArtifactStore
from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import wall_clock
from repro.obs.log import get_logger
from repro.obs.report import merge_summaries

PathLike = Union[str, Path]

_log = get_logger("campaign")


class CampaignError(RuntimeError):
    """Raised for campaign misuse or failed cells.

    ``failures`` maps cell ID -> full traceback text for cells that
    raised during execution (empty for usage errors).
    """

    def __init__(self, message: str, failures: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.failures = dict(failures or {})


# --------------------------------------------------------------- experiments
def execute_cell(cell: CampaignCell) -> dict:
    """Run one cell to completion; returns its JSON-safe payload.

    The experiment kind is resolved through
    :data:`repro.registry.EXPERIMENTS`, so registered plugin kinds
    execute exactly like the built-ins.
    """
    from repro.registry import EXPERIMENTS

    return EXPERIMENTS.get(cell.experiment).run(cell)


def decode_payload(experiment: str, payload: dict):
    """Rebuild the trial dataclass an artifact payload serialised."""
    from repro.registry import EXPERIMENTS

    return EXPERIMENTS.get(experiment).decode(payload)


def _execute_cell_task(
    task: Tuple[dict, bool],
) -> Tuple[str, Optional[dict], Optional[str], float, Optional[dict]]:
    """Pool task: ``(cell_id, payload|None, error|None, elapsed_s, telemetry)``.

    ``error`` is the full traceback text: the exception object itself
    cannot cross the pool pipe reliably, but the caller still needs to
    see *where* a trial crashed, not just the exception type.

    The telemetry flag rides in the task tuple (not a process global)
    because spawn-context workers do not inherit the driver's ambient
    hub; each task activates a fresh per-cell hub so the summary that
    crosses the pipe covers exactly one cell.
    """
    record, telemetry_enabled = task
    cell = CampaignCell.from_dict(record)
    started = wall_clock()
    hub = _telemetry.Telemetry() if telemetry_enabled else _telemetry.DISABLED
    try:
        with _telemetry.use(hub):
            payload = execute_cell(cell)
        summary = hub.summary() if telemetry_enabled else None
        return record["cell_id"], payload, None, wall_clock() - started, summary
    except Exception:  # collected, reported, retried on resume
        message = traceback.format_exc()
        return record["cell_id"], None, message, wall_clock() - started, None


# -------------------------------------------------------------------- driver
@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    payloads: Dict[str, dict] = field(default_factory=dict)
    executed: int = 0
    skipped: int = 0
    failures: Dict[str, str] = field(default_factory=dict)
    out_dir: Optional[Path] = None
    #: Per-cell wall-clock telemetry summaries (``--telemetry`` runs
    #: only).  Kept out of ``payloads`` so artifacts stay deterministic.
    telemetry: Dict[str, dict] = field(default_factory=dict)

    @property
    def total_cells(self) -> int:
        return self.spec.n_cells

    def merged_telemetry(self) -> Optional[dict]:
        """All per-cell summaries folded into one, or ``None`` if none."""
        if not self.telemetry:
            return None
        return merge_summaries(
            self.telemetry[cell_id] for cell_id in sorted(self.telemetry)
        )

    def results_in_order(self) -> Iterator[Tuple[CampaignCell, dict]]:
        """Completed ``(cell, payload)`` pairs in grid order."""
        for cell in self.spec.iter_cells():
            payload = self.payloads.get(cell.cell_id)
            if payload is not None:
                yield cell, payload

    def trials_in_order(self) -> Iterator[Tuple[CampaignCell, object]]:
        """Like :meth:`results_in_order`, with payloads decoded."""
        for cell, payload in self.results_in_order():
            yield cell, decode_payload(cell.experiment, payload)


def _default_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ------------------------------------------------------------- worker pool
#: Worker-side progress sink (a queue back to the driver), installed by
#: the pool initializer.  Task functions read it via :func:`progress_sink`
#: — ``None`` means nobody is listening and events should be skipped.
_PROGRESS_SINK = None


def _pool_initializer(sink) -> None:
    global _PROGRESS_SINK
    _PROGRESS_SINK = sink


def progress_sink():
    """The worker's progress sink (``.put(event)``), or ``None``."""
    return _PROGRESS_SINK


class _CallbackSink:
    """Serial-path sink: delivers events straight to the driver handler."""

    def __init__(self, handler: Callable) -> None:
        self._handler = handler

    def put(self, event) -> None:
        self._handler(event)


def execute_pooled(
    task_fn: Callable,
    tasks: Sequence,
    workers: int,
    record_outcome: Callable,
    mp_context: Optional[str] = None,
    progress_handler: Optional[Callable] = None,
    tick: Optional[Callable[[], None]] = None,
) -> None:
    """Run picklable tasks on the campaign worker pool.

    The one pool used by campaigns *and* fleet shards: ``task_fn`` must
    be a module-level function returning an outcome tuple, which the
    driver-side ``record_outcome`` receives splatted — completion order
    is scheduling-dependent, so outcomes must be order-independent
    (both callers key them by content hash).  ``workers <= 1`` (or a
    single task) runs serially in-process — the reference path for the
    byte-identity guarantee.

    ``progress_handler`` receives worker-originated progress events on
    the driver, best-effort and unordered across workers.  Workers post
    them via :func:`progress_sink`; on the serial path the sink calls
    the handler directly.  Progress can never influence results — it
    only exists between a task starting and its outcome being recorded.

    ``tick`` is a driver-side periodic callback (the fleet monitor's
    stall detector polls from it): invoked once per drain-loop
    iteration on the pool path, and between tasks on the serial path.
    Like progress, it can observe but never influence results.
    """
    global _PROGRESS_SINK
    if workers <= 1 or len(tasks) == 1:
        previous = _PROGRESS_SINK
        _PROGRESS_SINK = (
            _CallbackSink(progress_handler) if progress_handler else None
        )
        try:
            for task in tasks:
                record_outcome(*task_fn(task))
                if tick is not None:
                    tick()
        finally:
            _PROGRESS_SINK = previous
        return

    ctx = (
        multiprocessing.get_context(mp_context)
        if mp_context
        else _default_context()
    )
    pool_size = min(workers, len(tasks))
    if progress_handler is None and tick is None:
        with ctx.Pool(processes=pool_size) as pool:
            for outcome in pool.imap_unordered(task_fn, tasks, chunksize=1):
                record_outcome(*outcome)
        return

    sink = ctx.Queue() if progress_handler is not None else None

    def drain() -> None:
        if sink is None:
            return
        while True:
            try:
                event = sink.get_nowait()
            except queue_module.Empty:
                return
            progress_handler(event)

    initializer = _pool_initializer if sink is not None else None
    initargs = (sink,) if sink is not None else ()
    with ctx.Pool(
        processes=pool_size, initializer=initializer, initargs=initargs
    ) as pool:
        pending = [pool.apply_async(task_fn, (task,)) for task in tasks]
        while pending:
            drain()
            if tick is not None:
                tick()
            still_running = []
            for handle in pending:
                if handle.ready():
                    record_outcome(*handle.get())
                else:
                    still_running.append(handle)
            pending = still_running
            if pending:
                time.sleep(0.05)
        drain()


def run_campaign(
    spec: CampaignSpec,
    out_dir: Optional[PathLike] = None,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[ProgressReporter] = None,
    mp_context: Optional[str] = None,
    telemetry: bool = False,
) -> CampaignResult:
    """Execute a campaign, optionally persisting and resuming artifacts.

    Parameters
    ----------
    spec:
        The campaign grid to run.
    out_dir:
        Artifact directory.  ``None`` keeps results in memory only (the
        one-shot experiment wrappers use this mode).
    workers:
        Worker processes.  ``<= 1`` runs serially in-process, which is
        also the reference for the bit-identical-artifacts guarantee.
    resume:
        Skip cells whose artifact already exists in ``out_dir``.
    progress:
        Reporter for start/cell/finish hooks; default silent.
    mp_context:
        Multiprocessing start method override (``fork`` / ``spawn`` /
        ``forkserver``); default prefers ``fork`` where available.
    telemetry:
        Collect per-cell wall-clock telemetry.  Summaries land on
        :attr:`CampaignResult.telemetry` and (with ``out_dir``) as
        sidecars under ``<out>/telemetry/``; cell artifacts are
        byte-identical either way.
    """
    if workers < 1:
        raise CampaignError(f"workers must be >= 1, got {workers!r}")
    reporter = progress if progress is not None else NullProgress()
    cells = spec.expand()
    by_id = {cell.cell_id: cell for cell in cells}

    store: Optional[ArtifactStore] = None
    result = CampaignResult(spec=spec)
    if out_dir is not None:
        store = ArtifactStore(out_dir)
        store.initialize(spec)
        result.out_dir = store.root

    done_ids = store.completed_ids() & set(by_id) if (store and resume) else set()
    pending = [cell for cell in cells if cell.cell_id not in done_ids]
    result.skipped = len(done_ids)
    reporter.on_start(len(cells), len(done_ids))
    started = wall_clock()
    _log.info(
        "campaign %r: %d cells (%d already done), workers=%d, telemetry=%s",
        spec.name, len(cells), len(done_ids), workers, telemetry,
    )

    for cell_id in done_ids:
        _, payload = store.load_cell(cell_id)
        result.payloads[cell_id] = payload
        if telemetry:
            # A skipped cell keeps the telemetry its original run left
            # behind (if any) so the merged view still covers it.
            stored = store.load_cell_telemetry(cell_id)
            if stored is not None:
                result.telemetry[cell_id] = stored

    def record_outcome(
        cell_id: str,
        payload: Optional[dict],
        error: Optional[str],
        elapsed: float,
        summary: Optional[dict],
    ) -> None:
        cell = by_id[cell_id]
        if error is not None:
            result.failures[cell_id] = error
        else:
            result.payloads[cell_id] = payload
            if store is not None:
                store.write_cell(cell, payload)
            if summary is not None:
                result.telemetry[cell_id] = summary
                if store is not None:
                    store.write_cell_telemetry(cell_id, summary)
        result.executed += 1
        reporter.on_cell_done(cell, error is None, elapsed)

    if pending:
        tasks = [(cell.to_dict(), telemetry) for cell in pending]
        execute_pooled(
            _execute_cell_task,
            tasks,
            workers,
            record_outcome,
            mp_context=mp_context,
        )

    reporter.on_finish(
        result.executed, len(result.failures), wall_clock() - started
    )
    if result.failures:
        # Headline: the terminal exception line per cell.  Full
        # tracebacks ride along on the exception's ``failures`` attr.
        preview = "; ".join(
            f"{cell_id}: {message.strip().splitlines()[-1]}"
            for cell_id, message in list(result.failures.items())[:3]
        )
        tracebacks = "\n".join(
            f"--- cell {cell_id} ---\n{message}"
            for cell_id, message in result.failures.items()
        )
        raise CampaignError(
            f"{len(result.failures)}/{len(pending)} campaign cells failed "
            f"({preview})\n{tracebacks}",
            result.failures,
        )
    return result


def resume_campaign(
    out_dir: PathLike,
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    mp_context: Optional[str] = None,
    telemetry: bool = False,
) -> CampaignResult:
    """Resume the campaign recorded in ``out_dir``'s manifest."""
    spec = ArtifactStore(out_dir).load_spec()
    return run_campaign(
        spec,
        out_dir=out_dir,
        workers=workers,
        resume=True,
        progress=progress,
        mp_context=mp_context,
        telemetry=telemetry,
    )
