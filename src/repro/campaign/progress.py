"""Campaign progress reporting.

The runner is headless; it talks to the outside world through a
:class:`ProgressReporter`.  The CLI installs :class:`ConsoleProgress`,
library callers default to :class:`NullProgress`, and tests can install
a recording reporter to assert on scheduling behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.campaign.spec import CampaignCell


class ProgressReporter:
    """No-op base class; override any subset of the hooks."""

    def on_start(self, total: int, skipped: int) -> None:
        """Campaign begins: ``total`` cells in the grid, ``skipped``
        already complete on disk."""

    def on_cell_done(
        self, cell: CampaignCell, ok: bool, elapsed_s: float
    ) -> None:
        """One cell finished (``ok=False`` means it raised)."""

    def on_finish(self, executed: int, failed: int, elapsed_s: float) -> None:
        """Campaign over (all pending cells attempted)."""


#: Library default: silence.
NullProgress = ProgressReporter


class ConsoleProgress(ProgressReporter):
    """Line-per-cell progress with a running count and rough ETA."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._started_at = 0.0

    def _eta_s(self) -> Optional[float]:
        if self._done == 0:
            return None
        elapsed = time.monotonic() - self._started_at
        remaining = self._total - self._done
        return elapsed / self._done * remaining

    def on_start(self, total: int, skipped: int) -> None:
        self._total = total - skipped
        self._done = 0
        self._started_at = time.monotonic()
        print(
            f"campaign: {total} cells ({skipped} already complete, "
            f"{self._total} to run)",
            file=self._stream,
        )

    def on_cell_done(
        self, cell: CampaignCell, ok: bool, elapsed_s: float
    ) -> None:
        self._done += 1
        status = "ok" if ok else "FAILED"
        eta = self._eta_s()
        eta_text = f", eta {eta:.0f}s" if eta is not None and eta > 0 else ""
        print(
            f"[{self._done}/{self._total}] {cell.cell_id} "
            f"{cell.scenario}/{cell.protocol}/{cell.override_label} "
            f"seed={cell.seed} {status} ({elapsed_s:.2f}s{eta_text})",
            file=self._stream,
        )

    def on_finish(self, executed: int, failed: int, elapsed_s: float) -> None:
        print(
            f"campaign: {executed} cells executed, {failed} failed, "
            f"{elapsed_s:.1f}s wall",
            file=self._stream,
        )
