"""Fleet execution: one deployment, N users, one batched burst grid.

:func:`build_fleet` materializes a :class:`~repro.fleet.spec.FleetSpec`
onto the paper's street grid — every user gets a mobility trajectory
(driven by the user's own derived seed), a receive codebook, and a
protocol instance, all resolved through :mod:`repro.registry` — and
:func:`run_fleet_trial` runs it to completion and folds the per-user
event logs into fleet metrics.

Burst delivery uses the deployment's cross-user batched path by default
(``REPRO_FLEET_PATH=scalar`` selects the per-mobile reference loop);
both paths produce byte-identical artifacts for the same spec.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Union

import numpy as np

from repro.campaign.spec import SpecError, build_config, canonical_json
from repro.fleet.metrics import FleetUserResult, aggregate_users, user_result
from repro.fleet.progress import FleetProgress
from repro.fleet.spec import FleetSpec, UserSpec, synthesize_users
from repro.mobility.base import TimeShifted
from repro.net.deployment import Deployment
from repro.net.mobile import Mobile
from repro.obs import telemetry as _telemetry
from repro.obs.log import get_logger

PathLike = Union[str, Path]

_log = get_logger("fleet")

#: Run-phase slices between :meth:`FleetProgress.on_run` calls.  Slicing
#: only happens when a reporter is installed, and is event-for-event
#: identical to a single ``run_until`` (pinned by the equivalence suite).
PROGRESS_SLICES = 20

#: Fleet artifact schema version.
FLEET_FORMAT = 1


@dataclass
class FleetRun:
    """A built (not yet run) fleet: deployment plus resolved population."""

    spec: FleetSpec
    deployment: Deployment
    users: List[UserSpec]
    mobiles: List[Mobile]
    protocols: List[object]


@dataclass(frozen=True)
class FleetTrialResult:
    """Outcome of one fleet run: spec identity + per-user results + CDFs."""

    fleet: dict
    fleet_hash: str
    users: List[FleetUserResult]
    aggregates: dict

    def to_dict(self) -> dict:
        return {
            "format": FLEET_FORMAT,
            "fleet": self.fleet,
            "fleet_hash": self.fleet_hash,
            "users": [user.to_dict() for user in self.users],
            "aggregates": self.aggregates,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetTrialResult":
        try:
            return cls(
                fleet=dict(record["fleet"]),
                fleet_hash=str(record["fleet_hash"]),
                users=[FleetUserResult.from_dict(u) for u in record["users"]],
                aggregates=dict(record["aggregates"]),
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise SpecError(
                f"not a fleet artifact (missing or malformed field: {error})"
            ) from error


def build_fleet(
    spec: FleetSpec, progress: Optional[FleetProgress] = None
) -> FleetRun:
    """Materialize a fleet spec onto the street grid.

    Construction order is user-index order throughout (mobiles, then
    each user's protocol), so both burst-delivery paths — and any worker
    count driving this via a campaign — see identical RNG stream
    creation and event scheduling.  ``progress`` receives one
    :meth:`~repro.fleet.progress.FleetProgress.on_build` call per user.
    """
    from repro.experiments.scenarios import build_street_grid_deployment
    from repro.registry import SCENARIOS, make_codebook, make_protocol

    _log.info("building fleet %r: %d users, seed %d",
              spec.name, spec.n_users, spec.seed)
    deployment = build_street_grid_deployment(
        spec.seed, n_cells=spec.n_cells, bs_beamwidth_deg=spec.bs_beamwidth_deg
    )
    users = synthesize_users(spec)
    mobiles: List[Mobile] = []
    protocols: List[object] = []
    for user in users:
        trajectory = SCENARIOS.get(user.scenario).make_trajectory(
            rng=np.random.default_rng(user.seed), start_x=user.start_x
        )
        if user.start_offset_s > 0.0:
            trajectory = TimeShifted(trajectory, user.start_offset_s)
        mobile = deployment.add_mobile(
            Mobile(user.user_id, trajectory, make_codebook(user.codebook))
        )
        mobiles.append(mobile)
    # Protocols attach after the whole population exists: a protocol
    # constructor may inspect deployment topology.
    for index, (user, mobile) in enumerate(zip(users, mobiles)):
        protocols.append(
            make_protocol(
                user.protocol,
                deployment,
                mobile,
                user.serving_cell,
                build_config(user.overrides),
            )
        )
        if progress is not None:
            progress.on_build(index + 1, len(users))
    return FleetRun(
        spec=spec,
        deployment=deployment,
        users=users,
        mobiles=mobiles,
        protocols=protocols,
    )


def _advance_run(run: FleetRun, progress: Optional[FleetProgress]) -> None:
    """Advance the deployment by the spec duration, reporting progress.

    Without a reporter this is one ``deployment.run`` call.  With one,
    the same duration is covered in :data:`PROGRESS_SLICES` absolute
    targets — ``run_until`` leaves the clock exactly on each target, so
    every event fires at the same time either way — with an early break
    when a callback stopped the simulator (matching the single-call
    behaviour of leaving the remaining time unadvanced).
    """
    duration_s = run.spec.duration_s
    if progress is None:
        run.deployment.run(duration_s)
        return
    sim = run.deployment.sim
    for slice_index in range(1, PROGRESS_SLICES + 1):
        if slice_index == PROGRESS_SLICES:
            target = duration_s
        else:
            target = duration_s * slice_index / PROGRESS_SLICES
        run.deployment.run(max(0.0, target - sim.now))
        progress.on_run(sim.now, duration_s)
        if sim.stop_requested:
            break


def run_built_fleet(
    run: FleetRun, progress: Optional[FleetProgress] = None
) -> FleetTrialResult:
    """Run an already-built fleet to completion and aggregate its metrics.

    Split from :func:`run_fleet_trial` so callers that need the live
    deployment afterwards (``repro obs export`` reads its trace and the
    ambient telemetry) can build, run, and then inspect.
    """
    spec = run.spec
    telemetry = _telemetry.current()
    started: List = []
    started_wall = time.monotonic()
    if progress is not None:
        progress.on_start(len(run.users), spec.duration_s)
    try:
        with telemetry.span("fleet.run"):
            for protocol in run.protocols:
                protocol.start()
                started.append(protocol)
            _advance_run(run, progress)
    finally:
        # Mirror the Session contract: every protocol that started is
        # stopped even when a later start() or the run itself raises.
        for protocol in started:
            protocol.stop()
        run.deployment.stop()
    with telemetry.span("fleet.aggregate"):
        results = [
            user_result(user, mobile, protocol, spec.duration_s)
            for user, mobile, protocol in zip(
                run.users, run.mobiles, run.protocols
            )
        ]
        trial = FleetTrialResult(
            fleet=spec.to_dict(),
            fleet_hash=spec.fleet_hash,
            users=results,
            aggregates=aggregate_users(results, spec.duration_s),
        )
    elapsed = time.monotonic() - started_wall
    if progress is not None:
        progress.on_finish(len(run.users), elapsed)
    _log.info("fleet %r: %d users ran %gs simulated in %.1fs wall",
              spec.name, len(run.users), spec.duration_s, elapsed)
    return trial


def run_fleet_trial(
    spec: FleetSpec, progress: Optional[FleetProgress] = None
) -> FleetTrialResult:
    """Run one fleet to completion and aggregate its population metrics."""
    telemetry = _telemetry.current()
    with telemetry.span("fleet.build"):
        run = build_fleet(spec, progress)
    return run_built_fleet(run, progress)


# --------------------------------------------------------------- artifacts
def write_fleet_artifact(result: FleetTrialResult, path: PathLike) -> Path:
    """Write a fleet result as canonical JSON (sorted keys, atomic).

    Canonical encoding is what makes the determinism contract testable
    at the byte level: same spec -> same bytes, across burst paths,
    worker counts and processes.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = canonical_json(result.to_dict())
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    tmp.replace(target)
    return target


def load_fleet_artifact(path: PathLike) -> FleetTrialResult:
    """Read a fleet artifact written by :func:`write_fleet_artifact`."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    return FleetTrialResult.from_dict(record)
