"""Fleet execution: one deployment, N users, one batched burst grid.

:func:`build_fleet` materializes a :class:`~repro.fleet.spec.FleetSpec`
onto the paper's street grid — every user gets a mobility trajectory
(driven by the user's own derived seed), a receive codebook, and a
protocol instance, all resolved through :mod:`repro.registry` — and
:func:`run_fleet_trial` runs it to completion and folds the per-user
event logs into fleet metrics.

Burst delivery uses the deployment's cross-user batched path by default
(``REPRO_FLEET_PATH=scalar`` selects the per-mobile reference loop);
both paths produce byte-identical artifacts for the same spec.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.stats import QuantileReservoir
from repro.campaign.runner import CampaignError, execute_pooled, progress_sink
from repro.campaign.spec import SpecError, build_config, canonical_json
from repro.campaign.store import StoreError
from repro.fleet.metrics import (
    FleetAccumulator,
    FleetUserResult,
    aggregate_users,
    user_result,
)
from repro.fleet.progress import (
    FleetProgress,
    QueueShardProgress,
    ShardProgressAggregator,
)
from repro.fleet.spec import (
    FleetShard,
    FleetSpec,
    UserSpec,
    partition_fleet,
    synthesize_users,
)
from repro.fleet.store import FleetShardStore
from repro.mobility.base import TimeShifted
from repro.net.deployment import Deployment
from repro.net.mobile import Mobile
from repro.obs import resources as _resources
from repro.obs import telemetry as _telemetry
from repro.obs.monitor import MonitorConfig, StallDetector
from repro.obs.telemetry import wall_clock
from repro.obs.log import get_logger

PathLike = Union[str, Path]

_log = get_logger("fleet")


class FleetError(CampaignError):
    """Raised for sharded-fleet misuse or failed shards.

    Subclasses :class:`~repro.campaign.runner.CampaignError` — the
    shards run on the campaign worker pool and the CLI maps both to the
    same exit conventions.
    """

#: Run-phase slices between :meth:`FleetProgress.on_run` calls.  Slicing
#: only happens when a reporter is installed, and is event-for-event
#: identical to a single ``run_until`` (pinned by the equivalence suite).
PROGRESS_SLICES = 20

#: Fleet artifact schema version.
FLEET_FORMAT = 1


@dataclass
class FleetRun:
    """A built (not yet run) fleet: deployment plus resolved population."""

    spec: FleetSpec
    deployment: Deployment
    users: List[UserSpec]
    mobiles: List[Mobile]
    protocols: List[object]


@dataclass(frozen=True)
class FleetTrialResult:
    """Outcome of one fleet run: spec identity + per-user results + CDFs.

    ``users`` is ``None`` for streaming (large-N sharded) runs — the
    per-user results were folded into the aggregates as they were
    produced and never retained, which is what keeps artifact size and
    merge memory flat in the population size.
    """

    fleet: dict
    fleet_hash: str
    users: Optional[List[FleetUserResult]]
    aggregates: dict

    def to_dict(self) -> dict:
        return {
            "format": FLEET_FORMAT,
            "fleet": self.fleet,
            "fleet_hash": self.fleet_hash,
            "users": (
                None
                if self.users is None
                else [user.to_dict() for user in self.users]
            ),
            "aggregates": self.aggregates,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetTrialResult":
        try:
            return cls(
                fleet=dict(record["fleet"]),
                fleet_hash=str(record["fleet_hash"]),
                users=(
                    None
                    if record["users"] is None
                    else [FleetUserResult.from_dict(u) for u in record["users"]]
                ),
                aggregates=dict(record["aggregates"]),
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise SpecError(
                f"not a fleet artifact (missing or malformed field: {error})"
            ) from error


def build_fleet(
    spec: FleetSpec,
    progress: Optional[FleetProgress] = None,
    users: Optional[List[UserSpec]] = None,
    trace: bool = True,
) -> FleetRun:
    """Materialize a fleet spec onto the street grid.

    Construction order is user-index order throughout (mobiles, then
    each user's protocol), so both burst-delivery paths — and any worker
    count driving this via a campaign — see identical RNG stream
    creation and event scheduling.  ``progress`` receives one
    :meth:`~repro.fleet.progress.FleetProgress.on_build` call per user.

    ``users`` restricts the build to a subset of the population (a
    shard); every user's streams and outcomes are unchanged by the
    subsetting because fleet deployments run with per-link decode
    streams.  ``trace=False`` drops the O(events) trace recorder —
    shard workers use it to keep memory flat; traces are never part of
    fleet artifacts.
    """
    from repro.experiments.scenarios import (
        build_corridor_deployment,
        build_street_grid_deployment,
    )
    from repro.net.deployment import DeploymentConfig
    from repro.registry import SCENARIOS, make_codebook, make_protocol

    _log.info("building fleet %r: %d users, seed %d",
              spec.name, spec.n_users, spec.seed)
    # The run never advances past duration_s, so the spatial cell index
    # may bound horizon-dependent trajectories over exactly that window.
    config = DeploymentConfig(
        trace_enabled=trace, per_link_decode=True, horizon_s=spec.duration_s
    )
    if spec.topology == "corridor":
        deployment = build_corridor_deployment(
            spec.seed,
            config=config,
            n_cells=spec.n_cells,
            cell_pitch_m=spec.cell_pitch_m,
            phase_slots=spec.phase_slots,
            pathloss_exponent=spec.pathloss_exponent,
            bs_beamwidth_deg=spec.bs_beamwidth_deg,
        )
    else:
        deployment = build_street_grid_deployment(
            spec.seed,
            config=config,
            n_cells=spec.n_cells,
            bs_beamwidth_deg=spec.bs_beamwidth_deg,
        )
    if users is None:
        users = synthesize_users(spec)
    mobiles: List[Mobile] = []
    protocols: List[object] = []
    for user in users:
        trajectory = SCENARIOS.get(user.scenario).make_trajectory(
            rng=np.random.default_rng(user.seed), start_x=user.start_x
        )
        if user.start_offset_s > 0.0:
            trajectory = TimeShifted(trajectory, user.start_offset_s)
        mobile = deployment.add_mobile(
            Mobile(user.user_id, trajectory, make_codebook(user.codebook))
        )
        mobiles.append(mobile)
    # Protocols attach after the whole population exists: a protocol
    # constructor may inspect deployment topology.
    for index, (user, mobile) in enumerate(zip(users, mobiles)):
        protocols.append(
            make_protocol(
                user.protocol,
                deployment,
                mobile,
                user.serving_cell,
                build_config(user.overrides),
            )
        )
        if progress is not None:
            progress.on_build(index + 1, len(users))
    return FleetRun(
        spec=spec,
        deployment=deployment,
        users=users,
        mobiles=mobiles,
        protocols=protocols,
    )


def _advance_run(run: FleetRun, progress: Optional[FleetProgress]) -> None:
    """Advance the deployment by the spec duration, reporting progress.

    Without a reporter this is one ``deployment.run`` call.  With one,
    the same duration is covered in :data:`PROGRESS_SLICES` absolute
    targets — ``run_until`` leaves the clock exactly on each target, so
    every event fires at the same time either way — with an early break
    when a callback stopped the simulator (matching the single-call
    behaviour of leaving the remaining time unadvanced).
    """
    duration_s = run.spec.duration_s
    if progress is None:
        run.deployment.run(duration_s)
        return
    sim = run.deployment.sim
    for slice_index in range(1, PROGRESS_SLICES + 1):
        if slice_index == PROGRESS_SLICES:
            target = duration_s
        else:
            target = duration_s * slice_index / PROGRESS_SLICES
        run.deployment.run(max(0.0, target - sim.now))
        progress.on_run(sim.now, duration_s)
        if sim.stop_requested:
            break


def run_built_fleet(
    run: FleetRun, progress: Optional[FleetProgress] = None
) -> FleetTrialResult:
    """Run an already-built fleet to completion and aggregate its metrics.

    Split from :func:`run_fleet_trial` so callers that need the live
    deployment afterwards (``repro obs export`` reads its trace and the
    ambient telemetry) can build, run, and then inspect.
    """
    spec = run.spec
    telemetry = _telemetry.current()
    started: List = []
    started_wall = wall_clock()
    if progress is not None:
        progress.bind_events(run.deployment.sim)
        progress.on_start(len(run.users), spec.duration_s)
    try:
        with telemetry.span("fleet.run"):
            for protocol in run.protocols:
                protocol.start()
                started.append(protocol)
            _advance_run(run, progress)
    finally:
        # Mirror the Session contract: every protocol that started is
        # stopped even when a later start() or the run itself raises.
        for protocol in started:
            protocol.stop()
        run.deployment.stop()
    with telemetry.span("fleet.aggregate"):
        results = [
            user_result(user, mobile, protocol, spec.duration_s)
            for user, mobile, protocol in zip(
                run.users, run.mobiles, run.protocols
            )
        ]
        trial = FleetTrialResult(
            fleet=spec.to_dict(),
            fleet_hash=spec.fleet_hash,
            users=results,
            aggregates=aggregate_users(results, spec.duration_s),
        )
    elapsed = wall_clock() - started_wall
    if progress is not None:
        progress.on_finish(len(run.users), elapsed)
    _log.info("fleet %r: %d users ran %gs simulated in %.1fs wall",
              spec.name, len(run.users), spec.duration_s, elapsed)
    return trial


def run_fleet_trial(
    spec: FleetSpec, progress: Optional[FleetProgress] = None
) -> FleetTrialResult:
    """Run one fleet to completion and aggregate its population metrics."""
    telemetry = _telemetry.current()
    with telemetry.span("fleet.build"):
        run = build_fleet(spec, progress)
    return run_built_fleet(run, progress)


# --------------------------------------------------------------- artifacts
def write_fleet_artifact(result: FleetTrialResult, path: PathLike) -> Path:
    """Write a fleet result as canonical JSON (sorted keys, atomic).

    Canonical encoding is what makes the determinism contract testable
    at the byte level: same spec -> same bytes, across burst paths,
    worker counts and processes.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    text = canonical_json(result.to_dict())
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(text + "\n", encoding="utf-8")
    tmp.replace(target)
    return target


def load_fleet_artifact(path: PathLike) -> FleetTrialResult:
    """Read a fleet artifact written by :func:`write_fleet_artifact`."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    return FleetTrialResult.from_dict(record)


# ----------------------------------------------------------- sharded fleets
#: Shard artifact schema version.
SHARD_FORMAT = 1

#: Above this population, sharded runs default to streaming aggregation
#: (``stream=None``): per-user results are folded into reservoirs and
#: dropped, keeping shard artifacts and merge memory flat in N.  At or
#: below it, runs retain per-user results, and the merged artifact is
#: byte-identical to the unsharded run — that regime is where the
#: equivalence suite pins correctness.
STREAM_THRESHOLD = 10_000


def run_shard(
    shard: FleetShard,
    stream: bool = False,
    capacity: Optional[int] = None,
    progress: Optional[FleetProgress] = None,
) -> dict:
    """Run one shard of a partitioned fleet; returns its JSON-safe payload.

    Synthesizes only this shard's users (keyed synthesis makes that
    O(shard size)), builds the deployment with tracing off, runs it, and
    folds each user into a :class:`~repro.fleet.metrics.FleetAccumulator`.
    With ``stream=True`` the per-user dicts are dropped as they are
    folded (``capacity`` bounds the quantile reservoirs); otherwise they
    are retained in the payload and the accumulator stays exact.
    """
    spec = shard.spec
    telemetry = _telemetry.current()
    with telemetry.span("fleet.build"):
        run = build_fleet(
            spec, progress=progress, users=shard.synthesize(), trace=False
        )
    started: List = []
    if progress is not None:
        # Monitor heartbeats report cumulative engine events; the
        # counter is read-only diagnostics, never simulation input.
        progress.bind_events(run.deployment.sim)
        progress.on_start(len(run.users), spec.duration_s)
    try:
        with telemetry.span("fleet.run"):
            for protocol in run.protocols:
                protocol.start()
                started.append(protocol)
            _advance_run(run, progress)
    finally:
        for protocol in started:
            protocol.stop()
        run.deployment.stop()
    with telemetry.span("fleet.aggregate"):
        accumulator = FleetAccumulator(
            spec.duration_s, capacity=capacity if stream else None
        )
        retained: Optional[List[dict]] = None if stream else []
        for user, mobile, protocol in zip(
            run.users, run.mobiles, run.protocols
        ):
            result = user_result(user, mobile, protocol, spec.duration_s)
            accumulator.add_user(result)
            if retained is not None:
                retained.append(result.to_dict())
    return {
        "format": SHARD_FORMAT,
        "shard": shard.to_dict(),
        "shard_hash": shard.shard_hash,
        "users": retained,
        "accumulator": accumulator.to_dict(),
    }


def _execute_shard_task(
    task: dict,
) -> Tuple[
    str,
    Optional[dict],
    Optional[str],
    float,
    Optional[dict],
    Optional[dict],
]:
    """Pool task mirroring the campaign worker contract.

    Returns ``(shard_hash, payload|None, error|None, elapsed_s,
    telemetry|None, stats|None)`` — the trailing ``stats`` dict carries
    worker-process peak RSS/CPU (from :mod:`repro.obs.resources`) so
    the bench suite can report sharded memory behaviour without
    instrumenting the driver.
    """
    shard_hash = task["shard_hash"]
    started = wall_clock()
    hub = _telemetry.Telemetry() if task["telemetry"] else _telemetry.DISABLED
    try:
        shard = FleetShard.from_dict(task["shard"])
        sink = progress_sink()
        progress = (
            QueueShardProgress(
                sink,
                shard.shard_index,
                heartbeat_s=(
                    task.get("heartbeat_s") if task.get("monitor") else None
                ),
            )
            if sink is not None
            else None
        )
        with _telemetry.use(hub):
            payload = run_shard(
                shard,
                stream=task["stream"],
                capacity=task["capacity"],
                progress=progress,
            )
        summary = hub.summary() if task["telemetry"] else None
        stats = {
            "max_rss_kb": _resources.max_rss_kb(),
            "cpu_s": _resources.cpu_s(),
        }
        return shard_hash, payload, None, wall_clock() - started, summary, stats
    except Exception:  # collected, reported, retried on resume
        message = traceback.format_exc()
        return shard_hash, None, message, wall_clock() - started, None, None


@dataclass
class ShardedFleetResult:
    """Outcome of one :func:`run_fleet_sharded` invocation."""

    spec: FleetSpec
    n_shards: int
    stream: bool
    #: The merged fleet result (set once all shards completed).
    merged: Optional[FleetTrialResult] = None
    executed: int = 0
    skipped: int = 0
    out_dir: Optional[Path] = None
    #: Per-shard wall-clock telemetry summaries keyed by shard hash
    #: (``--telemetry`` runs only); kept out of artifacts.
    telemetry: Dict[str, dict] = field(default_factory=dict)
    #: Per-shard worker stats keyed by shard hash (``max_rss_kb`` etc.);
    #: advisory, for benchmarking only.
    shard_stats: Dict[str, dict] = field(default_factory=dict)

    def merged_telemetry(self) -> Optional[dict]:
        """All per-shard summaries folded into one, or ``None`` if none."""
        from repro.obs.report import merge_summaries

        if not self.telemetry:
            return None
        return merge_summaries(
            self.telemetry[shard_hash] for shard_hash in sorted(self.telemetry)
        )


def _merge_shard_payloads(
    spec: FleetSpec,
    shards: Sequence[FleetShard],
    payloads: Mapping[str, dict],
) -> FleetTrialResult:
    """Fold per-shard payloads into one fleet result, in shard order.

    The merged aggregates are multiset-determined: exact accumulators
    merge into the same sorted value multisets the unsharded run sees,
    so the retained-mode merged artifact is byte-identical to the
    unsharded one.  Retained users are re-sorted by user index because
    shard membership interleaves index order.
    """
    accumulator: Optional[FleetAccumulator] = None
    users: Optional[List[FleetUserResult]] = []
    for shard in shards:
        payload = payloads[shard.shard_hash]
        part = FleetAccumulator.from_dict(payload["accumulator"])
        if accumulator is None:
            accumulator = part
        else:
            accumulator.merge(part)
        if users is not None:
            if payload["users"] is None:
                users = None
            else:
                users.extend(
                    FleetUserResult.from_dict(record)
                    for record in payload["users"]
                )
    if accumulator is None:  # pragma: no cover - partition_fleet forbids K=0
        raise FleetError("cannot merge an empty shard set")
    if users is not None:
        users.sort(key=lambda user: int(user.user_id[2:]))
    return FleetTrialResult(
        fleet=spec.to_dict(),
        fleet_hash=spec.fleet_hash,
        users=users,
        aggregates=accumulator.aggregates(),
    )


def run_fleet_sharded(
    spec: FleetSpec,
    n_shards: int,
    out_dir: Optional[PathLike] = None,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[FleetProgress] = None,
    telemetry: bool = False,
    stream: Optional[bool] = None,
    capacity: Optional[int] = None,
    mp_context: Optional[str] = None,
    monitor: bool = False,
) -> ShardedFleetResult:
    """Partition a fleet into shards and run them on the campaign pool.

    Users are assigned to shards by their content-hash-derived seed
    (order-independent), each shard synthesizes exactly its own users,
    and shards execute like campaign cells: on the shared worker pool,
    one artifact per shard named by the shard's content hash, manifest
    + resume semantics, failures collected and raised at the end.  The
    driver merges completed shards (in shard-index order) into the same
    :class:`FleetTrialResult` the unsharded runner produces — and in
    retained mode (``stream=False``) the merged artifact is
    byte-identical to the unsharded one.

    Parameters mirror :func:`repro.campaign.runner.run_campaign`, plus:

    ``stream``
        ``True`` drops per-user results in favour of streaming
        reservoirs (memory flat in N); ``False`` retains them; ``None``
        (default) streams when ``spec.n_users > STREAM_THRESHOLD``.
    ``capacity``
        Per-metric quantile reservoir capacity for streaming runs
        (default :data:`~repro.analysis.stats.QuantileReservoir.DEFAULT_CAPACITY`).
    ``monitor``
        Enable live monitoring: workers post throttled heartbeats
        (events/s, RSS/CPU) over the progress pipe and the driver
        flags shards silent past the stall threshold, both surfaced
        through ``progress`` hooks.  Thresholds come from the declared
        ``REPRO_HEARTBEAT_S`` / ``REPRO_STALL_S`` switches.  Purely
        observational — artifacts are byte-identical either way.
    """
    if workers < 1:
        raise FleetError(f"workers must be >= 1, got {workers!r}")
    shards = partition_fleet(spec, n_shards)  # validates n_shards
    if stream is None:
        stream = spec.n_users > STREAM_THRESHOLD
    if stream and capacity is None:
        capacity = QuantileReservoir.DEFAULT_CAPACITY
    if not stream:
        capacity = None
    by_hash = {shard.shard_hash: shard for shard in shards}

    store: Optional[FleetShardStore] = None
    result = ShardedFleetResult(
        spec=spec, n_shards=n_shards, stream=stream, merged=None
    )
    if out_dir is not None:
        store = FleetShardStore(out_dir)
        store.initialize(
            spec,
            n_shards,
            {shard.shard_index: shard.shard_hash for shard in shards},
            stream=stream,
            capacity=capacity,
        )
        result.out_dir = store.root

    done_hashes = (
        store.completed_hashes() & set(by_hash)
        if (store and resume)
        else set()
    )
    pending = [s for s in shards if s.shard_hash not in done_hashes]
    result.skipped = len(done_hashes)

    reporter = progress if progress is not None else FleetProgress()
    config = MonitorConfig.from_switches() if monitor else None
    stall = StallDetector(config.stall_s) if monitor else None
    aggregator = ShardProgressAggregator(
        reporter, spec.n_users, spec.duration_s, stall=stall
    )
    reporter.on_start(spec.n_users, spec.duration_s)
    started_wall = wall_clock()
    _log.info(
        "fleet %r: %d users in %d shards (%d already done), workers=%d, "
        "stream=%s",
        spec.name, spec.n_users, n_shards, len(done_hashes), workers, stream,
    )

    payloads: Dict[str, dict] = {}
    failures: Dict[str, str] = {}
    for shard_hash in done_hashes:
        payloads[shard_hash] = store.load_shard(shard_hash)
        if telemetry:
            stored = store.load_shard_telemetry(shard_hash)
            if stored is not None:
                result.telemetry[shard_hash] = stored
    done_count = len(done_hashes)
    if done_count:
        reporter.on_shard_done(done_count, n_shards, 0.0)

    def record_outcome(
        shard_hash: str,
        payload: Optional[dict],
        error: Optional[str],
        elapsed: float,
        summary: Optional[dict],
        stats: Optional[dict],
    ) -> None:
        nonlocal done_count
        if error is not None:
            failures[shard_hash] = error
        else:
            payloads[shard_hash] = payload
            if store is not None:
                store.write_shard(shard_hash, payload)
            if summary is not None:
                result.telemetry[shard_hash] = summary
                if store is not None:
                    store.write_shard_telemetry(shard_hash, summary)
            if stats is not None:
                result.shard_stats[shard_hash] = stats
            done_count += 1
            aggregator.shard_finished(by_hash[shard_hash].shard_index)
            reporter.on_shard_done(done_count, n_shards, elapsed)
        result.executed += 1

    if pending:
        if stall is not None:
            for shard in pending:
                stall.watch(shard.shard_index)
        tasks = [
            {
                "shard": shard.to_dict(),
                "shard_hash": shard.shard_hash,
                "telemetry": telemetry,
                "stream": stream,
                "capacity": capacity,
                "monitor": monitor,
                "heartbeat_s": config.heartbeat_s if monitor else None,
            }
            for shard in pending
        ]
        execute_pooled(
            _execute_shard_task,
            tasks,
            workers,
            record_outcome,
            mp_context=mp_context,
            progress_handler=(
                aggregator.handle
                if (progress is not None or monitor)
                else None
            ),
            tick=aggregator.tick if monitor else None,
        )

    if failures:
        preview = "; ".join(
            f"shard {by_hash[shard_hash].shard_index}: "
            f"{message.strip().splitlines()[-1]}"
            for shard_hash, message in list(failures.items())[:3]
        )
        tracebacks = "\n".join(
            f"--- shard {by_hash[shard_hash].shard_index} "
            f"({shard_hash}) ---\n{message}"
            for shard_hash, message in failures.items()
        )
        raise FleetError(
            f"{len(failures)}/{len(pending)} fleet shards failed "
            f"({preview})\n{tracebacks}",
            failures,
        )

    result.merged = _merge_shard_payloads(spec, shards, payloads)
    if store is not None:
        write_fleet_artifact(result.merged, store.merged_path)
    reporter.on_finish(spec.n_users, wall_clock() - started_wall)
    return result


def load_sharded_fleet(out_dir: PathLike) -> FleetTrialResult:
    """Load (and merge, if needed) a sharded fleet output directory.

    Prefers the merged ``fleet.json`` the driver wrote on completion;
    falls back to merging the shard artifacts, and raises
    :class:`~repro.campaign.store.StoreError` when shards are missing —
    an incomplete run should be resumed, not summarised.
    """
    store = FleetShardStore(out_dir)
    record = store.load_manifest_record()
    if record is None:
        raise StoreError(f"{out_dir}: no sharded-fleet manifest found")
    if store.merged_path.exists():
        return load_fleet_artifact(store.merged_path)
    spec = FleetSpec.from_dict(record["fleet"])
    shards = partition_fleet(spec, int(record["n_shards"]))
    done = store.completed_hashes()
    missing = [s for s in shards if s.shard_hash not in done]
    if missing:
        raise StoreError(
            f"{out_dir}: incomplete sharded run "
            f"({len(missing)}/{len(shards)} shards missing); re-run "
            f"`repro fleet run --shards {len(shards)}` against this "
            "directory to finish it"
        )
    payloads = {s.shard_hash: store.load_shard(s.shard_hash) for s in shards}
    return _merge_shard_payloads(spec, shards, payloads)
