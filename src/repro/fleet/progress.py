"""Fleet progress reporting (mirrors :mod:`repro.campaign.progress`).

The fleet runner is headless; ``repro fleet run`` installs
:class:`ConsoleFleetProgress` so a long population run shows per-user
build progress and a simulated-time ETA instead of running silently.
Library callers default to :class:`FleetProgress` (silence), and tests
install recording reporters to assert on the hook sequence.

Installing a reporter never changes results: the run phase advances the
simulated clock in slices between :meth:`FleetProgress.on_run` calls,
and slicing ``run_until`` is event-for-event identical to one call (the
equivalence suite pins this byte-for-byte).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class FleetProgress:
    """No-op base class; override any subset of the hooks."""

    def on_build(self, built: int, total: int) -> None:
        """One user materialized (trajectory + codebook + protocol)."""

    def on_start(self, users: int, duration_s: float) -> None:
        """Population built; the simulated run begins."""

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        """The simulated clock reached ``sim_now_s`` of ``duration_s``."""

    def on_finish(self, users: int, elapsed_s: float) -> None:
        """Run complete (``elapsed_s`` is wall-clock)."""

    def on_shard_done(self, done: int, total: int, elapsed_s: float) -> None:
        """One shard of a sharded run completed (or resumed from disk)."""

    def on_heartbeat(self, shard_index: int, beat: dict) -> None:
        """Monitor heartbeat from a worker (events, RSS/CPU sample)."""

    def on_stall(self, shard_index: int, silent_s: float) -> None:
        """A watched shard has been silent for ``silent_s`` seconds."""

    def bind_events(self, sim) -> None:
        """Offer the built simulator so heartbeats can report events/s."""


#: Library default: silence.
NullFleetProgress = FleetProgress


class ConsoleFleetProgress(FleetProgress):
    """Build counter plus run-phase percentage with a wall-clock ETA.

    With ``watch=True`` (``repro fleet run --watch``) the per-event
    lines collapse into one ``\\r``-refreshed status line — shards
    done, aggregate simulated time, fleet-wide events/s, peak worker
    RSS — closed with a newline on finish.  Stall warnings always get
    their own full line, in either mode.
    """

    def __init__(
        self, stream: Optional[IO[str]] = None, watch: bool = False
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._watch = watch
        self._started_at = 0.0
        self._last_build_line = 0
        # Watch/heartbeat state: per-shard last beat for rate math.
        self._beat_prev: dict = {}
        self._rates: dict = {}
        self._rss_kb: dict = {}
        self._built = (0, 0)
        self._run = (0.0, 0.0)
        self._shards = (0, 0)
        self._line_len = 0

    # ----------------------------------------------------- watch line
    def _render(self) -> None:
        parts = []
        if self._shards[1]:
            parts.append(f"{self._shards[0]}/{self._shards[1]} shards")
        if self._built[1]:
            parts.append(f"built {self._built[0]}/{self._built[1]}")
        sim_now, duration = self._run
        if duration > 0.0:
            fraction = min(1.0, sim_now / duration)
            parts.append(
                f"t={sim_now:.2f}/{duration:g}s ({100.0 * fraction:.0f}%)"
            )
        rate = sum(self._rates.values())
        if rate > 0:
            parts.append(f"{rate:,.0f} ev/s")
        rss = [kb for kb in self._rss_kb.values() if kb]
        if rss:
            parts.append(f"rss {max(rss) / 1024:.0f}MB/worker")
        line = "fleet: " + " | ".join(parts) if parts else "fleet: starting"
        pad = max(0, self._line_len - len(line))
        self._line_len = len(line)
        print("\r" + line + " " * pad, end="", file=self._stream, flush=True)

    def _close_line(self) -> None:
        if self._watch and self._line_len:
            print(file=self._stream)
            self._line_len = 0

    # ----------------------------------------------------- base hooks
    def on_build(self, built: int, total: int) -> None:
        self._built = (built, total)
        if self._watch:
            self._render()
            return
        # Cap the build chatter at ~10 lines regardless of fleet size.
        step = max(1, total // 10)
        if built == total or built - self._last_build_line >= step:
            self._last_build_line = built
            print(f"fleet: built {built}/{total} users", file=self._stream)

    def on_start(self, users: int, duration_s: float) -> None:
        self._started_at = time.monotonic()
        if self._watch:
            self._run = (0.0, duration_s)
            self._render()
            return
        print(
            f"fleet: running {users} users for {duration_s:g}s simulated",
            file=self._stream,
        )

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        if duration_s <= 0.0:
            return
        if self._watch:
            self._run = (sim_now_s, duration_s)
            self._render()
            return
        fraction = min(1.0, sim_now_s / duration_s)
        elapsed = time.monotonic() - self._started_at
        eta = elapsed * (1.0 - fraction) / fraction if fraction > 0.0 else None
        eta_text = f", eta {eta:.0f}s" if eta is not None and eta > 0.05 else ""
        print(
            f"fleet: t={sim_now_s:.2f}/{duration_s:g}s "
            f"({100.0 * fraction:.0f}%{eta_text})",
            file=self._stream,
        )

    def on_finish(self, users: int, elapsed_s: float) -> None:
        self._close_line()
        print(
            f"fleet: {users} users done in {elapsed_s:.1f}s wall",
            file=self._stream,
        )

    def on_shard_done(self, done: int, total: int, elapsed_s: float) -> None:
        self._shards = (done, total)
        if self._watch:
            self._render()
            return
        print(
            f"fleet: shard {done}/{total} done ({elapsed_s:.1f}s)",
            file=self._stream,
        )

    # -------------------------------------------------- monitor hooks
    def on_heartbeat(self, shard_index: int, beat: dict) -> None:
        now = time.monotonic()
        events = beat.get("events")
        prev = self._beat_prev.get(shard_index)
        if (
            prev is not None
            and events is not None
            and prev[0] is not None
            and now > prev[1]
        ):
            self._rates[shard_index] = max(
                0.0, (events - prev[0]) / (now - prev[1])
            )
        self._beat_prev[shard_index] = (events, now)
        if beat.get("rss_kb"):
            self._rss_kb[shard_index] = beat["rss_kb"]
        if self._watch:
            self._render()
            return
        parts = [f"fleet: hb shard {shard_index} {beat.get('phase', '?')}"]
        if beat.get("sim_now_s") is not None:
            parts.append(f"t={beat['sim_now_s']:.2f}s")
        if shard_index in self._rates:
            parts.append(f"{self._rates[shard_index]:,.0f} ev/s")
        if beat.get("rss_kb"):
            parts.append(f"rss={beat['rss_kb'] / 1024:.0f}MB")
        if beat.get("cpu_s") is not None:
            parts.append(f"cpu={beat['cpu_s']:.1f}s")
        print(" ".join(parts), file=self._stream)

    def on_stall(self, shard_index: int, silent_s: float) -> None:
        self._close_line()
        print(
            f"fleet: WARNING shard {shard_index} silent for {silent_s:.0f}s",
            file=self._stream,
        )
        if self._watch:
            self._render()


# ------------------------------------------------------------- sharded runs
class QueueShardProgress(FleetProgress):
    """Worker-side adapter: forwards hooks as events on the pool sink.

    Installed inside shard workers; events cross the pool pipe to the
    driver's :class:`ShardProgressAggregator`.  Build chatter is
    throttled per shard (a million-user run must not flood the pipe
    with per-user events); run-slice events are already bounded by
    :data:`repro.fleet.runner.PROGRESS_SLICES`.

    With ``heartbeat_s`` set (the monitor is on), a
    :class:`repro.obs.monitor.HeartbeatEmitter` piggybacks on the same
    sink: every build/run hook offers it a chance to post a throttled
    ``("hb", shard, beat)`` event carrying events/s inputs and an
    RSS/CPU sample.  The emitter only observes — simulation state is
    never touched, so artifacts stay byte-identical monitor on or off.
    """

    def __init__(
        self,
        sink,
        shard_index: int,
        heartbeat_s: Optional[float] = None,
    ) -> None:
        self._sink = sink
        self._shard = shard_index
        self._last_built = 0
        self._heartbeat = None
        if heartbeat_s is not None:
            from repro.obs.monitor import HeartbeatEmitter

            self._heartbeat = HeartbeatEmitter(
                self._post, shard_index, heartbeat_s
            )

    def bind_events(self, sim) -> None:
        if self._heartbeat is not None:
            self._heartbeat.events_fn = lambda: sim.events_fired

    def _post(self, event) -> None:
        try:
            self._sink.put(event)
        except (OSError, ValueError):  # driver gone; progress is advisory
            pass

    def on_build(self, built: int, total: int) -> None:
        step = max(1, total // 5)
        if built == total or built - self._last_built >= step:
            self._last_built = built
            self._post(("build", self._shard, built, total))
        if self._heartbeat is not None:
            # Outside the build throttle: heartbeats must keep flowing
            # during a long build even when build events are sparse.
            self._heartbeat.maybe_beat("build")

    def on_start(self, users: int, duration_s: float) -> None:
        self._post(("start", self._shard, users, duration_s))

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        self._post(("run", self._shard, sim_now_s, duration_s))
        if self._heartbeat is not None:
            self._heartbeat.maybe_beat("run", sim_now_s, duration_s)


class ShardProgressAggregator:
    """Driver-side fold of per-shard events into one fleet-wide view.

    Receives ``("build"|"start"|"run"|"hb", shard_index, ...)`` tuples
    (any interleaving across shards) and forwards population-level
    aggregates to the wrapped reporter: built users sum across shards,
    and the run clock is the user-weighted mean of shard clocks — a
    shard that finished contributes its full duration, an unstarted
    shard contributes zero, so the fraction is overall progress.

    When a :class:`repro.obs.monitor.StallDetector` is supplied, every
    event notes liveness for its shard and :meth:`tick` (polled from
    the pool drain loop) surfaces newly-stalled shards via the
    reporter's ``on_stall`` hook.
    """

    def __init__(
        self,
        inner: FleetProgress,
        n_users: int,
        duration_s: float,
        stall=None,
    ) -> None:
        self._inner = inner
        self._n_users = max(1, n_users)
        self._duration_s = duration_s
        self._stall = stall
        self._built: dict = {}
        self._shard_users: dict = {}
        self._sim_now: dict = {}

    def handle(self, event) -> None:
        kind, shard_index = event[0], event[1]
        if self._stall is not None:
            self._stall.note(shard_index)
        if kind == "build":
            self._built[shard_index] = event[2]
            self._inner.on_build(
                sum(self._built.values()), self._n_users
            )
        elif kind == "start":
            self._shard_users[shard_index] = event[2]
        elif kind == "run":
            self._sim_now[shard_index] = event[2]
            weighted = sum(
                self._shard_users.get(index, 0) * now
                for index, now in self._sim_now.items()
            )
            self._inner.on_run(weighted / self._n_users, self._duration_s)
        elif kind == "hb":
            self._inner.on_heartbeat(shard_index, event[2])

    def tick(self) -> None:
        """Poll the stall detector; called from the pool drain loop."""
        if self._stall is None:
            return
        for shard_index, silent_s in self._stall.newly_stalled():
            self._inner.on_stall(shard_index, silent_s)

    def shard_finished(self, shard_index: int) -> None:
        """Mark a shard complete so the aggregate clock stays honest."""
        if shard_index in self._shard_users:
            self._sim_now[shard_index] = self._duration_s
        if self._stall is not None:
            self._stall.unwatch(shard_index)
