"""Fleet progress reporting (mirrors :mod:`repro.campaign.progress`).

The fleet runner is headless; ``repro fleet run`` installs
:class:`ConsoleFleetProgress` so a long population run shows per-user
build progress and a simulated-time ETA instead of running silently.
Library callers default to :class:`FleetProgress` (silence), and tests
install recording reporters to assert on the hook sequence.

Installing a reporter never changes results: the run phase advances the
simulated clock in slices between :meth:`FleetProgress.on_run` calls,
and slicing ``run_until`` is event-for-event identical to one call (the
equivalence suite pins this byte-for-byte).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class FleetProgress:
    """No-op base class; override any subset of the hooks."""

    def on_build(self, built: int, total: int) -> None:
        """One user materialized (trajectory + codebook + protocol)."""

    def on_start(self, users: int, duration_s: float) -> None:
        """Population built; the simulated run begins."""

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        """The simulated clock reached ``sim_now_s`` of ``duration_s``."""

    def on_finish(self, users: int, elapsed_s: float) -> None:
        """Run complete (``elapsed_s`` is wall-clock)."""

    def on_shard_done(self, done: int, total: int, elapsed_s: float) -> None:
        """One shard of a sharded run completed (or resumed from disk)."""


#: Library default: silence.
NullFleetProgress = FleetProgress


class ConsoleFleetProgress(FleetProgress):
    """Build counter plus run-phase percentage with a wall-clock ETA."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._started_at = 0.0
        self._last_build_line = 0

    def on_build(self, built: int, total: int) -> None:
        # Cap the build chatter at ~10 lines regardless of fleet size.
        step = max(1, total // 10)
        if built == total or built - self._last_build_line >= step:
            self._last_build_line = built
            print(f"fleet: built {built}/{total} users", file=self._stream)

    def on_start(self, users: int, duration_s: float) -> None:
        self._started_at = time.monotonic()
        print(
            f"fleet: running {users} users for {duration_s:g}s simulated",
            file=self._stream,
        )

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        if duration_s <= 0.0:
            return
        fraction = min(1.0, sim_now_s / duration_s)
        elapsed = time.monotonic() - self._started_at
        eta = elapsed * (1.0 - fraction) / fraction if fraction > 0.0 else None
        eta_text = f", eta {eta:.0f}s" if eta is not None and eta > 0.05 else ""
        print(
            f"fleet: t={sim_now_s:.2f}/{duration_s:g}s "
            f"({100.0 * fraction:.0f}%{eta_text})",
            file=self._stream,
        )

    def on_finish(self, users: int, elapsed_s: float) -> None:
        print(
            f"fleet: {users} users done in {elapsed_s:.1f}s wall",
            file=self._stream,
        )

    def on_shard_done(self, done: int, total: int, elapsed_s: float) -> None:
        print(
            f"fleet: shard {done}/{total} done ({elapsed_s:.1f}s)",
            file=self._stream,
        )


# ------------------------------------------------------------- sharded runs
class QueueShardProgress(FleetProgress):
    """Worker-side adapter: forwards hooks as events on the pool sink.

    Installed inside shard workers; events cross the pool pipe to the
    driver's :class:`ShardProgressAggregator`.  Build chatter is
    throttled per shard (a million-user run must not flood the pipe
    with per-user events); run-slice events are already bounded by
    :data:`repro.fleet.runner.PROGRESS_SLICES`.
    """

    def __init__(self, sink, shard_index: int) -> None:
        self._sink = sink
        self._shard = shard_index
        self._last_built = 0

    def _post(self, event) -> None:
        try:
            self._sink.put(event)
        except (OSError, ValueError):  # driver gone; progress is advisory
            pass

    def on_build(self, built: int, total: int) -> None:
        step = max(1, total // 5)
        if built == total or built - self._last_built >= step:
            self._last_built = built
            self._post(("build", self._shard, built, total))

    def on_start(self, users: int, duration_s: float) -> None:
        self._post(("start", self._shard, users, duration_s))

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        self._post(("run", self._shard, sim_now_s, duration_s))


class ShardProgressAggregator:
    """Driver-side fold of per-shard events into one fleet-wide view.

    Receives ``("build"|"start"|"run", shard_index, ...)`` tuples (any
    interleaving across shards) and forwards population-level
    aggregates to the wrapped reporter: built users sum across shards,
    and the run clock is the user-weighted mean of shard clocks — a
    shard that finished contributes its full duration, an unstarted
    shard contributes zero, so the fraction is overall progress.
    """

    def __init__(
        self, inner: FleetProgress, n_users: int, duration_s: float
    ) -> None:
        self._inner = inner
        self._n_users = max(1, n_users)
        self._duration_s = duration_s
        self._built: dict = {}
        self._shard_users: dict = {}
        self._sim_now: dict = {}

    def handle(self, event) -> None:
        kind, shard_index = event[0], event[1]
        if kind == "build":
            self._built[shard_index] = event[2]
            self._inner.on_build(
                sum(self._built.values()), self._n_users
            )
        elif kind == "start":
            self._shard_users[shard_index] = event[2]
        elif kind == "run":
            self._sim_now[shard_index] = event[2]
            weighted = sum(
                self._shard_users.get(index, 0) * now
                for index, now in self._sim_now.items()
            )
            self._inner.on_run(weighted / self._n_users, self._duration_s)

    def shard_finished(self, shard_index: int) -> None:
        """Mark a shard complete so the aggregate clock stays honest."""
        if shard_index in self._shard_users:
            self._sim_now[shard_index] = self._duration_s
