"""Fleet progress reporting (mirrors :mod:`repro.campaign.progress`).

The fleet runner is headless; ``repro fleet run`` installs
:class:`ConsoleFleetProgress` so a long population run shows per-user
build progress and a simulated-time ETA instead of running silently.
Library callers default to :class:`FleetProgress` (silence), and tests
install recording reporters to assert on the hook sequence.

Installing a reporter never changes results: the run phase advances the
simulated clock in slices between :meth:`FleetProgress.on_run` calls,
and slicing ``run_until`` is event-for-event identical to one call (the
equivalence suite pins this byte-for-byte).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class FleetProgress:
    """No-op base class; override any subset of the hooks."""

    def on_build(self, built: int, total: int) -> None:
        """One user materialized (trajectory + codebook + protocol)."""

    def on_start(self, users: int, duration_s: float) -> None:
        """Population built; the simulated run begins."""

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        """The simulated clock reached ``sim_now_s`` of ``duration_s``."""

    def on_finish(self, users: int, elapsed_s: float) -> None:
        """Run complete (``elapsed_s`` is wall-clock)."""


#: Library default: silence.
NullFleetProgress = FleetProgress


class ConsoleFleetProgress(FleetProgress):
    """Build counter plus run-phase percentage with a wall-clock ETA."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._started_at = 0.0
        self._last_build_line = 0

    def on_build(self, built: int, total: int) -> None:
        # Cap the build chatter at ~10 lines regardless of fleet size.
        step = max(1, total // 10)
        if built == total or built - self._last_build_line >= step:
            self._last_build_line = built
            print(f"fleet: built {built}/{total} users", file=self._stream)

    def on_start(self, users: int, duration_s: float) -> None:
        self._started_at = time.monotonic()
        print(
            f"fleet: running {users} users for {duration_s:g}s simulated",
            file=self._stream,
        )

    def on_run(self, sim_now_s: float, duration_s: float) -> None:
        if duration_s <= 0.0:
            return
        fraction = min(1.0, sim_now_s / duration_s)
        elapsed = time.monotonic() - self._started_at
        eta = elapsed * (1.0 - fraction) / fraction if fraction > 0.0 else None
        eta_text = f", eta {eta:.0f}s" if eta is not None and eta > 0.05 else ""
        print(
            f"fleet: t={sim_now_s:.2f}/{duration_s:g}s "
            f"({100.0 * fraction:.0f}%{eta_text})",
            file=self._stream,
        )

    def on_finish(self, users: int, elapsed_s: float) -> None:
        print(
            f"fleet: {users} users done in {elapsed_s:.1f}s wall",
            file=self._stream,
        )
