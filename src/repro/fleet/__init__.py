"""Population-scale multi-UE simulation (``repro.fleet``).

The paper's results are single-UE trials; this package opens the
population axis: sample N users from weighted profiles, run them on one
street grid with cross-user batched burst delivery, and report
fleet-level CDFs (beam-search latency, handover and ping-pong rates,
outage fraction).

Entry points::

    from repro.fleet import FleetSpec, UserProfile, run_fleet_trial

    spec = FleetSpec("demo", n_users=32,
                     profiles=(UserProfile("walkers"),), seed=7)
    result = run_fleet_trial(spec)
    print(result.aggregates["summary"]["search_latency_s"])

or, from the command line: ``repro fleet run --users 32 --out fleet.json``
then ``repro fleet summarize --artifact fleet.json``.  The ``fleet``
campaign experiment kind (registered on import of
:mod:`repro.fleet.experiment`) drives the same runs from campaign grids
and :func:`repro.api.run_trial`.
"""

from repro.fleet.metrics import (
    FleetAccumulator,
    FleetUserResult,
    aggregate_users,
    user_result,
)
from repro.fleet.progress import ConsoleFleetProgress, FleetProgress
from repro.fleet.runner import (
    FleetError,
    FleetRun,
    FleetTrialResult,
    ShardedFleetResult,
    build_fleet,
    load_fleet_artifact,
    load_sharded_fleet,
    run_built_fleet,
    run_fleet_sharded,
    run_fleet_trial,
    run_shard,
    write_fleet_artifact,
)
from repro.fleet.spec import (
    FleetShard,
    FleetSpec,
    UserProfile,
    UserSpec,
    load_spec,
    partition_fleet,
    synthesize_users,
)
from repro.fleet.store import FleetShardStore

__all__ = [
    "ConsoleFleetProgress",
    "FleetAccumulator",
    "FleetError",
    "FleetProgress",
    "FleetRun",
    "FleetShard",
    "FleetShardStore",
    "FleetSpec",
    "FleetTrialResult",
    "FleetUserResult",
    "ShardedFleetResult",
    "UserProfile",
    "UserSpec",
    "aggregate_users",
    "build_fleet",
    "load_fleet_artifact",
    "load_sharded_fleet",
    "load_spec",
    "partition_fleet",
    "run_built_fleet",
    "run_fleet_sharded",
    "run_fleet_trial",
    "run_shard",
    "synthesize_users",
    "user_result",
    "write_fleet_artifact",
]
