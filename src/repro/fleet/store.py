"""Persistent sharded-fleet artifacts: one JSON file per shard + manifest.

Layout under the fleet output directory::

    <root>/manifest.json                      # fleet spec + shard index
    <root>/shards/<shard_hash>.json           # one shard's results
    <root>/shards/<shard_hash>.telemetry.json # wall-clock sidecar (optional)
    <root>/fleet.json                         # merged artifact (run complete)

The campaign store's design rules apply unchanged (see
:mod:`repro.campaign.store`): canonical bytes, atomic writes, and a
single writer — shard workers ship payloads back over the pool pipe and
only the driver touches disk.  Shard artifacts are named by the shard's
content hash, so resume is a directory scan: a shard whose artifact
parses and matches its recorded hash is done, anything else is re-run.

Telemetry sidecars sit *next to* shard artifacts with the fleet
``*.telemetry.json`` naming convention (not a separate directory like
campaigns) so ``repro obs top <dir>`` discovers them with the same rule
that finds a single fleet run's sidecar; :meth:`completed_hashes`
excludes them by suffix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.campaign.spec import canonical_json
from repro.campaign.store import StoreError, _atomic_write_text
from repro.fleet.spec import FleetSpec

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
SHARD_DIR_NAME = "shards"
MERGED_NAME = "fleet.json"
STORE_FORMAT = 1


class FleetShardStore:
    """Reads and writes one sharded fleet run's on-disk artifacts."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._shard_dir = self._root / SHARD_DIR_NAME

    @property
    def root(self) -> Path:
        return self._root

    @property
    def manifest_path(self) -> Path:
        return self._root / MANIFEST_NAME

    @property
    def merged_path(self) -> Path:
        return self._root / MERGED_NAME

    def shard_path(self, shard_hash: str) -> Path:
        return self._shard_dir / f"{shard_hash}.json"

    def telemetry_path(self, shard_hash: str) -> Path:
        return self._shard_dir / f"{shard_hash}.telemetry.json"

    # -------------------------------------------------------------- manifest
    def initialize(
        self,
        spec: FleetSpec,
        n_shards: int,
        shard_hashes: Dict[int, str],
        stream: bool,
        capacity: Optional[int],
    ) -> None:
        """Create the layout and manifest for one sharded run.

        Re-initialising with the same fleet *and* the same shard
        arithmetic (shard count, streaming mode, reservoir capacity) is
        the resume path and is a no-op; anything else is refused —
        shard artifacts from different partitionings must never merge.
        """
        self._root.mkdir(parents=True, exist_ok=True)
        self._shard_dir.mkdir(exist_ok=True)
        existing = self.load_manifest_record()
        record = {
            "format": STORE_FORMAT,
            "kind": "fleet-shards",
            "name": spec.name,
            "fleet": spec.to_dict(),
            "fleet_hash": spec.fleet_hash,
            "n_shards": n_shards,
            "stream": stream,
            "capacity": capacity,
            "shards": [
                {"shard_index": index, "shard_hash": shard_hashes[index]}
                for index in sorted(shard_hashes)
            ],
        }
        if existing is not None:
            same = all(
                existing.get(key) == record[key]
                for key in ("fleet_hash", "n_shards", "stream", "capacity")
            )
            if not same:
                raise StoreError(
                    f"{self._root} already holds fleet "
                    f"{existing.get('name')!r} with a different "
                    f"spec/sharding (hash {existing.get('fleet_hash')}, "
                    f"{existing.get('n_shards')} shards, "
                    f"stream={existing.get('stream')}, "
                    f"capacity={existing.get('capacity')}); "
                    "use a fresh output directory"
                )
            return
        _atomic_write_text(self.manifest_path, canonical_json(record) + "\n")

    def load_manifest_record(self) -> Optional[dict]:
        """The raw manifest dict, or ``None`` when absent."""
        if not self.manifest_path.exists():
            return None
        try:
            record = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{self.manifest_path}: malformed manifest: {error}"
            ) from error
        if record.get("format") != STORE_FORMAT or record.get("kind") != "fleet-shards":
            raise StoreError(
                f"{self.manifest_path}: not a sharded-fleet manifest "
                f"(format {record.get('format')!r}, kind {record.get('kind')!r})"
            )
        return record

    # ---------------------------------------------------------------- shards
    def write_shard(self, shard_hash: str, payload: dict) -> Path:
        """Persist one shard's result artifact (atomic, canonical bytes)."""
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(shard_hash)
        _atomic_write_text(path, canonical_json(payload) + "\n")
        return path

    def completed_hashes(self) -> Set[str]:
        """Shard hashes with a readable, self-consistent artifact.

        Mirrors the campaign store: a file that fails to parse or whose
        recorded hash mismatches its name is treated as missing and
        simply re-run.  Telemetry sidecars are excluded by suffix.
        """
        done: Set[str] = set()
        if not self._shard_dir.is_dir():
            return done
        for path in self._shard_dir.glob("*.json"):
            if path.name.endswith(".telemetry.json"):
                continue
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                continue
            if (
                isinstance(record, dict)
                and record.get("shard_hash") == path.stem
            ):
                done.add(path.stem)
        return done

    def load_shard(self, shard_hash: str) -> dict:
        """One shard's payload dict from disk."""
        path = self.shard_path(shard_hash)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(f"no artifact for shard {shard_hash}") from None
        except json.JSONDecodeError as error:
            raise StoreError(f"{path}: malformed artifact: {error}") from error

    # ------------------------------------------------------------- telemetry
    def write_shard_telemetry(self, shard_hash: str, summary: dict) -> Path:
        """Persist one shard's wall-clock telemetry sidecar (advisory)."""
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        path = self.telemetry_path(shard_hash)
        _atomic_write_text(path, canonical_json(summary) + "\n")
        return path

    def load_shard_telemetry(self, shard_hash: str) -> Optional[dict]:
        """One shard's telemetry summary, or ``None`` when absent/corrupt."""
        path = self.telemetry_path(shard_hash)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return record if isinstance(record, dict) else None
