"""Fleet specifications: declarative multi-UE populations.

A fleet is a *population*, not a grid: ``N`` users sampled from weighted
:class:`UserProfile` arms (mobility scenario, receive codebook, protocol,
spawn region, start-time jitter), all resolved through the
:mod:`repro.registry` registries, sharing one street-grid deployment and
one simulated clock.

Determinism story, mirroring the campaign machinery:

* A :class:`FleetSpec` has a content hash (:attr:`FleetSpec.fleet_hash`)
  that is a pure function of what the fleet computes — profiles, user
  count, seed, duration — never of its display name.
* Population synthesis (:func:`synthesize_users`) is *per-user keyed*:
  user ``k``'s assignments (profile choice, spawn x, start offset) come
  from a generator seeded by ``derive_seed(fleet_hash, "user/k/
  population")``, and the user's mobility seed is
  ``derive_seed(fleet_hash, "user/k")`` — the same SHA-256 scheme the
  RNG registry uses (:func:`repro.sim.rng.derive_seed`).  User ``k`` is
  therefore a pure function of ``(fleet_hash, k)``: the same user in
  every process, on every worker, on every burst path — and a shard can
  synthesize just its own users in O(shard) work.
* Sharding (:func:`partition_fleet`) assigns user ``k`` to shard
  ``seed_k % n_shards`` using that content-hash-derived mobility seed,
  so the assignment is order-independent and every
  :class:`FleetShard` gets its own content hash
  (:attr:`FleetShard.shard_hash`) for resume/memoization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import SpecError, canonical_json, content_hash
from repro.sim.rng import derive_seed

PathLike = Union[str, Path]

#: Default spawn region: the street span covered by the 3-cell grid's
#: cell-edge dynamics (A/B boundary at x=10, B/C at x=30).
DEFAULT_SPAWN_X = (4.0, 36.0)


@dataclass(frozen=True)
class UserProfile:
    """One weighted arm of a fleet population.

    Attributes
    ----------
    name:
        Profile label (recorded per user in results).
    weight:
        Relative sampling weight (any positive number).
    scenario / codebook / protocol:
        Registered scenario, mobile codebook and protocol names; every
        axis is validated against :mod:`repro.registry` at construction.
    spawn_x:
        ``(lo, hi)`` street interval users of this profile spawn in,
        uniformly.
    start_jitter_s:
        Users begin their trajectory a uniform ``[0, start_jitter_s]``
        after the run starts (they hold the spawn pose until then),
        de-synchronizing the population.
    overrides:
        Protocol config overrides (the campaign override dict format).
    """

    name: str
    weight: float = 1.0
    scenario: str = "walk"
    codebook: str = "narrow"
    protocol: str = "silent-tracker"
    spawn_x: Tuple[float, float] = DEFAULT_SPAWN_X
    start_jitter_s: float = 0.0
    overrides: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.registry import CODEBOOKS, PROTOCOLS, SCENARIOS, UnknownNameError

        if not self.name:
            raise SpecError("profile name must be non-empty")
        if not self.weight > 0.0:
            raise SpecError(
                f"profile {self.name!r}: weight must be positive, got {self.weight!r}"
            )
        object.__setattr__(self, "spawn_x", tuple(self.spawn_x))
        if len(self.spawn_x) != 2 or not self.spawn_x[0] <= self.spawn_x[1]:
            raise SpecError(
                f"profile {self.name!r}: spawn_x must be (lo, hi) with lo <= hi, "
                f"got {self.spawn_x!r}"
            )
        if self.start_jitter_s < 0.0:
            raise SpecError(
                f"profile {self.name!r}: start jitter must be non-negative, "
                f"got {self.start_jitter_s!r}"
            )
        try:
            SCENARIOS.get(self.scenario)
            CODEBOOKS.get(self.codebook)
            PROTOCOLS.get(self.protocol)
        except UnknownNameError as error:
            raise SpecError(f"profile {self.name!r}: {error}") from None
        canonical_json(dict(self.overrides))  # must be JSON-serialisable

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "scenario": self.scenario,
            "codebook": self.codebook,
            "protocol": self.protocol,
            "spawn_x": list(self.spawn_x),
            "start_jitter_s": self.start_jitter_s,
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "UserProfile":
        return cls(
            name=str(record["name"]),
            weight=float(record.get("weight", 1.0)),
            scenario=str(record.get("scenario", "walk")),
            codebook=str(record.get("codebook", "narrow")),
            protocol=str(record.get("protocol", "silent-tracker")),
            spawn_x=tuple(record.get("spawn_x", DEFAULT_SPAWN_X)),
            start_jitter_s=float(record.get("start_jitter_s", 0.0)),
            overrides=dict(record.get("overrides") or {}),
        )


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of one population-scale run.

    Attributes
    ----------
    name:
        Display name (not part of :attr:`fleet_hash`).
    n_users:
        Population size.
    profiles:
        Weighted :class:`UserProfile` arms users are sampled from.
    seed:
        Master seed: seeds the deployment RNG registry and, through the
        spec content hash, the population synthesis.
    duration_s:
        Simulated run length.
    n_cells:
        Base stations on the street grid (2..3) or corridor (any >= 2).
    bs_beamwidth_deg:
        Station codebook beamwidth override (paper default when None).
    topology:
        ``"street"`` (the paper's 3-cell grid, default) or
        ``"corridor"`` (:func:`~repro.experiments.scenarios.
        build_corridor_deployment` — dense linear deployments).
    cell_pitch_m / phase_slots / pathloss_exponent:
        Corridor geometry knobs; ignored for the street topology (and,
        like it, excluded from :attr:`fleet_hash` so every pre-corridor
        spec keeps its hash).
    """

    name: str
    n_users: int
    profiles: Tuple[UserProfile, ...]
    seed: int = 0
    duration_s: float = 6.0
    n_cells: int = 3
    bs_beamwidth_deg: Optional[float] = None
    topology: str = "street"
    cell_pitch_m: float = 50.0
    phase_slots: int = 8
    pathloss_exponent: float = 3.2

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("fleet name must be non-empty")
        if self.n_users < 1:
            raise SpecError(f"need >= 1 user, got {self.n_users!r}")
        if self.topology not in ("street", "corridor"):
            raise SpecError(
                f"unknown topology {self.topology!r} "
                f"(expected 'street' or 'corridor')"
            )
        if self.topology == "corridor":
            if self.n_cells < 2:
                raise SpecError(
                    f"corridor needs >= 2 cells, got {self.n_cells!r}"
                )
            if self.cell_pitch_m <= 0.0:
                raise SpecError(
                    f"cell_pitch_m must be positive, got {self.cell_pitch_m!r}"
                )
            if self.phase_slots < 1:
                raise SpecError(
                    f"phase_slots must be >= 1, got {self.phase_slots!r}"
                )
        object.__setattr__(self, "profiles", tuple(self.profiles))
        if not self.profiles:
            raise SpecError("need >= 1 user profile")
        names = [profile.name for profile in self.profiles]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate profile names in {names!r}")
        if self.seed < 0:
            raise SpecError(f"seed must be non-negative, got {self.seed!r}")
        if self.duration_s <= 0.0:
            raise SpecError(
                f"duration_s must be positive, got {self.duration_s!r}"
            )

    # ----------------------------------------------------------- identity
    def identity(self) -> dict:
        """Everything the run depends on (display name excluded).

        Topology fields appear only for non-street topologies: the
        street default contributes nothing new, and omitting it keeps
        every pre-corridor spec's content hash (and on-disk shard
        artifacts) valid.
        """
        record = {
            "n_users": self.n_users,
            "profiles": [profile.to_dict() for profile in self.profiles],
            "seed": self.seed,
            "duration_s": self.duration_s,
            "n_cells": self.n_cells,
            "bs_beamwidth_deg": self.bs_beamwidth_deg,
        }
        if self.topology != "street":
            record["topology"] = self.topology
            record["cell_pitch_m"] = self.cell_pitch_m
            record["phase_slots"] = self.phase_slots
            record["pathloss_exponent"] = self.pathloss_exponent
        return record

    @property
    def fleet_hash(self) -> str:
        """Content hash of the spec — the campaign cell-ID scheme."""
        return content_hash(self.identity())

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        record = self.identity()
        record["name"] = self.name
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetSpec":
        try:
            return cls(
                name=str(record.get("name", "fleet")),
                n_users=int(record["n_users"]),
                profiles=tuple(
                    UserProfile.from_dict(p) for p in record["profiles"]
                ),
                seed=int(record.get("seed", 0)),
                duration_s=float(record.get("duration_s", 6.0)),
                n_cells=int(record.get("n_cells", 3)),
                bs_beamwidth_deg=(
                    None
                    if record.get("bs_beamwidth_deg") is None
                    else float(record["bs_beamwidth_deg"])
                ),
                topology=str(record.get("topology", "street")),
                cell_pitch_m=float(record.get("cell_pitch_m", 50.0)),
                phase_slots=int(record.get("phase_slots", 8)),
                pathloss_exponent=float(record.get("pathloss_exponent", 3.2)),
            )
        except KeyError as error:
            raise SpecError(f"fleet spec missing field: {error}") from error

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )


def load_spec(path: PathLike) -> FleetSpec:
    """Read a :class:`FleetSpec` from a JSON file."""
    try:
        record = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SpecError(f"{path}: malformed JSON: {error}") from error
    return FleetSpec.from_dict(record)


# ------------------------------------------------------------- synthesis
@dataclass(frozen=True)
class UserSpec:
    """One synthesized user: a fully resolved population member."""

    index: int
    user_id: str
    profile: str
    scenario: str
    codebook: str
    protocol: str
    start_x: float
    start_offset_s: float
    serving_cell: str
    seed: int
    overrides: Mapping = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "user_id": self.user_id,
            "profile": self.profile,
            "scenario": self.scenario,
            "codebook": self.codebook,
            "protocol": self.protocol,
            "start_x": self.start_x,
            "start_offset_s": self.start_offset_s,
            "serving_cell": self.serving_cell,
            "seed": self.seed,
            "overrides": dict(self.overrides),
        }


def nearest_cell(start_x: float, n_cells: int) -> str:
    """The street-grid cell closest to a spawn position.

    Users attach to their geometrically best cell at spawn — the state a
    converged idle-mode reselection would have left them in.
    """
    from repro.experiments.scenarios import STATION_POSITIONS

    cells = list(STATION_POSITIONS)[:n_cells]
    return min(cells, key=lambda c: abs(STATION_POSITIONS[c].x - start_x))


def nearest_cell_for(spec: "FleetSpec", start_x: float) -> str:
    """Topology-aware spawn attachment (see :func:`nearest_cell`).

    Corridor cells sit at ``i * cell_pitch_m``, so the nearest is pure
    arithmetic — no O(n_cells) scan for thousand-cell corridors.
    """
    if spec.topology == "corridor":
        index = int(round(start_x / spec.cell_pitch_m))
        index = min(max(index, 0), spec.n_cells - 1)
        return f"cell{index:04d}"
    return nearest_cell(start_x, spec.n_cells)


def user_seed(fleet_hash: str, index: int) -> int:
    """User ``index``'s mobility seed — and its shard-assignment key."""
    return derive_seed(fleet_hash, f"user/{index}")


def synthesize_users(
    spec: FleetSpec, indices: Optional[Sequence[int]] = None
) -> List[UserSpec]:
    """Sample the population of ``spec`` (or a subset), deterministically.

    Synthesis is per-user keyed: user ``k`` draws its profile choice
    (weighted), spawn position (uniform in the profile's region) and
    start offset (uniform in the profile's jitter) from a generator
    seeded by ``derive_seed(fleet_hash, "user/k/population")`` — always
    three draws, so the stream layout never depends on profile
    configuration.  The user's mobility seed is the separate
    ``derive_seed(fleet_hash, "user/k")`` key (:func:`user_seed`).

    Because user ``k`` depends only on ``(fleet_hash, k)``, passing
    ``indices`` synthesizes exactly that subset in O(subset) work — the
    property shard workers rely on.  Indices must be in range and are
    returned in the given order.
    """
    fleet_hash = spec.fleet_hash
    weights = np.array([profile.weight for profile in spec.profiles], dtype=float)
    cumulative = np.cumsum(weights / weights.sum())
    if indices is None:
        indices = range(spec.n_users)
    users: List[UserSpec] = []
    for index in indices:
        if not 0 <= index < spec.n_users:
            raise SpecError(
                f"user index {index!r} out of range for {spec.n_users} users"
            )
        rng = np.random.default_rng(
            derive_seed(fleet_hash, f"user/{index}/population")
        )
        pick, x_frac, jitter_frac = rng.random(3)
        arm = min(
            int(np.searchsorted(cumulative, pick, side="right")),
            len(spec.profiles) - 1,
        )
        profile = spec.profiles[arm]
        lo, hi = profile.spawn_x
        start_x = float(lo + (hi - lo) * x_frac)
        offset = (
            float(profile.start_jitter_s * jitter_frac)
            if profile.start_jitter_s > 0.0
            else 0.0
        )
        users.append(
            UserSpec(
                index=index,
                user_id=f"ue{index:05d}",
                profile=profile.name,
                scenario=profile.scenario,
                codebook=profile.codebook,
                protocol=profile.protocol,
                start_x=start_x,
                start_offset_s=offset,
                serving_cell=nearest_cell_for(spec, start_x),
                seed=user_seed(fleet_hash, index),
                overrides=dict(profile.overrides),
            )
        )
    return users


# -------------------------------------------------------------- sharding
@dataclass(frozen=True)
class FleetShard:
    """One partition of a fleet population.

    Users are assigned by their content-hash-derived mobility seed
    (``user_seed(fleet_hash, k) % n_shards``), so membership is a pure
    function of the fleet spec and the shard arithmetic — independent of
    enumeration order, worker count, or which other shards exist.  The
    shard's own content hash names its artifact for resume/memoization,
    exactly like campaign cell IDs.
    """

    spec: FleetSpec
    shard_index: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise SpecError(
                f"n_shards must be >= 1, got {self.n_shards!r}"
            )
        if self.n_shards > self.spec.n_users:
            raise SpecError(
                f"cannot split {self.spec.n_users} users into "
                f"{self.n_shards} shards"
            )
        if not 0 <= self.shard_index < self.n_shards:
            raise SpecError(
                f"shard_index must be in [0, {self.n_shards}), "
                f"got {self.shard_index!r}"
            )

    # ----------------------------------------------------------- identity
    def identity(self) -> dict:
        return {
            "fleet": self.spec.identity(),
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
        }

    @property
    def shard_hash(self) -> str:
        """Content hash naming this shard's artifact."""
        return content_hash(self.identity())

    # ---------------------------------------------------------- membership
    def user_indices(self) -> List[int]:
        """This shard's user indices, ascending."""
        fleet_hash = self.spec.fleet_hash
        return [
            index
            for index in range(self.spec.n_users)
            if user_seed(fleet_hash, index) % self.n_shards == self.shard_index
        ]

    def synthesize(self) -> List[UserSpec]:
        """Synthesize just this shard's users (O(shard) work)."""
        return synthesize_users(self.spec, self.user_indices())

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {
            "fleet": self.spec.to_dict(),
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetShard":
        try:
            return cls(
                spec=FleetSpec.from_dict(record["fleet"]),
                shard_index=int(record["shard_index"]),
                n_shards=int(record["n_shards"]),
            )
        except KeyError as error:
            raise SpecError(f"fleet shard missing field: {error}") from error


def partition_fleet(spec: FleetSpec, n_shards: int) -> Tuple[FleetShard, ...]:
    """Split a fleet into ``n_shards`` seed-assigned shards.

    Every user lands in exactly one shard; shard membership never
    depends on how many workers execute them.  Raises
    :class:`~repro.campaign.spec.SpecError` for ``n_shards < 1`` or
    ``n_shards > spec.n_users``.
    """
    if n_shards < 1:
        raise SpecError(f"n_shards must be >= 1, got {n_shards!r}")
    return tuple(
        FleetShard(spec=spec, shard_index=index, n_shards=n_shards)
        for index in range(n_shards)
    )
