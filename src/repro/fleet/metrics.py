"""Population metrics: per-user event logs -> fleet-level distributions.

Single-UE experiments report one trial's numbers; a fleet reports the
*distribution* of those numbers over a user population — the regime
where systems behavior emerges.  :func:`user_result` compresses one
user's run (protocol handover log, search timelines, burst counters)
into a JSON-safe :class:`FleetUserResult`; :func:`aggregate_users`
folds a population of them into summary statistics and empirical CDFs
via :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import empirical_cdf, summarize
from repro.fleet.spec import UserSpec


@dataclass(frozen=True)
class FleetUserResult:
    """One user's per-run event summary.

    ``search_latencies_s`` are beam-search acquisition latencies (edge B
    to neighbor-found) of every search episode the user's protocol
    completed; ``completion_times_s`` are trigger-to-completion handover
    latencies; ``outage_s`` is the summed data-plane interruption.
    """

    user_id: str
    profile: str
    scenario: str
    codebook: str
    protocol: str
    seed: int
    start_x: float
    start_offset_s: float
    serving_cell_initial: str
    serving_cell_final: Optional[str]
    bursts_measured: int
    bursts_skipped_busy: int
    bursts_declined: int
    searches_started: int
    search_latencies_s: List[float] = field(default_factory=list)
    handovers_completed: int = 0
    handovers_failed: int = 0
    soft_handovers: int = 0
    hard_handovers: int = 0
    ping_pongs: int = 0
    completion_times_s: List[float] = field(default_factory=list)
    outage_s: float = 0.0
    outage_fraction: float = 0.0

    def to_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetUserResult":
        return cls(**record)


def user_result(
    user: UserSpec, mobile, protocol, duration_s: float
) -> FleetUserResult:
    """Extract one user's :class:`FleetUserResult` from a finished run.

    Works for any registered protocol arm: the handover log and search
    timelines are read when the protocol exposes them (the
    :data:`repro.registry.PROTOCOLS` contract requires a ``handover_log``
    only for comparison-style arms) and degrade to empty otherwise.
    """
    from repro.experiments.pingpong import count_ping_pongs
    from repro.net.handover import HandoverOutcome

    log = getattr(protocol, "handover_log", None)
    records = log.records if log is not None else []
    completed = [r for r in records if r.complete_s is not None]
    timelines = getattr(protocol, "timelines", None) or []
    search_latencies = [
        t.found_s - t.search_start_s for t in timelines if t.found_s is not None
    ]
    outage_s = sum(r.interruption_s for r in records)
    return FleetUserResult(
        user_id=user.user_id,
        profile=user.profile,
        scenario=user.scenario,
        codebook=user.codebook,
        protocol=user.protocol,
        seed=user.seed,
        start_x=user.start_x,
        start_offset_s=user.start_offset_s,
        serving_cell_initial=user.serving_cell,
        serving_cell_final=mobile.connection.serving_cell,
        bursts_measured=mobile.bursts_measured,
        bursts_skipped_busy=mobile.bursts_skipped_busy,
        bursts_declined=mobile.bursts_declined,
        searches_started=len(timelines),
        search_latencies_s=search_latencies,
        handovers_completed=len(completed),
        handovers_failed=sum(
            1 for r in records if r.outcome is HandoverOutcome.FAILED
        ),
        soft_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.SOFT
        ),
        hard_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.HARD
        ),
        ping_pongs=count_ping_pongs(records),
        completion_times_s=[r.completion_time_s for r in completed],
        outage_s=outage_s,
        outage_fraction=outage_s / duration_s if duration_s > 0.0 else 0.0,
    )


def _cdf_payload(values: Sequence[float]) -> Optional[dict]:
    """``{"xs": ..., "ps": ...}`` series, or ``None`` for an empty sample."""
    if not len(values):
        return None
    xs, ps = empirical_cdf(values)
    return {"xs": list(xs), "ps": list(ps)}


def aggregate_users(
    users: Sequence[FleetUserResult], duration_s: float
) -> Dict[str, object]:
    """Fleet-level aggregates over a population of user results.

    Returns a JSON-safe dict with three sections:

    * ``totals`` — population-wide counts;
    * ``summary`` — per-metric :func:`summarize` dicts (search latency,
      handover completion time, per-user handover/ping-pong rates per
      minute, per-user outage fraction);
    * ``cdf`` — the fleet CDF series Fig. 2c-style plots need (search
      latency, completion time, outage fraction).
    """
    search_latencies = [x for u in users for x in u.search_latencies_s]
    completion_times = [x for u in users for x in u.completion_times_s]
    per_minute = 60.0 / duration_s if duration_s > 0.0 else 0.0
    handover_rates = [u.handovers_completed * per_minute for u in users]
    pingpong_rates = [u.ping_pongs * per_minute for u in users]
    outage_fractions = [u.outage_fraction for u in users]
    return {
        "totals": {
            "users": len(users),
            "bursts_measured": sum(u.bursts_measured for u in users),
            "bursts_skipped_busy": sum(u.bursts_skipped_busy for u in users),
            "searches_started": sum(u.searches_started for u in users),
            "handovers_completed": sum(u.handovers_completed for u in users),
            "handovers_failed": sum(u.handovers_failed for u in users),
            "soft_handovers": sum(u.soft_handovers for u in users),
            "hard_handovers": sum(u.hard_handovers for u in users),
            "ping_pongs": sum(u.ping_pongs for u in users),
        },
        "summary": {
            "search_latency_s": summarize(search_latencies),
            "completion_time_s": summarize(completion_times),
            "handover_rate_per_min": summarize(handover_rates),
            "ping_pong_rate_per_min": summarize(pingpong_rates),
            "outage_fraction": summarize(outage_fractions),
        },
        "cdf": {
            "search_latency_s": _cdf_payload(search_latencies),
            "completion_time_s": _cdf_payload(completion_times),
            "outage_fraction": _cdf_payload(outage_fractions),
        },
    }
