"""Population metrics: per-user event logs -> fleet-level distributions.

Single-UE experiments report one trial's numbers; a fleet reports the
*distribution* of those numbers over a user population — the regime
where systems behavior emerges.  :func:`user_result` compresses one
user's run (protocol handover log, search timelines, burst counters)
into a JSON-safe :class:`FleetUserResult`; :class:`FleetAccumulator`
folds a population of them — streamed one user at a time, mergeable
across shards — into summary statistics and empirical CDFs via
:mod:`repro.analysis.stats`.

Aggregation has two regimes with one output shape:

* **exact** (``capacity=None``, the default at small N): every metric
  sample is retained, and the payload reproduces the batch
  :func:`~repro.analysis.stats.summarize` /
  :func:`~repro.analysis.stats.empirical_cdf` arithmetic bit for bit —
  a pure function of the sample multiset, so shard-merged aggregates
  are byte-identical to the unsharded run.
* **streaming** (bounded ``capacity``): counts/mean/stddev/min/max stay
  exact via :class:`~repro.analysis.stats.StreamingMoments`, while
  quantiles/CDFs come from the deterministic
  :class:`~repro.analysis.stats.QuantileReservoir` — memory stays flat
  as N grows, and accuracy is gated by statistical-tolerance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import (
    QuantileReservoir,
    StreamingMoments,
    empirical_cdf,
    summarize,
)
from repro.campaign.spec import SpecError
from repro.fleet.spec import UserSpec


@dataclass(frozen=True)
class FleetUserResult:
    """One user's per-run event summary.

    ``search_latencies_s`` are beam-search acquisition latencies (edge B
    to neighbor-found) of every search episode the user's protocol
    completed; ``completion_times_s`` are trigger-to-completion handover
    latencies; ``outage_s`` is the summed data-plane interruption.
    """

    user_id: str
    profile: str
    scenario: str
    codebook: str
    protocol: str
    seed: int
    start_x: float
    start_offset_s: float
    serving_cell_initial: str
    serving_cell_final: Optional[str]
    bursts_measured: int
    bursts_skipped_busy: int
    bursts_declined: int
    searches_started: int
    search_latencies_s: List[float] = field(default_factory=list)
    handovers_completed: int = 0
    handovers_failed: int = 0
    soft_handovers: int = 0
    hard_handovers: int = 0
    ping_pongs: int = 0
    completion_times_s: List[float] = field(default_factory=list)
    outage_s: float = 0.0
    outage_fraction: float = 0.0

    def to_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetUserResult":
        return cls(**record)


def user_result(
    user: UserSpec, mobile, protocol, duration_s: float
) -> FleetUserResult:
    """Extract one user's :class:`FleetUserResult` from a finished run.

    Works for any registered protocol arm: the handover log and search
    timelines are read when the protocol exposes them (the
    :data:`repro.registry.PROTOCOLS` contract requires a ``handover_log``
    only for comparison-style arms) and degrade to empty otherwise.
    """
    from repro.experiments.pingpong import count_ping_pongs
    from repro.net.handover import HandoverOutcome

    log = getattr(protocol, "handover_log", None)
    records = log.records if log is not None else []
    completed = [r for r in records if r.complete_s is not None]
    timelines = getattr(protocol, "timelines", None) or []
    search_latencies = [
        t.found_s - t.search_start_s for t in timelines if t.found_s is not None
    ]
    outage_s = sum(r.interruption_s for r in records)
    return FleetUserResult(
        user_id=user.user_id,
        profile=user.profile,
        scenario=user.scenario,
        codebook=user.codebook,
        protocol=user.protocol,
        seed=user.seed,
        start_x=user.start_x,
        start_offset_s=user.start_offset_s,
        serving_cell_initial=user.serving_cell,
        serving_cell_final=mobile.connection.serving_cell,
        bursts_measured=mobile.bursts_measured,
        bursts_skipped_busy=mobile.bursts_skipped_busy,
        bursts_declined=mobile.bursts_declined,
        searches_started=len(timelines),
        search_latencies_s=search_latencies,
        handovers_completed=len(completed),
        handovers_failed=sum(
            1 for r in records if r.outcome is HandoverOutcome.FAILED
        ),
        soft_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.SOFT
        ),
        hard_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.HARD
        ),
        ping_pongs=count_ping_pongs(records),
        completion_times_s=[r.completion_time_s for r in completed],
        outage_s=outage_s,
        outage_fraction=outage_s / duration_s if duration_s > 0.0 else 0.0,
    )


#: Population-wide integer counts summed into ``aggregates["totals"]``.
TOTAL_FIELDS = (
    "bursts_measured",
    "bursts_skipped_busy",
    "searches_started",
    "handovers_completed",
    "handovers_failed",
    "soft_handovers",
    "hard_handovers",
    "ping_pongs",
)

#: Distribution metrics summarized in ``aggregates["summary"]``.
METRIC_KEYS = (
    "search_latency_s",
    "completion_time_s",
    "handover_rate_per_min",
    "ping_pong_rate_per_min",
    "outage_fraction",
)

#: The subset of metrics that also get CDF series (the Fig. 2c plots).
CDF_KEYS = ("search_latency_s", "completion_time_s", "outage_fraction")


class MetricAccumulator:
    """One metric's streaming state: exact moments + quantile sketch."""

    __slots__ = ("moments", "reservoir")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.moments = StreamingMoments()
        self.reservoir = QuantileReservoir(capacity)

    def extend(self, values: Sequence[float]) -> None:
        self.moments.extend(values)
        self.reservoir.extend(values)

    def merge(self, other: "MetricAccumulator") -> None:
        self.moments.merge(other.moments)
        self.reservoir.merge(other.reservoir)

    def summary(self) -> Dict[str, float]:
        """:func:`summarize`-shaped dict — bit-identical to the batch
        helper while the reservoir is exact, streaming moments plus
        sketch quantiles after."""
        if self.reservoir.exact:
            return summarize(self.reservoir.values())
        return {
            "count": self.moments.count,
            "mean": self.moments.mean,
            "stddev": self.moments.stddev,
            "min": self.moments.min,
            "p10": self.reservoir.quantile(0.10),
            "p50": self.reservoir.quantile(0.50),
            "p90": self.reservoir.quantile(0.90),
            "max": self.moments.max,
        }

    def cdf_payload(self) -> Optional[dict]:
        """``{"xs": ..., "ps": ...}`` series, or ``None`` when empty."""
        if self.reservoir.count == 0:
            return None
        xs, ps = self.reservoir.cdf()
        return {"xs": list(xs), "ps": list(ps)}

    def to_dict(self) -> dict:
        return {
            "moments": self.moments.to_dict(),
            "reservoir": self.reservoir.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "MetricAccumulator":
        accumulator = cls.__new__(cls)
        accumulator.moments = StreamingMoments.from_dict(record["moments"])
        accumulator.reservoir = QuantileReservoir.from_dict(record["reservoir"])
        return accumulator


class FleetAccumulator:
    """Mergeable fleet-level aggregation state.

    Users are folded in one at a time (:meth:`add_user`) so a shard
    worker never needs the whole population in memory, and per-shard
    accumulators merge into the population-wide aggregates
    (:meth:`merge`).  With ``capacity=None`` every metric sample is
    retained and :meth:`aggregates` is a pure function of the user
    multiset — byte-identical however the population was sharded; with
    a bounded capacity memory stays flat in N (see the module
    docstring).
    """

    def __init__(
        self, duration_s: float, capacity: Optional[int] = None
    ) -> None:
        self.duration_s = float(duration_s)
        self.capacity = capacity
        self.users = 0
        self.totals: Dict[str, int] = {name: 0 for name in TOTAL_FIELDS}
        self.metrics: Dict[str, MetricAccumulator] = {
            key: MetricAccumulator(capacity) for key in METRIC_KEYS
        }

    def add_user(self, user: FleetUserResult) -> None:
        self.users += 1
        for name in TOTAL_FIELDS:
            self.totals[name] += getattr(user, name)
        per_minute = 60.0 / self.duration_s if self.duration_s > 0.0 else 0.0
        self.metrics["search_latency_s"].extend(user.search_latencies_s)
        self.metrics["completion_time_s"].extend(user.completion_times_s)
        self.metrics["handover_rate_per_min"].extend(
            [user.handovers_completed * per_minute]
        )
        self.metrics["ping_pong_rate_per_min"].extend(
            [user.ping_pongs * per_minute]
        )
        self.metrics["outage_fraction"].extend([user.outage_fraction])

    def add_users(self, users: Sequence[FleetUserResult]) -> None:
        for user in users:
            self.add_user(user)

    def merge(self, other: "FleetAccumulator") -> None:
        """Fold another shard's accumulator in (any grouping order)."""
        if other.duration_s != self.duration_s:
            raise SpecError(
                f"cannot merge fleet aggregates of duration "
                f"{other.duration_s!r}s into {self.duration_s!r}s"
            )
        if other.capacity != self.capacity:
            raise SpecError(
                f"cannot merge fleet aggregates of reservoir capacity "
                f"{other.capacity!r} into {self.capacity!r}"
            )
        self.users += other.users
        for name in TOTAL_FIELDS:
            self.totals[name] += other.totals[name]
        for key in METRIC_KEYS:
            self.metrics[key].merge(other.metrics[key])

    @property
    def exact(self) -> bool:
        """True while every metric reservoir still retains its sample."""
        return all(self.metrics[key].reservoir.exact for key in METRIC_KEYS)

    def aggregates(self) -> Dict[str, object]:
        """The fleet ``aggregates`` payload (totals / summary / cdf)."""
        totals: Dict[str, int] = {"users": self.users}
        totals.update(self.totals)
        return {
            "exact": self.exact,
            "totals": totals,
            "summary": {
                key: self.metrics[key].summary() for key in METRIC_KEYS
            },
            "cdf": {
                key: self.metrics[key].cdf_payload() for key in CDF_KEYS
            },
        }

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe state for shard artifacts (mergeable on load)."""
        return {
            "duration_s": self.duration_s,
            "capacity": self.capacity,
            "users": self.users,
            "totals": dict(self.totals),
            "metrics": {
                key: self.metrics[key].to_dict() for key in METRIC_KEYS
            },
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "FleetAccumulator":
        accumulator = cls(record["duration_s"], record["capacity"])
        accumulator.users = int(record["users"])
        for name in TOTAL_FIELDS:
            accumulator.totals[name] = int(record["totals"][name])
        accumulator.metrics = {
            key: MetricAccumulator.from_dict(record["metrics"][key])
            for key in METRIC_KEYS
        }
        return accumulator


def aggregate_users(
    users: Sequence[FleetUserResult], duration_s: float
) -> Dict[str, object]:
    """Fleet-level aggregates over a fully-retained population.

    The exact-mode convenience wrapper around :class:`FleetAccumulator`:

    * ``totals`` — population-wide counts;
    * ``summary`` — per-metric :func:`summarize` dicts (search latency,
      handover completion time, per-user handover/ping-pong rates per
      minute, per-user outage fraction);
    * ``cdf`` — the fleet CDF series Fig. 2c-style plots need (search
      latency, completion time, outage fraction).
    """
    accumulator = FleetAccumulator(duration_s, capacity=None)
    accumulator.add_users(users)
    return accumulator.aggregates()
