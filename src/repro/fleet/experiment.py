"""The ``fleet`` campaign experiment kind and its built-in profile mixes.

A fleet campaign cell is ``(scenario, mix, overrides, seed)``: the
*mix* arm names a population composition — a function from the cell's
scenario to weighted :class:`~repro.fleet.spec.UserProfile` arms — so
both campaign axes stay meaningful: the scenario axis picks the base
mobility model, the mix arm picks how the population is blended around
it.

Built-in mixes:

``uniform``
    Every user runs the cell's scenario with the paper-default narrow
    codebook.
``mobility-blend``
    60% base scenario, 25% rotating devices, 15% vehicular drive-bys.
``codebook-split``
    The base scenario with a 70/30 narrow/wide receive-codebook split.

Custom mixes register through :func:`register_fleet_mix` and are
immediately valid campaign arms (``protocol_names`` is a live view).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.campaign.spec import SpecError
from repro.fleet.runner import FleetTrialResult, run_fleet_trial
from repro.fleet.spec import FleetSpec, UserProfile
from repro.registry import register_experiment

#: Default knobs of a fleet campaign cell (override via spec ``params``).
DEFAULT_N_USERS = 16
DEFAULT_DURATION_S = 4.0
DEFAULT_START_JITTER_S = 0.5
#: Default corridor size for ``topology="corridor"`` cells.
DEFAULT_CORRIDOR_CELLS = 64

#: Registered profile mixes: name -> builder ``(scenario, overrides) ->
#: tuple of UserProfile``.
# repro: lint-waive[DET006]: plugin registry, append-only at import time
FLEET_MIXES: Dict[str, Callable[..., Tuple[UserProfile, ...]]] = {}


def register_fleet_mix(name: str):
    """Register a fleet profile mix: ``@register_fleet_mix("rush-hour")``.

    The decorated builder receives ``(scenario, overrides)`` and returns
    the weighted profile tuple for one campaign cell.
    """

    def decorator(build):
        if name in FLEET_MIXES:
            raise SpecError(f"fleet mix {name!r} is already registered")
        FLEET_MIXES[name] = build
        return build

    return decorator


def mix_names() -> Tuple[str, ...]:
    """Currently registered mix names (live; the experiment's arm axis)."""
    return tuple(FLEET_MIXES)


@register_fleet_mix("uniform")
def _uniform_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="uniform",
            scenario=scenario,
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


@register_fleet_mix("mobility-blend")
def _mobility_blend_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="base",
            weight=0.60,
            scenario=scenario,
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="rotating",
            weight=0.25,
            scenario="rotation",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="vehicular",
            weight=0.15,
            scenario="vehicular",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


@register_fleet_mix("codebook-split")
def _codebook_split_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="narrow",
            weight=0.70,
            scenario=scenario,
            codebook="narrow",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="wide",
            weight=0.30,
            scenario=scenario,
            codebook="wide",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


def fleet_spec_for_cell(
    mix: str,
    scenario: str,
    seed: int,
    n_users: int = DEFAULT_N_USERS,
    duration_s: float = DEFAULT_DURATION_S,
    overrides=None,
    name: str = "fleet-cell",
    topology: str = "street",
    n_cells: Optional[int] = None,
    cell_pitch_m: float = 50.0,
    phase_slots: int = 8,
    pathloss_exponent: float = 3.2,
) -> FleetSpec:
    """The :class:`FleetSpec` a campaign cell expands to.

    ``topology="corridor"`` swaps the paper's 3-cell street grid for a
    dense ``n_cells``-station corridor (default
    :data:`DEFAULT_CORRIDOR_CELLS`) and widens every profile's spawn
    region to span it, so the population is spread along the whole
    deployment instead of piling onto the first three cells.
    """
    try:
        build = FLEET_MIXES[mix]
    except KeyError:
        raise SpecError(
            f"unknown fleet mix {mix!r}; known: {', '.join(sorted(FLEET_MIXES))}"
        ) from None
    profiles = build(scenario, dict(overrides or {}))
    if topology == "corridor":
        cells = DEFAULT_CORRIDOR_CELLS if n_cells is None else n_cells
        span = (0.0, (cells - 1) * cell_pitch_m)
        profiles = tuple(
            dataclasses.replace(profile, spawn_x=span) for profile in profiles
        )
        return FleetSpec(
            name=name,
            n_users=n_users,
            profiles=profiles,
            seed=seed,
            duration_s=duration_s,
            n_cells=cells,
            topology="corridor",
            cell_pitch_m=cell_pitch_m,
            phase_slots=phase_slots,
            pathloss_exponent=pathloss_exponent,
        )
    spec = FleetSpec(
        name=name,
        n_users=n_users,
        profiles=profiles,
        seed=seed,
        duration_s=duration_s,
    )
    if n_cells is not None:
        spec = dataclasses.replace(spec, n_cells=n_cells)
    return spec


# ----------------------------------------------------------- experiment kind
def _decode_fleet(payload: dict) -> FleetTrialResult:
    return FleetTrialResult.from_dict(payload)


@register_experiment(
    "fleet",
    decode=_decode_fleet,
    axis="custom",
    protocol_axis="profile mix",
    protocol_names=mix_names,
    default_protocols=("uniform", "mobility-blend", "codebook-split"),
    description="population-scale multi-UE run (fleet CDFs over N users)",
    duration_param="duration_s",
    accepts_config=True,
)
def _run_fleet_cell(cell) -> dict:
    spec = fleet_spec_for_cell(
        cell.protocol,
        scenario=cell.scenario,
        seed=cell.seed,
        n_users=int(cell.params.get("n_users", DEFAULT_N_USERS)),
        duration_s=float(cell.params.get("duration_s", DEFAULT_DURATION_S)),
        overrides=cell.overrides,
        name=f"fleet-{cell.scenario}-{cell.protocol}",
        topology=str(cell.params.get("topology", "street")),
        n_cells=(
            None
            if cell.params.get("n_cells") is None
            else int(cell.params["n_cells"])
        ),
        cell_pitch_m=float(cell.params.get("cell_pitch_m", 50.0)),
        phase_slots=int(cell.params.get("phase_slots", 8)),
        pathloss_exponent=float(cell.params.get("pathloss_exponent", 3.2)),
    )
    return run_fleet_trial(spec).to_dict()


def fleet_campaign_spec(
    n_users: int = DEFAULT_N_USERS,
    scenarios: Tuple[str, ...] = ("walk",),
    mixes: Tuple[str, ...] = ("uniform", "mobility-blend"),
    seeds: int = 4,
    base_seed: int = 0,
    duration_s: float = DEFAULT_DURATION_S,
    name: str = "fleet",
):
    """A fleet sweep as a campaign grid (scenario x mix x seed)."""
    from repro.campaign.spec import CampaignSpec

    return CampaignSpec(
        name=name,
        experiment="fleet",
        scenarios=tuple(scenarios),
        protocols=tuple(mixes),
        seeds=seeds,
        base_seed=base_seed,
        params={"n_users": n_users, "duration_s": duration_s},
    )
