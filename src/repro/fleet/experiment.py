"""The ``fleet`` campaign experiment kind and its built-in profile mixes.

A fleet campaign cell is ``(scenario, mix, overrides, seed)``: the
*mix* arm names a population composition — a function from the cell's
scenario to weighted :class:`~repro.fleet.spec.UserProfile` arms — so
both campaign axes stay meaningful: the scenario axis picks the base
mobility model, the mix arm picks how the population is blended around
it.

Built-in mixes:

``uniform``
    Every user runs the cell's scenario with the paper-default narrow
    codebook.
``mobility-blend``
    60% base scenario, 25% rotating devices, 15% vehicular drive-bys.
``codebook-split``
    The base scenario with a 70/30 narrow/wide receive-codebook split.

Custom mixes register through :func:`register_fleet_mix` and are
immediately valid campaign arms (``protocol_names`` is a live view).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.campaign.spec import SpecError
from repro.fleet.runner import FleetTrialResult, run_fleet_trial
from repro.fleet.spec import FleetSpec, UserProfile
from repro.registry import register_experiment

#: Default knobs of a fleet campaign cell (override via spec ``params``).
DEFAULT_N_USERS = 16
DEFAULT_DURATION_S = 4.0
DEFAULT_START_JITTER_S = 0.5

#: Registered profile mixes: name -> builder ``(scenario, overrides) ->
#: tuple of UserProfile``.
FLEET_MIXES: Dict[str, Callable[..., Tuple[UserProfile, ...]]] = {}


def register_fleet_mix(name: str):
    """Register a fleet profile mix: ``@register_fleet_mix("rush-hour")``.

    The decorated builder receives ``(scenario, overrides)`` and returns
    the weighted profile tuple for one campaign cell.
    """

    def decorator(build):
        if name in FLEET_MIXES:
            raise SpecError(f"fleet mix {name!r} is already registered")
        FLEET_MIXES[name] = build
        return build

    return decorator


def mix_names() -> Tuple[str, ...]:
    """Currently registered mix names (live; the experiment's arm axis)."""
    return tuple(FLEET_MIXES)


@register_fleet_mix("uniform")
def _uniform_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="uniform",
            scenario=scenario,
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


@register_fleet_mix("mobility-blend")
def _mobility_blend_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="base",
            weight=0.60,
            scenario=scenario,
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="rotating",
            weight=0.25,
            scenario="rotation",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="vehicular",
            weight=0.15,
            scenario="vehicular",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


@register_fleet_mix("codebook-split")
def _codebook_split_mix(scenario: str, overrides) -> Tuple[UserProfile, ...]:
    return (
        UserProfile(
            name="narrow",
            weight=0.70,
            scenario=scenario,
            codebook="narrow",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
        UserProfile(
            name="wide",
            weight=0.30,
            scenario=scenario,
            codebook="wide",
            start_jitter_s=DEFAULT_START_JITTER_S,
            overrides=overrides,
        ),
    )


def fleet_spec_for_cell(
    mix: str,
    scenario: str,
    seed: int,
    n_users: int = DEFAULT_N_USERS,
    duration_s: float = DEFAULT_DURATION_S,
    overrides=None,
    name: str = "fleet-cell",
) -> FleetSpec:
    """The :class:`FleetSpec` a campaign cell expands to."""
    try:
        build = FLEET_MIXES[mix]
    except KeyError:
        raise SpecError(
            f"unknown fleet mix {mix!r}; known: {', '.join(sorted(FLEET_MIXES))}"
        ) from None
    return FleetSpec(
        name=name,
        n_users=n_users,
        profiles=build(scenario, dict(overrides or {})),
        seed=seed,
        duration_s=duration_s,
    )


# ----------------------------------------------------------- experiment kind
def _decode_fleet(payload: dict) -> FleetTrialResult:
    return FleetTrialResult.from_dict(payload)


@register_experiment(
    "fleet",
    decode=_decode_fleet,
    axis="custom",
    protocol_axis="profile mix",
    protocol_names=mix_names,
    default_protocols=("uniform", "mobility-blend", "codebook-split"),
    description="population-scale multi-UE run (fleet CDFs over N users)",
    duration_param="duration_s",
    accepts_config=True,
)
def _run_fleet_cell(cell) -> dict:
    spec = fleet_spec_for_cell(
        cell.protocol,
        scenario=cell.scenario,
        seed=cell.seed,
        n_users=int(cell.params.get("n_users", DEFAULT_N_USERS)),
        duration_s=float(cell.params.get("duration_s", DEFAULT_DURATION_S)),
        overrides=cell.overrides,
        name=f"fleet-{cell.scenario}-{cell.protocol}",
    )
    return run_fleet_trial(spec).to_dict()


def fleet_campaign_spec(
    n_users: int = DEFAULT_N_USERS,
    scenarios: Tuple[str, ...] = ("walk",),
    mixes: Tuple[str, ...] = ("uniform", "mobility-blend"),
    seeds: int = 4,
    base_seed: int = 0,
    duration_s: float = DEFAULT_DURATION_S,
    name: str = "fleet",
):
    """A fleet sweep as a campaign grid (scenario x mix x seed)."""
    from repro.campaign.spec import CampaignSpec

    return CampaignSpec(
        name=name,
        experiment="fleet",
        scenarios=tuple(scenarios),
        protocols=tuple(mixes),
        seeds=seeds,
        base_seed=base_seed,
        params={"n_users": n_users, "duration_s": duration_s},
    )
