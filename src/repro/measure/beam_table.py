"""Per-cell beam quality table.

During search and tracking the mobile accumulates dwell results per
receive beam; the table answers "which receive beam is currently best
for this cell and how fresh is that knowledge?".  Entries age out:
under mobility a measurement older than a staleness horizon says nothing
about the present geometry (a 120 deg/s rotation moves a 20-degree beam
completely off target in ~170 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.measure.report import RssMeasurement


@dataclass(frozen=True)
class BeamTableEntry:
    """Latest knowledge about one receive beam toward one cell."""

    rx_beam: int
    tx_beam: Optional[int]
    rss_dbm: float
    time_s: float


class BeamQualityTable:
    """Freshness-aware map of receive beam -> last detected RSS.

    Parameters
    ----------
    staleness_s:
        Entries older than this (relative to query time) are ignored.
    """

    def __init__(self, staleness_s: float = 0.5) -> None:
        if staleness_s <= 0.0:
            raise ValueError(f"staleness must be positive, got {staleness_s!r}")
        self.staleness_s = staleness_s
        self._entries: Dict[int, BeamTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, measurement: RssMeasurement) -> None:
        """Store a detection (non-detections clear the beam's entry).

        A failed dwell is information: the beam no longer hears the
        cell, so keeping its old RSS would let stale data win
        :meth:`best`.
        """
        if measurement.detected:
            self._entries[measurement.rx_beam] = BeamTableEntry(
                measurement.rx_beam,
                measurement.tx_beam,
                measurement.rss_dbm,
                measurement.time_s,
            )
        else:
            self._entries.pop(measurement.rx_beam, None)

    def entry(self, rx_beam: int, now_s: float) -> Optional[BeamTableEntry]:
        """Fresh entry for a beam, or ``None`` (missing or stale)."""
        entry = self._entries.get(rx_beam)
        if entry is None or now_s - entry.time_s > self.staleness_s:
            return None
        return entry

    def best(self, now_s: float) -> Optional[BeamTableEntry]:
        """Freshest-valid entry with the highest RSS, or ``None``."""
        candidates = [
            entry
            for entry in self._entries.values()
            if now_s - entry.time_s <= self.staleness_s
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda e: (e.rss_dbm, -e.time_s))

    def fresh_entries(self, now_s: float) -> List[BeamTableEntry]:
        """All non-stale entries, best first."""
        candidates = [
            entry
            for entry in self._entries.values()
            if now_s - entry.time_s <= self.staleness_s
        ]
        return sorted(candidates, key=lambda e: e.rss_dbm, reverse=True)

    def purge_stale(self, now_s: float) -> int:
        """Remove stale entries; returns how many were dropped."""
        stale = [
            beam
            for beam, entry in self._entries.items()
            if now_s - entry.time_s > self.staleness_s
        ]
        for beam in stale:
            del self._entries[beam]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
