"""Protocol-facing measurement filters.

The Fig. 2b transition guards compare *smoothed* RSS against reference
levels: "switch when RSS drops by 3 dB" means 3 dB below the level the
current beam delivered when it was selected, not 3 dB below the previous
raw sample (which would trigger on every deep fade).  These helpers give
that semantics a single, tested home.
"""

from __future__ import annotations

from typing import Optional

from repro.util.numerics import Ewma


class DropDetector:
    """Detects a drop of ``threshold_db`` below a reference RSS level.

    The reference is (re)set when a beam is selected; subsequent samples
    are EWMA-smoothed and compared against ``reference - threshold``.
    The detector also tracks *rises*: if the smoothed level climbs above
    the reference, the reference follows it up (a beam performing better
    than at selection time should not be considered degraded after
    falling back to its selection level).
    """

    def __init__(self, threshold_db: float, alpha: float = 0.5) -> None:
        if threshold_db <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold_db!r}")
        self.threshold_db = threshold_db
        self._filter = Ewma(alpha)
        self._reference_dbm: Optional[float] = None

    @property
    def reference_dbm(self) -> Optional[float]:
        """Current reference level, or ``None`` before :meth:`rearm`."""
        return self._reference_dbm

    @property
    def smoothed_dbm(self) -> Optional[float]:
        """Current smoothed RSS, or ``None`` before any sample."""
        return self._filter.value

    def rearm(self, reference_dbm: float) -> None:
        """Set the reference level (called at beam selection)."""
        self._reference_dbm = reference_dbm
        self._filter.reset()
        self._filter.update(reference_dbm)

    def update(self, rss_dbm: float) -> bool:
        """Feed a sample; returns True when the drop threshold is crossed.

        Raises if the detector has never been armed — comparing against
        a nonexistent reference is a protocol bug, not a soft condition.
        """
        if self._reference_dbm is None:
            raise RuntimeError("DropDetector.update before rearm()")
        smoothed = self._filter.update(rss_dbm)
        if smoothed > self._reference_dbm:
            self._reference_dbm = smoothed
        return smoothed < self._reference_dbm - self.threshold_db

    def drop_db(self) -> float:
        """Current drop below the reference (negative when above)."""
        if self._reference_dbm is None or self._filter.value is None:
            raise RuntimeError("DropDetector.drop_db before rearm()")
        return self._reference_dbm - self._filter.value


class HysteresisTrigger:
    """Two-threshold comparator: asserts above ``enter``, clears below ``exit``.

    Used for the handover trigger (edge E): ``RSS_N > RSS_S + T`` must
    hold with hysteresis so the mobile does not oscillate between cells
    when the two RSS levels are comparable at the cell boundary.
    """

    def __init__(self, enter_db: float, exit_db: float) -> None:
        if exit_db > enter_db:
            raise ValueError(
                f"exit threshold {exit_db!r} must not exceed enter {enter_db!r}"
            )
        self.enter_db = enter_db
        self.exit_db = exit_db
        self._asserted = False

    @property
    def asserted(self) -> bool:
        return self._asserted

    def update(self, margin_db: float) -> bool:
        """Feed the current margin; returns the (possibly new) state."""
        if self._asserted:
            if margin_db < self.exit_db:
                self._asserted = False
        else:
            if margin_db > self.enter_db:
                self._asserted = True
        return self._asserted

    def reset(self) -> None:
        self._asserted = False
