"""Measurement report records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RssMeasurement:
    """One RSS dwell result.

    Attributes
    ----------
    time_s:
        When the dwell occurred.
    cell_id:
        Which cell's synchronization signal was measured.
    tx_beam:
        The transmitting beam index observed (the best SSB within the
        burst), or ``None`` when nothing was detected.
    rx_beam:
        The receive beam the mobile held for the burst.
    rss_dbm:
        Received signal strength of the best detected SSB; ``None`` when
        below the detection threshold (the dwell saw noise only).
    snr_db:
        SNR corresponding to ``rss_dbm``.
    """

    time_s: float
    cell_id: str
    rx_beam: int
    tx_beam: Optional[int] = None
    rss_dbm: Optional[float] = None
    snr_db: Optional[float] = None

    @property
    def detected(self) -> bool:
        """Whether the dwell detected any SSB at all."""
        return self.rss_dbm is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.detected:
            return (
                f"RssMeasurement({self.time_s:.3f}s {self.cell_id} "
                f"rx#{self.rx_beam}: no detection)"
            )
        return (
            f"RssMeasurement({self.time_s:.3f}s {self.cell_id} "
            f"rx#{self.rx_beam} tx#{self.tx_beam}: {self.rss_dbm:.1f} dBm)"
        )
