"""Measurement layer: RSS reports, protocol-facing filters, beam tables.

Everything Silent Tracker knows about the world arrives through this
package: timestamped RSS measurements per (cell, tx-beam, rx-beam)
dwell, smoothed and compared against the protocol's dB thresholds.
"""

from repro.measure.filters import DropDetector, HysteresisTrigger
from repro.measure.report import RssMeasurement
from repro.measure.beam_table import BeamQualityTable

__all__ = [
    "BeamQualityTable",
    "DropDetector",
    "HysteresisTrigger",
    "RssMeasurement",
]
