"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        one narrated soft-handover run (the quickstart).
``fig2a``       reproduce Fig. 2a (search latency + success rate).
``fig2c``       reproduce Fig. 2c (completion-time CDFs).
``compare``     Silent Tracker vs reactive vs oracle.
``fsm``         print the Fig. 2b state machine (ASCII or DOT).
``report``      full markdown reproduction report.
``list``        print the plugin registries (protocols, scenarios,
                codebooks, experiments), ``--json`` for machines.
``campaign``    parallel experiment campaigns with persistent
                artifacts: ``run`` / ``resume`` / ``summarize``.
``fleet``       population-scale multi-UE runs: ``run`` / ``summarize``
                (fleet CDFs over N users, canonical JSON artifacts).
``bench``       performance benchmarks: ``--suite phy`` (scalar vs
                vectorized burst path -> ``BENCH_phy.json``) or
                ``--suite fleet`` (users-vs-wall-time scaling ->
                ``BENCH_fleet.json``); ``--compare`` gates medians
                against a committed baseline.

Unknown protocol / scenario / codebook / experiment names exit with
status 2 and a message listing the registered choices.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.stats import empirical_cdf, summarize
from repro.analysis.tables import format_cdf_series, format_table
from repro.bench.harness import BenchError
from repro.campaign.runner import CampaignError
from repro.campaign.spec import SpecError
from repro.campaign.store import StoreError
from repro.registry import (
    CODEBOOKS,
    EXPERIMENTS,
    PROTOCOLS,
    SCENARIOS,
    RegistryError,
    entry_description,
)

#: The four public registries, in ``repro list`` display order.
_REGISTRY_SECTIONS = ("protocols", "scenarios", "codebooks", "experiments")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.api import Session, TrialSpec

    spec = TrialSpec(
        scenario=args.scenario,
        protocol="silent-tracker",
        seed=args.seed,
        duration_s=args.duration,
    )
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()
    print(f"final serving cell: {session.mobile.connection.serving_cell}")
    for record in protocol.handover_log.records:
        if record.complete_s is None:
            continue
        print(
            f"{record.source_cell} -> {record.target_cell}: "
            f"{record.outcome.value}, interruption "
            f"{record.interruption_s * 1000:.0f} ms"
        )
    return 0


def _cmd_fig2a(args: argparse.Namespace) -> int:
    from repro.experiments.fig2a import run_fig2a

    results = run_fig2a(
        n_trials=args.trials, scenario=args.scenario, base_seed=args.seed,
        workers=args.workers,
    )
    rows = []
    for kind in ("narrow", "wide", "omni"):
        data = results[kind]
        latency = data["latency"]
        rows.append(
            [
                kind,
                100.0 * data["success_rate"],
                latency["mean"] if latency["count"] else "-",
                latency["p50"] if latency["count"] else "-",
            ]
        )
    print(
        format_table(
            ["codebook", "success %", "mean dwells", "p50 dwells"],
            rows,
            title=f"Fig. 2a ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fig2c(args: argparse.Namespace) -> int:
    from repro.experiments.fig2c import run_fig2c

    results = run_fig2c(
        n_trials=args.trials, base_seed=args.seed, workers=args.workers
    )
    rows = []
    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        summary = summarize(data["completion_times_s"])
        rows.append(
            [
                scenario,
                data["completion_rate"],
                data["soft_rate"],
                summary.get("p50", "-"),
                summary.get("p90", "-"),
            ]
        )
    print(
        format_table(
            ["scenario", "completion", "soft", "p50 (s)", "p90 (s)"],
            rows,
            title=f"Fig. 2c ({args.trials} trials per scenario)",
        )
    )
    if args.cdf:
        series = {
            scenario: results[scenario]["completion_times_s"]
            for scenario in ("walk", "rotation", "vehicular")
            if results[scenario]["completion_times_s"]
        }
        if series:
            from repro.analysis.plotting import ascii_cdf_plot

            print()
            print(ascii_cdf_plot(series, x_label="completion time (s)"))
        for scenario, times in series.items():
            xs, ps = empirical_cdf(times)
            print()
            print(format_cdf_series(scenario, xs, ps))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import (
        run_comparison,
        summarize_comparison,
    )

    results = run_comparison(
        scenario=args.scenario, n_trials=args.trials, base_seed=args.seed,
        workers=args.workers,
    )
    rows = [
        [
            row["protocol"],
            row["completed_any"],
            row["soft_ratio"] if row["soft_ratio"] is not None else "-",
            row["mean_interruption_s"]
            if row["mean_interruption_s"] is not None
            else "-",
        ]
        for row in summarize_comparison(results)
    ]
    print(
        format_table(
            ["protocol", "completed", "soft ratio", "interruption (s)"],
            rows,
            title=f"Baselines ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    from repro.core.fsm_diagram import render_ascii, render_dot

    if args.dot:
        print(render_dot(include_guards=args.guards))
    else:
        print(render_ascii())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(n_trials=args.trials, base_seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _registry_records(section: str) -> List[dict]:
    """JSON-friendly rows for one registry section of ``repro list``."""
    if section == "protocols":
        return [
            {"name": name, "description": entry_description(factory)}
            for name, factory in PROTOCOLS.items()
        ]
    if section == "scenarios":
        return [
            {
                "name": scenario.name,
                "description": scenario.description,
                "duration_s": scenario.duration_s,
                "default_start_x": scenario.default_start_x,
            }
            for _, scenario in SCENARIOS.items()
        ]
    if section == "codebooks":
        return [
            {"name": name, "description": entry_description(factory)}
            for name, factory in CODEBOOKS.items()
        ]
    return [
        {
            "name": kind.name,
            "description": kind.description,
            "protocol_axis": kind.protocol_axis,
            "protocols": list(kind.protocol_names() or ()),
            "default_protocols": list(kind.default_protocols),
        }
        for _, kind in EXPERIMENTS.items()
    ]


def _cmd_list(args: argparse.Namespace) -> int:
    sections = [args.registry] if args.registry else list(_REGISTRY_SECTIONS)
    if args.json:
        payload = {section: _registry_records(section) for section in sections}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for section in sections:
        records = _registry_records(section)
        if section == "scenarios":
            headers = ["name", "duration (s)", "start x", "description"]
            rows = [
                [r["name"], r["duration_s"], r["default_start_x"], r["description"]]
                for r in records
            ]
        elif section == "experiments":
            headers = ["name", "protocol axis", "arms", "description"]
            rows = [
                [
                    r["name"],
                    r["protocol_axis"],
                    ",".join(r["protocols"]),
                    r["description"],
                ]
                for r in records
            ]
        else:
            headers = ["name", "description"]
            rows = [[r["name"], r["description"]] for r in records]
        print(format_table(headers, rows, title=section))
        print()
    return 0


def _print_campaign_summary(spec, pairs, completed: int) -> None:
    from repro.campaign.aggregate import summarize_campaign

    headers, rows = summarize_campaign(spec, pairs)
    print(
        format_table(
            headers,
            rows,
            title=(
                f"campaign {spec.name!r} ({spec.experiment}, "
                f"{completed}/{spec.n_cells} cells)"
            ),
        )
    )


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign.spec import CampaignSpec, load_spec

    if args.spec:
        return load_spec(args.spec)
    if not args.experiment:
        raise SystemExit("campaign run: provide --spec FILE or --experiment KIND")
    protocols = args.protocols or ",".join(
        EXPERIMENTS.get(args.experiment).default_protocols
    )
    return CampaignSpec(
        name=args.name,
        experiment=args.experiment,
        scenarios=tuple(s for s in args.scenarios.split(",") if s),
        protocols=tuple(p for p in protocols.split(",") if p),
        seeds=args.seeds,
        base_seed=args.base_seed,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.progress import ConsoleProgress
    from repro.campaign.runner import run_campaign

    spec = _campaign_spec_from_args(args)
    result = run_campaign(
        spec,
        out_dir=args.out,
        workers=args.workers,
        resume=not args.no_resume,
        progress=None if args.quiet else ConsoleProgress(),
    )
    _print_campaign_summary(
        spec, result.results_in_order(), len(result.payloads)
    )
    if args.out:
        print(f"artifacts in {result.out_dir}")
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign.progress import ConsoleProgress
    from repro.campaign.runner import resume_campaign

    result = resume_campaign(
        args.out,
        workers=args.workers,
        progress=None if args.quiet else ConsoleProgress(),
    )
    _print_campaign_summary(
        result.spec, result.results_in_order(), len(result.payloads)
    )
    return 0


def _cmd_campaign_summarize(args: argparse.Namespace) -> int:
    from repro.campaign.aggregate import load_campaign

    spec, pairs = load_campaign(args.out)
    _print_campaign_summary(spec, pairs, len(pairs))
    return 0


#: Default artifact path per bench suite.
_BENCH_DEFAULT_OUT = {"phy": "BENCH_phy.json", "fleet": "BENCH_fleet.json"}


def _print_bench_compare(comparisons, regressed, tolerance: float) -> None:
    rows = [
        [
            c.name,
            1000.0 * c.baseline_median_s,
            1000.0 * c.current_median_s,
            f"{c.ratio:.2f}x",
        ]
        for c in comparisons
    ]
    print(
        format_table(
            ["case", "baseline (ms)", "current (ms)", "ratio"],
            rows,
            title=f"baseline comparison (tolerance +{100.0 * tolerance:.0f}%)",
        )
    )
    if regressed:
        names = ", ".join(c.name for c in regressed)
        print(f"REGRESSION: {len(regressed)} case(s) slowed beyond "
              f"tolerance: {names}", file=sys.stderr)
    else:
        print("no regressions against baseline")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_payloads,
        incomparable_cases,
        load_bench_json,
        regressions,
        run_bench,
        run_fleet_bench,
    )

    if args.compare_tolerance < 0.0:
        # Validate before the (multi-minute) suite runs, not after.
        print(
            f"error: --compare-tolerance must be non-negative, "
            f"got {args.compare_tolerance}",
            file=sys.stderr,
        )
        return 2
    runner = run_fleet_bench if args.suite == "fleet" else run_bench
    if args.out is None:
        # A gating run (--compare) without an explicit --out would
        # resolve to the committed baseline file and silently overwrite
        # the artifact it gates against — write nothing instead.
        out = None if args.compare else _BENCH_DEFAULT_OUT[args.suite]
    else:
        out = args.out
    # Snapshot the baseline before the run: an explicit --out may still
    # point at the baseline file, and loading it after the run wrote
    # there would compare the run against itself.
    baseline = load_bench_json(args.compare) if args.compare else None
    payload = runner(
        quick=args.quick, out_path=out or None, repeats=args.repeats
    )
    rows = []
    for result in payload["results"]:
        rows.append(
            [
                result["name"],
                1000.0 * result["median_s"],
                1000.0 * result["iqr_s"],
                result["repeats"],
            ]
        )
    print(
        format_table(
            ["case", "median (ms)", "IQR (ms)", "repeats"],
            rows,
            title=f"{args.suite} bench ({'quick' if args.quick else 'full'})",
        )
    )
    derived = payload["derived"]
    for pair, factor in derived["speedups"].items():
        if isinstance(factor, dict):
            detail = ", ".join(f"{k} {v:.2f}x" for k, v in factor.items())
            print(f"speedup @{pair} users: {detail}")
        else:
            print(f"speedup {pair}: {factor:.2f}x")
    print(f"artifacts identical across paths: {derived['artifacts_identical']}")
    if out:
        print(f"wrote {out}")
    status = 0 if derived["artifacts_identical"] else 1
    if baseline is not None:
        comparisons = compare_payloads(payload, baseline)
        skipped = incomparable_cases(payload, baseline)
        if skipped:
            print(
                f"note: {len(skipped)} case(s) skipped — workload meta "
                f"differs from baseline (quick vs full?): "
                f"{', '.join(skipped)}",
                file=sys.stderr,
            )
        if not comparisons:
            print(
                "error: no comparable cases against baseline "
                f"{args.compare!r} — regression gate would be vacuous",
                file=sys.stderr,
            )
            return 2
        regressed = regressions(comparisons, args.compare_tolerance)
        _print_bench_compare(comparisons, regressed, args.compare_tolerance)
        if regressed:
            status = status or 1
    # Absolute timings stay informational; the command fails only on
    # harness errors, a broken determinism contract, or a baseline
    # regression beyond the tolerance.
    return status


def _print_fleet_summary(result, source: Optional[str] = None) -> None:
    """The ``repro fleet`` summary tables for one fleet result."""
    fleet = result.fleet
    totals = result.aggregates["totals"]
    summary = result.aggregates["summary"]
    title = (
        f"fleet {fleet.get('name', '?')!r} ({totals['users']} users, "
        f"{fleet.get('duration_s', '?')} s, seed {fleet.get('seed', '?')})"
    )
    if source:
        title += f" [{source}]"
    rows = []
    for label, key in (
        ("search latency (s)", "search_latency_s"),
        ("handover completion (s)", "completion_time_s"),
        ("handover rate (/min/user)", "handover_rate_per_min"),
        ("ping-pong rate (/min/user)", "ping_pong_rate_per_min"),
        ("outage fraction", "outage_fraction"),
    ):
        stats = summary[key]
        rows.append(
            [
                label,
                stats.get("count", 0),
                stats.get("mean", "-"),
                stats.get("p50", "-"),
                stats.get("p90", "-"),
            ]
        )
    print(format_table(["metric", "n", "mean", "p50", "p90"], rows, title=title))
    print(
        f"totals: {totals['bursts_measured']} bursts measured, "
        f"{totals['handovers_completed']} handovers "
        f"({totals['soft_handovers']} soft / {totals['hard_handovers']} hard / "
        f"{totals['handovers_failed']} failed), "
        f"{totals['ping_pongs']} ping-pongs"
    )


def _print_fleet_cdfs(result) -> None:
    from repro.analysis.plotting import ascii_cdf_plot

    for label, key in (
        ("search latency (s)", "search_latency_s"),
        ("completion time (s)", "completion_time_s"),
        ("outage fraction", "outage_fraction"),
    ):
        series = result.aggregates["cdf"].get(key)
        if not series:
            continue
        print()
        print(ascii_cdf_plot({label: series["xs"]}, x_label=label))


def _fleet_spec_from_args(args: argparse.Namespace):
    from repro.fleet import load_spec
    from repro.fleet.experiment import fleet_spec_for_cell

    if args.spec:
        return load_spec(args.spec)
    spec = fleet_spec_for_cell(
        args.mix,
        scenario=args.scenario,
        seed=args.seed,
        n_users=args.users,
        duration_s=args.duration,
        name=args.name,
    )
    return spec


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet_trial, write_fleet_artifact

    spec = _fleet_spec_from_args(args)
    result = run_fleet_trial(spec)
    _print_fleet_summary(result)
    if args.cdf:
        _print_fleet_cdfs(result)
    if args.out:
        path = write_fleet_artifact(result, args.out)
        print(f"wrote {path}")
    return 0


def _cmd_fleet_summarize(args: argparse.Namespace) -> int:
    from repro.fleet import load_fleet_artifact

    result = load_fleet_artifact(args.artifact)
    _print_fleet_summary(result, source=args.artifact)
    if args.cdf:
        _print_fleet_cdfs(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silent Tracker (SIGCOMM '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Scenario/experiment names are validated against the registries by
    # the command handlers (unknown names exit 2 listing the choices),
    # not via argparse `choices`: evaluating the registries here would
    # import every experiment module just to print --help, and would
    # lock out plugin arms registered after parser construction.
    demo = sub.add_parser("demo", help="run one soft-handover demo")
    demo.add_argument("--scenario", default="walk",
                      help="registered scenario (see `repro list scenarios`)")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--duration", type=float, default=6.0)
    demo.set_defaults(func=_cmd_demo)

    fig2a = sub.add_parser("fig2a", help="reproduce Fig. 2a")
    fig2a.add_argument("--trials", type=int, default=20)
    fig2a.add_argument("--scenario", default="walk",
                       help="registered scenario (see `repro list scenarios`)")
    fig2a.add_argument("--seed", type=int, default=100)
    fig2a.add_argument("--workers", type=int, default=1)
    fig2a.set_defaults(func=_cmd_fig2a)

    fig2c = sub.add_parser("fig2c", help="reproduce Fig. 2c")
    fig2c.add_argument("--trials", type=int, default=20)
    fig2c.add_argument("--seed", type=int, default=200)
    fig2c.add_argument("--workers", type=int, default=1)
    fig2c.add_argument("--cdf", action="store_true",
                       help="print the CDF series too")
    fig2c.set_defaults(func=_cmd_fig2c)

    compare = sub.add_parser("compare", help="protocols head to head")
    compare.add_argument("--scenario", default="vehicular",
                         help="registered scenario (see `repro list scenarios`)")
    compare.add_argument("--trials", type=int, default=10)
    compare.add_argument("--seed", type=int, default=700)
    compare.add_argument("--workers", type=int, default=1)
    compare.set_defaults(func=_cmd_compare)

    fsm = sub.add_parser("fsm", help="print the Fig. 2b state machine")
    fsm.add_argument("--dot", action="store_true", help="emit graphviz DOT")
    fsm.add_argument("--guards", action="store_true",
                     help="annotate edges with threshold conditions")
    fsm.set_defaults(func=_cmd_fsm)

    report = sub.add_parser("report", help="full reproduction report")
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--seed", type=int, default=5000)
    report.add_argument("--output", default=None,
                        help="write markdown here instead of stdout")
    report.set_defaults(func=_cmd_report)

    list_cmd = sub.add_parser(
        "list",
        help="print the plugin registries (protocols, scenarios, ...)",
    )
    list_cmd.add_argument("registry", nargs="?", default=None,
                          choices=_REGISTRY_SECTIONS,
                          help="print one registry instead of all four")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable output")
    list_cmd.set_defaults(func=_cmd_list)

    campaign = sub.add_parser(
        "campaign",
        help="parallel experiment campaigns with persistent artifacts",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    run = campaign_sub.add_parser("run", help="run a campaign grid")
    run.add_argument("--spec", default=None,
                     help="campaign spec JSON file (overrides grid flags)")
    run.add_argument("--name", default="campaign",
                     help="campaign name when built from flags")
    run.add_argument("--experiment", default=None,
                     help="experiment kind when no --spec is given "
                          "(see `repro list experiments`)")
    run.add_argument("--scenarios", default="walk,rotation,vehicular",
                     help="comma-separated mobility scenarios")
    run.add_argument("--protocols", default=None,
                     help="comma-separated protocol arms "
                          "(default depends on --experiment)")
    run.add_argument("--seeds", type=int, default=6,
                     help="trials per (scenario, protocol, override) arm")
    run.add_argument("--base-seed", type=int, default=0)
    run.add_argument("--out", default=None,
                     help="artifact directory (omit for in-memory run)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (results identical to serial)")
    run.add_argument("--no-resume", action="store_true",
                     help="re-run cells even when artifacts exist")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress lines")
    run.set_defaults(func=_cmd_campaign_run)

    resume = campaign_sub.add_parser(
        "resume", help="finish the campaign recorded in --out"
    )
    resume.add_argument("--out", required=True,
                        help="artifact directory with a campaign manifest")
    resume.add_argument("--workers", type=int, default=1)
    resume.add_argument("--quiet", action="store_true")
    resume.set_defaults(func=_cmd_campaign_resume)

    summarize_cmd = campaign_sub.add_parser(
        "summarize", help="aggregate completed artifacts in --out"
    )
    summarize_cmd.add_argument("--out", required=True,
                               help="artifact directory with a campaign "
                                    "manifest")
    summarize_cmd.set_defaults(func=_cmd_campaign_summarize)

    fleet = sub.add_parser(
        "fleet",
        help="population-scale multi-UE runs (fleet CDFs over N users)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser("run", help="run one fleet")
    fleet_run.add_argument("--spec", default=None,
                           help="FleetSpec JSON file (overrides the flags)")
    fleet_run.add_argument("--name", default="fleet")
    fleet_run.add_argument("--users", type=int, default=16,
                           help="population size")
    fleet_run.add_argument("--scenario", default="walk",
                           help="base mobility scenario "
                                "(see `repro list scenarios`)")
    fleet_run.add_argument("--mix", default="uniform",
                           help="profile mix: uniform, mobility-blend, "
                                "codebook-split")
    fleet_run.add_argument("--duration", type=float, default=4.0,
                           help="simulated seconds")
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--out", default=None,
                           help="write the canonical JSON artifact here")
    fleet_run.add_argument("--cdf", action="store_true",
                           help="print the fleet CDF plots too")
    fleet_run.set_defaults(func=_cmd_fleet_run)

    fleet_sum = fleet_sub.add_parser(
        "summarize", help="summarize a fleet artifact"
    )
    fleet_sum.add_argument("--artifact", required=True,
                           help="fleet JSON written by `repro fleet run --out`")
    fleet_sum.add_argument("--cdf", action="store_true",
                           help="print the fleet CDF plots too")
    fleet_sum.set_defaults(func=_cmd_fleet_summarize)

    bench = sub.add_parser(
        "bench", help="performance benchmarks -> BENCH_<suite>.json"
    )
    bench.add_argument("--suite", default="phy", choices=("phy", "fleet"),
                       help="phy: burst-path micro/macro cases; "
                            "fleet: users-vs-wall-time scaling")
    bench.add_argument("--quick", action="store_true",
                       help="trimmed repeats/workloads for CI smoke runs")
    bench.add_argument("--out", default=None,
                       help="artifact path (default BENCH_<suite>.json; "
                            "use '' to skip writing)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="override samples per case")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff medians against a committed bench JSON "
                            "and exit non-zero on regression")
    bench.add_argument("--compare-tolerance", type=float, default=0.20,
                       help="allowed median slowdown before a case counts "
                            "as regressed (0.20 = +20%%)")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        BenchError,
        CampaignError,
        RegistryError,
        SpecError,
        StoreError,
        OSError,
        json.JSONDecodeError,
    ) as error:
        # Operational errors (unknown registry name, bad spec, wrong
        # directory, failed cells, missing or malformed input files)
        # are user-facing: a message listing the valid choices beats a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
