"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        one narrated soft-handover run (the quickstart).
``fig2a``       reproduce Fig. 2a (search latency + success rate).
``fig2c``       reproduce Fig. 2c (completion-time CDFs).
``compare``     Silent Tracker vs reactive vs oracle.
``fsm``         print the Fig. 2b state machine (ASCII or DOT).
``report``      full markdown reproduction report.
``list``        print the plugin registries (protocols, scenarios,
                codebooks, experiments) and the declared ``REPRO_*``
                switch table, ``--json`` for machines.
``lint``        AST-based determinism-contract linter (rules
                DET001–DET006: wall-clock reads, ad-hoc RNG, ordering
                hazards, raw switch reads, stream-key typos, mutable
                state); exits 1 on findings, ``--baseline`` subtracts
                grandfathered ones.
``campaign``    parallel experiment campaigns with persistent
                artifacts: ``run`` / ``resume`` / ``summarize``.
``fleet``       population-scale multi-UE runs: ``run`` / ``summarize``
                (fleet CDFs over N users, canonical JSON artifacts).
``bench``       performance benchmarks: ``--suite phy`` (scalar vs
                vectorized burst path -> ``BENCH_phy.json``) or
                ``--suite fleet`` (users-vs-wall-time scaling ->
                ``BENCH_fleet.json``); ``--compare`` gates medians
                against a committed baseline.
``obs``         observability: ``export`` (Chrome trace JSON for
                Perfetto), ``top`` (hottest spans of a telemetry
                artifact or ledger run), ``diff`` (compare two runs),
                ``gate`` (disabled-telemetry overhead vs a bench
                baseline), ``history`` (the append-only run ledger),
                ``regress`` (tolerance-gated span/duration comparison
                of two ledger runs).

``--log-level`` / ``-v`` (global, before the command) control stdlib
logging on the ``repro`` logger; ``--telemetry`` on ``campaign run`` /
``campaign resume`` / ``fleet run`` collects wall-clock span/counter
summaries as sidecar artifacts without touching the deterministic
outputs.

Every ``campaign run/resume``, ``fleet run``, and ``bench`` invocation
appends one entry (run ID, argv, content hashes, duration, status,
telemetry summary, resources) to the run ledger — default
``.repro/runs.jsonl``, redirected with ``--ledger FILE``, disabled
with ``--no-ledger``.  ``fleet run --shards K --monitor`` adds worker
heartbeats (events/s, RSS/CPU) and straggler warnings; ``--watch``
collapses progress into one live status line.  None of this touches
the deterministic artifacts.

Unknown protocol / scenario / codebook / experiment names exit with
status 2 and a message listing the registered choices.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.stats import empirical_cdf, summarize
from repro.analysis.tables import format_cdf_series, format_table
from repro.bench.harness import BenchError
from repro.campaign.runner import CampaignError
from repro.campaign.spec import SpecError
from repro.campaign.store import StoreError
from repro.lint.findings import LintError
from repro.util.switches import SwitchError
from repro.obs import ObsError, configure_logging
from repro.registry import (
    CODEBOOKS,
    EXPERIMENTS,
    PROTOCOLS,
    SCENARIOS,
    RegistryError,
    entry_description,
)

#: The ``repro list`` sections, in display order: the four public
#: plugin registries plus the declared ``REPRO_*`` switch table.
_REGISTRY_SECTIONS = (
    "protocols", "scenarios", "codebooks", "experiments", "switches"
)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.api import Session, TrialSpec

    spec = TrialSpec(
        scenario=args.scenario,
        protocol="silent-tracker",
        seed=args.seed,
        duration_s=args.duration,
    )
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()
    print(f"final serving cell: {session.mobile.connection.serving_cell}")
    for record in protocol.handover_log.records:
        if record.complete_s is None:
            continue
        print(
            f"{record.source_cell} -> {record.target_cell}: "
            f"{record.outcome.value}, interruption "
            f"{record.interruption_s * 1000:.0f} ms"
        )
    return 0


def _cmd_fig2a(args: argparse.Namespace) -> int:
    from repro.experiments.fig2a import run_fig2a

    results = run_fig2a(
        n_trials=args.trials, scenario=args.scenario, base_seed=args.seed,
        workers=args.workers,
    )
    rows = []
    for kind in ("narrow", "wide", "omni"):
        data = results[kind]
        latency = data["latency"]
        rows.append(
            [
                kind,
                100.0 * data["success_rate"],
                latency["mean"] if latency["count"] else "-",
                latency["p50"] if latency["count"] else "-",
            ]
        )
    print(
        format_table(
            ["codebook", "success %", "mean dwells", "p50 dwells"],
            rows,
            title=f"Fig. 2a ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fig2c(args: argparse.Namespace) -> int:
    from repro.experiments.fig2c import run_fig2c

    results = run_fig2c(
        n_trials=args.trials, base_seed=args.seed, workers=args.workers
    )
    rows = []
    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        summary = summarize(data["completion_times_s"])
        rows.append(
            [
                scenario,
                data["completion_rate"],
                data["soft_rate"],
                summary.get("p50", "-"),
                summary.get("p90", "-"),
            ]
        )
    print(
        format_table(
            ["scenario", "completion", "soft", "p50 (s)", "p90 (s)"],
            rows,
            title=f"Fig. 2c ({args.trials} trials per scenario)",
        )
    )
    if args.cdf:
        series = {
            scenario: results[scenario]["completion_times_s"]
            for scenario in ("walk", "rotation", "vehicular")
            if results[scenario]["completion_times_s"]
        }
        if series:
            from repro.analysis.plotting import ascii_cdf_plot

            print()
            print(ascii_cdf_plot(series, x_label="completion time (s)"))
        for scenario, times in series.items():
            xs, ps = empirical_cdf(times)
            print()
            print(format_cdf_series(scenario, xs, ps))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import (
        run_comparison,
        summarize_comparison,
    )

    results = run_comparison(
        scenario=args.scenario, n_trials=args.trials, base_seed=args.seed,
        workers=args.workers,
    )
    rows = [
        [
            row["protocol"],
            row["completed_any"],
            row["soft_ratio"] if row["soft_ratio"] is not None else "-",
            row["mean_interruption_s"]
            if row["mean_interruption_s"] is not None
            else "-",
        ]
        for row in summarize_comparison(results)
    ]
    print(
        format_table(
            ["protocol", "completed", "soft ratio", "interruption (s)"],
            rows,
            title=f"Baselines ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    from repro.core.fsm_diagram import render_ascii, render_dot

    if args.dot:
        print(render_dot(include_guards=args.guards))
    else:
        print(render_ascii())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(n_trials=args.trials, base_seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _registry_records(section: str) -> List[dict]:
    """JSON-friendly rows for one registry section of ``repro list``."""
    if section == "protocols":
        return [
            {"name": name, "description": entry_description(factory)}
            for name, factory in PROTOCOLS.items()
        ]
    if section == "scenarios":
        return [
            {
                "name": scenario.name,
                "description": scenario.description,
                "duration_s": scenario.duration_s,
                "default_start_x": scenario.default_start_x,
            }
            for _, scenario in SCENARIOS.items()
        ]
    if section == "switches":
        from repro.util.switches import switch_records

        return switch_records()
    if section == "codebooks":
        return [
            {"name": name, "description": entry_description(factory)}
            for name, factory in CODEBOOKS.items()
        ]
    return [
        {
            "name": kind.name,
            "description": kind.description,
            "protocol_axis": kind.protocol_axis,
            "protocols": list(kind.protocol_names() or ()),
            "default_protocols": list(kind.default_protocols),
        }
        for _, kind in EXPERIMENTS.items()
    ]


def _cmd_list(args: argparse.Namespace) -> int:
    sections = [args.registry] if args.registry else list(_REGISTRY_SECTIONS)
    if args.json:
        payload = {section: _registry_records(section) for section in sections}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for section in sections:
        records = _registry_records(section)
        if section == "scenarios":
            headers = ["name", "duration (s)", "start x", "description"]
            rows = [
                [r["name"], r["duration_s"], r["default_start_x"], r["description"]]
                for r in records
            ]
        elif section == "switches":
            headers = ["name", "default", "values", "description"]
            rows = [
                [
                    r["name"],
                    r["default"],
                    "|".join(r["values"]) or r.get("hint", ""),
                    r["description"],
                ]
                for r in records
            ]
        elif section == "experiments":
            headers = ["name", "protocol axis", "arms", "description"]
            rows = [
                [
                    r["name"],
                    r["protocol_axis"],
                    ",".join(r["protocols"]),
                    r["description"],
                ]
                for r in records
            ]
        else:
            headers = ["name", "description"]
            rows = [[r["name"], r["description"]] for r in records]
        print(format_table(headers, rows, title=section))
        print()
    return 0


def _print_campaign_summary(spec, pairs, completed: int) -> None:
    from repro.campaign.aggregate import summarize_campaign

    headers, rows = summarize_campaign(spec, pairs)
    print(
        format_table(
            headers,
            rows,
            title=(
                f"campaign {spec.name!r} ({spec.experiment}, "
                f"{completed}/{spec.n_cells} cells)"
            ),
        )
    )


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign.spec import CampaignSpec, load_spec

    if args.spec:
        return load_spec(args.spec)
    if not args.experiment:
        raise SystemExit("campaign run: provide --spec FILE or --experiment KIND")
    protocols = args.protocols or ",".join(
        EXPERIMENTS.get(args.experiment).default_protocols
    )
    return CampaignSpec(
        name=args.name,
        experiment=args.experiment,
        scenarios=tuple(s for s in args.scenarios.split(",") if s),
        protocols=tuple(p for p in protocols.split(",") if p),
        seeds=args.seeds,
        base_seed=args.base_seed,
    )


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    """The run-ledger flags shared by every run-recording command."""
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="run-ledger path (default .repro/runs.jsonl)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not record this run in the ledger")


def _ledger_from_args(args: argparse.Namespace):
    from repro.obs.ledger import RunLedger

    if getattr(args, "no_ledger", False):
        return None
    return RunLedger(getattr(args, "ledger", None))


def _cli_command(args: argparse.Namespace) -> List[str]:
    """The effective argv recorded in ledger entries (set by main())."""
    return list(getattr(args, "cli_argv", None) or [])


def _resolve_summary(path_or_id: str, ledger_path) -> dict:
    """Telemetry summary from a file/dir path *or* a ledger run ID.

    An existing path wins; a bare token that matches a ledger run ID
    resolves to that entry's recorded telemetry summary.  Anything else
    falls through to the usual friendly missing-artifact error.
    """
    from pathlib import Path

    from repro.obs import load_telemetry
    from repro.obs.ledger import RunLedger

    if Path(path_or_id).exists():
        return load_telemetry(path_or_id)
    if "/" not in path_or_id and "\\" not in path_or_id:
        try:
            entry = RunLedger(ledger_path).find(path_or_id)
        except ObsError:
            entry = None
        if entry is not None:
            summary = entry.get("telemetry")
            if not summary:
                raise ObsError(
                    f"ledger run {entry['run_id']} recorded no telemetry "
                    "(re-run with --telemetry)"
                )
            return summary
    return load_telemetry(path_or_id)


def _print_telemetry_top(summary, limit: int = 10) -> None:
    from repro.obs import top_rows

    headers, rows = top_rows(summary, limit)
    print(format_table(headers, rows, title="hottest telemetry spans"))


def _fold_in_sidecar(artifact) -> None:
    """Fold a telemetry sidecar into a summarize view when one exists.

    ``artifact`` is a fleet artifact path (sidecar rides next to it) or
    a campaign out dir (sidecars live under ``<out>/telemetry/``).
    Runs without ``--telemetry`` leave no sidecar; stay silent then.
    """
    from pathlib import Path

    from repro.obs import ObsError, load_telemetry, sidecar_path

    path = Path(artifact)
    source = path if path.is_dir() else sidecar_path(path)
    try:
        summary = load_telemetry(source)
    except ObsError:
        return
    print(f"telemetry sidecar: {source}")
    _print_telemetry_top(summary)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign.progress import ConsoleProgress
    from repro.campaign.runner import run_campaign
    from repro.obs.ledger import record_run

    spec = _campaign_spec_from_args(args)
    with record_run(
        _ledger_from_args(args), "campaign", _cli_command(args),
        name=spec.name,
    ) as rec:
        rec.hashes = {"campaign": spec.spec_hash, "cells": spec.n_cells}
        result = run_campaign(
            spec,
            out_dir=args.out,
            workers=args.workers,
            resume=not args.no_resume,
            progress=None if args.quiet else ConsoleProgress(),
            telemetry=args.telemetry,
        )
        if result.out_dir is not None:
            rec.artifacts = str(result.out_dir)
        merged = result.merged_telemetry()
        rec.telemetry = merged
    _print_campaign_summary(
        spec, result.results_in_order(), len(result.payloads)
    )
    if args.out:
        print(f"artifacts in {result.out_dir}")
    if merged is not None:
        _print_telemetry_top(merged)
        if args.out:
            print(f"telemetry sidecars in {result.out_dir}/telemetry")
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign.progress import ConsoleProgress
    from repro.campaign.runner import resume_campaign
    from repro.obs.ledger import record_run

    with record_run(
        _ledger_from_args(args), "campaign-resume", _cli_command(args)
    ) as rec:
        rec.artifacts = str(args.out)
        result = resume_campaign(
            args.out,
            workers=args.workers,
            progress=None if args.quiet else ConsoleProgress(),
            telemetry=args.telemetry,
        )
        rec.name = result.spec.name
        rec.hashes = {
            "campaign": result.spec.spec_hash,
            "cells": result.spec.n_cells,
        }
        merged = result.merged_telemetry()
        rec.telemetry = merged
    _print_campaign_summary(
        result.spec, result.results_in_order(), len(result.payloads)
    )
    if merged is not None:
        _print_telemetry_top(merged)
    return 0


def _cmd_campaign_summarize(args: argparse.Namespace) -> int:
    from repro.campaign.aggregate import load_campaign

    spec, pairs = load_campaign(args.out)
    _print_campaign_summary(spec, pairs, len(pairs))
    _fold_in_sidecar(args.out)
    return 0


#: Default artifact path per bench suite.
_BENCH_DEFAULT_OUT = {"phy": "BENCH_phy.json", "fleet": "BENCH_fleet.json"}


def _print_bench_compare(comparisons, regressed, tolerance: float) -> None:
    rows = [
        [
            c.name,
            1000.0 * c.baseline_median_s,
            1000.0 * c.current_median_s,
            f"{c.ratio:.2f}x",
        ]
        for c in comparisons
    ]
    print(
        format_table(
            ["case", "baseline (ms)", "current (ms)", "ratio"],
            rows,
            title=f"baseline comparison (tolerance +{100.0 * tolerance:.0f}%)",
        )
    )
    if regressed:
        names = ", ".join(c.name for c in regressed)
        print(f"REGRESSION: {len(regressed)} case(s) slowed beyond "
              f"tolerance: {names}", file=sys.stderr)
    else:
        print("no regressions against baseline")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_json
    from repro.obs.ledger import record_run

    if args.compare_tolerance < 0.0:
        # Validate before the (multi-minute) suite runs, not after.
        print(
            f"error: --compare-tolerance must be non-negative, "
            f"got {args.compare_tolerance}",
            file=sys.stderr,
        )
        return 2
    if args.out is None:
        # A gating run (--compare) without an explicit --out would
        # resolve to the committed baseline file and silently overwrite
        # the artifact it gates against — write nothing instead.
        out = None if args.compare else _BENCH_DEFAULT_OUT[args.suite]
    else:
        out = args.out
    # Snapshot the baseline before the run: an explicit --out may still
    # point at the baseline file, and loading it after the run wrote
    # there would compare the run against itself.
    baseline = load_bench_json(args.compare) if args.compare else None
    with record_run(
        _ledger_from_args(args), "bench", _cli_command(args),
        name=f"bench-{args.suite}",
    ) as rec:
        rec.hashes = {"suite": args.suite}
        if out:
            rec.artifacts = str(out)
        status = _bench_execute(args, out, baseline)
        rec.meta["exit"] = status
    return status


def _bench_execute(args: argparse.Namespace, out, baseline) -> int:
    from repro.bench import (
        compare_payloads,
        incomparable_cases,
        regressions,
        run_bench,
        run_fleet_bench,
    )

    runner = run_fleet_bench if args.suite == "fleet" else run_bench
    payload = runner(
        quick=args.quick, out_path=out or None, repeats=args.repeats
    )
    rows = []
    for result in payload["results"]:
        rows.append(
            [
                result["name"],
                1000.0 * result["median_s"],
                1000.0 * result["iqr_s"],
                result["repeats"],
            ]
        )
    print(
        format_table(
            ["case", "median (ms)", "IQR (ms)", "repeats"],
            rows,
            title=f"{args.suite} bench ({'quick' if args.quick else 'full'})",
        )
    )
    derived = payload["derived"]
    for pair, factor in derived["speedups"].items():
        if isinstance(factor, dict):
            detail = ", ".join(f"{k} {v:.2f}x" for k, v in factor.items())
            print(f"speedup @{pair} users: {detail}")
        else:
            print(f"speedup {pair}: {factor:.2f}x")
    for case, factor in derived.get("telemetry_overhead", {}).items():
        print(f"telemetry overhead {case}: {factor:.2f}x")
    scaling = derived.get("worker_scaling") or {}
    if scaling:
        cpus = payload.get("cpu_count", "?")
        detail = ", ".join(
            f"w{workers} {seconds:.2f}s" for workers, seconds in scaling.items()
        )
        print(f"sharded worker scaling @10^4 users ({cpus} cpus): {detail}")
    rss = (derived.get("peak_rss") or {}).get("by_users") or {}
    for users, kb in rss.items():
        print(f"peak worker RSS @{users} users: {kb / 1024.0:.0f} MB")
    print(f"artifacts identical across paths: {derived['artifacts_identical']}")
    if "sharded_identical" in derived:
        print(
            "sharded merged artifact identical: "
            f"{derived['sharded_identical']}"
        )
    if out:
        print(f"wrote {out}")
    status = (
        0
        if derived["artifacts_identical"]
        and derived.get("sharded_identical", True)
        else 1
    )
    if baseline is not None:
        comparisons = compare_payloads(payload, baseline)
        skipped = incomparable_cases(payload, baseline)
        if skipped:
            print(
                f"note: {len(skipped)} case(s) skipped — workload meta "
                f"differs from baseline (quick vs full?): "
                f"{', '.join(skipped)}",
                file=sys.stderr,
            )
        if not comparisons:
            print(
                "error: no comparable cases against baseline "
                f"{args.compare!r} — regression gate would be vacuous",
                file=sys.stderr,
            )
            return 2
        regressed = regressions(comparisons, args.compare_tolerance)
        _print_bench_compare(comparisons, regressed, args.compare_tolerance)
        if regressed:
            status = status or 1
    # Absolute timings stay informational; the command fails only on
    # harness errors, a broken determinism contract, or a baseline
    # regression beyond the tolerance.
    return status


def _print_fleet_summary(result, source: Optional[str] = None) -> None:
    """The ``repro fleet`` summary tables for one fleet result."""
    fleet = result.fleet
    totals = result.aggregates["totals"]
    summary = result.aggregates["summary"]
    title = (
        f"fleet {fleet.get('name', '?')!r} ({totals['users']} users, "
        f"{fleet.get('duration_s', '?')} s, seed {fleet.get('seed', '?')})"
    )
    if source:
        title += f" [{source}]"
    rows = []
    for label, key in (
        ("search latency (s)", "search_latency_s"),
        ("handover completion (s)", "completion_time_s"),
        ("handover rate (/min/user)", "handover_rate_per_min"),
        ("ping-pong rate (/min/user)", "ping_pong_rate_per_min"),
        ("outage fraction", "outage_fraction"),
    ):
        stats = summary[key]
        rows.append(
            [
                label,
                stats.get("count", 0),
                stats.get("mean", "-"),
                stats.get("p50", "-"),
                stats.get("p90", "-"),
            ]
        )
    print(format_table(["metric", "n", "mean", "p50", "p90"], rows, title=title))
    print(
        f"totals: {totals['bursts_measured']} bursts measured, "
        f"{totals['handovers_completed']} handovers "
        f"({totals['soft_handovers']} soft / {totals['hard_handovers']} hard / "
        f"{totals['handovers_failed']} failed), "
        f"{totals['ping_pongs']} ping-pongs"
    )


def _print_fleet_cdfs(result) -> None:
    from repro.analysis.plotting import ascii_cdf_plot

    for label, key in (
        ("search latency (s)", "search_latency_s"),
        ("completion time (s)", "completion_time_s"),
        ("outage fraction", "outage_fraction"),
    ):
        series = result.aggregates["cdf"].get(key)
        if not series:
            continue
        print()
        print(ascii_cdf_plot({label: series["xs"]}, x_label=label))


def _fleet_spec_from_args(args: argparse.Namespace):
    from repro.fleet import load_spec
    from repro.fleet.experiment import fleet_spec_for_cell

    if args.spec:
        return load_spec(args.spec)
    spec = fleet_spec_for_cell(
        args.mix,
        scenario=args.scenario,
        seed=args.seed,
        n_users=args.users,
        duration_s=args.duration,
        name=args.name,
        topology=args.topology,
        n_cells=args.cells,
        cell_pitch_m=args.pitch,
    )
    return spec


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet import (
        ConsoleFleetProgress,
        run_fleet_sharded,
        run_fleet_trial,
        write_fleet_artifact,
    )
    from repro.obs import Telemetry, sidecar_path, use, write_telemetry
    from repro.obs import telemetry as telemetry_mod
    from repro.obs.ledger import record_run

    monitor = args.monitor or args.watch
    if monitor and args.shards is None:
        print(
            "error: --monitor/--watch require --shards (heartbeats ride "
            "the worker progress pipe)",
            file=sys.stderr,
        )
        return 2
    if args.watch and args.quiet:
        print("error: --watch conflicts with --quiet", file=sys.stderr)
        return 2
    if args.shards is None:
        if args.workers != 1:
            print(
                "error: --workers requires --shards (an unsharded fleet "
                "is one simulation)",
                file=sys.stderr,
            )
            return 2
        if args.stream:
            print("error: --stream requires --shards", file=sys.stderr)
            return 2

    spec = _fleet_spec_from_args(args)
    progress = None if args.quiet else ConsoleFleetProgress(watch=args.watch)
    ledger = _ledger_from_args(args)

    if args.shards is not None:
        # Sharded path: shards run like campaign cells on the worker
        # pool; --out becomes a directory (manifest + one artifact per
        # shard + merged fleet.json).  Shard-count validation
        # (shards < 1, shards > users) raises SpecError -> exit 2.
        with record_run(
            ledger, "fleet-sharded", _cli_command(args), name=spec.name
        ) as rec:
            rec.hashes = {"fleet": spec.fleet_hash, "shards": args.shards}
            sharded = run_fleet_sharded(
                spec,
                args.shards,
                out_dir=args.out,
                workers=args.workers,
                progress=progress,
                telemetry=args.telemetry,
                stream=True if args.stream else None,
                monitor=monitor,
            )
            if sharded.out_dir is not None:
                rec.artifacts = str(sharded.out_dir)
            merged = sharded.merged_telemetry()
            rec.telemetry = merged
        result = sharded.merged
        _print_fleet_summary(result)
        if args.cdf:
            _print_fleet_cdfs(result)
        if args.out:
            print(f"artifacts in {sharded.out_dir}")
        if merged is not None:
            _print_telemetry_top(merged)
        return 0

    with record_run(
        ledger, "fleet", _cli_command(args), name=spec.name
    ) as rec:
        rec.hashes = {"fleet": spec.fleet_hash}
        hub = Telemetry() if args.telemetry else telemetry_mod.DISABLED
        with use(hub):
            result = run_fleet_trial(spec, progress)
        summary = hub.summary() if args.telemetry else None
        rec.telemetry = summary
        if args.out:
            rec.artifacts = str(args.out)
    _print_fleet_summary(result)
    if args.cdf:
        _print_fleet_cdfs(result)
    if args.out:
        path = write_fleet_artifact(result, args.out)
        print(f"wrote {path}")
    if summary is not None:
        _print_telemetry_top(summary)
        if args.out:
            side = write_telemetry(summary, sidecar_path(args.out))
            print(f"wrote {side}")
    return 0


def _cmd_fleet_summarize(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fleet import load_fleet_artifact, load_sharded_fleet

    if Path(args.artifact).is_dir():
        result = load_sharded_fleet(args.artifact)
    else:
        result = load_fleet_artifact(args.artifact)
    _print_fleet_summary(result, source=args.artifact)
    if args.cdf:
        _print_fleet_cdfs(result)
    _fold_in_sidecar(args.artifact)
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Run a small fleet with span recording on; export a Chrome trace.

    Span intervals and simulated-time trace events only exist in a live
    run, so export *is* a run: the same flags as ``fleet run`` shape the
    workload, and the output opens directly in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.
    """
    from repro.fleet import build_fleet, run_built_fleet
    from repro.obs import Telemetry, use, write_chrome_trace

    spec = _fleet_spec_from_args(args)
    hub = Telemetry(record_events=True, max_events=args.max_events)
    with use(hub):
        run = build_fleet(spec)
        run_built_fleet(run)
    path = write_chrome_trace(args.out, hub, run.deployment.trace)
    summary = hub.summary()
    n_spans = sum(int(r["count"]) for r in summary["spans"].values())
    dropped = summary.get("dropped_events", 0)
    note = f" ({dropped} span events dropped at cap)" if dropped else ""
    print(f"wrote {path}: {n_spans} spans, "
          f"{len(run.deployment.trace.events)} trace events{note}")
    print("open in Perfetto (ui.perfetto.dev) or chrome://tracing")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from repro.obs import counter_rows, filter_summary, top_rows

    summary = _resolve_summary(args.path, args.ledger)
    if args.events:
        # Engine's per-label instrumentation only: where simulated-event
        # time goes (sim.event.* spans) and what fires (sim.events.*).
        summary = filter_summary(summary, "sim.event.", "sim.events.")
        headers, rows = top_rows(summary, args.limit)
        print(format_table(
            headers, rows, title=f"hottest event spans [{args.path}]"
        ))
        headers, rows = counter_rows(summary, args.limit)
        print()
        print(format_table(headers, rows, title="event counters (sim.events.*)"))
        return 0
    headers, rows = top_rows(summary, args.limit)
    print(format_table(headers, rows, title=f"hottest spans [{args.path}]"))
    if args.counters:
        headers, rows = counter_rows(summary, args.limit)
        print()
        print(format_table(headers, rows, title="counters"))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_rows

    summary_a = _resolve_summary(args.a, args.ledger)
    summary_b = _resolve_summary(args.b, args.ledger)
    headers, rows = diff_rows(summary_a, summary_b, args.limit)
    print(
        format_table(
            headers, rows, title=f"telemetry diff: A={args.a} B={args.b}"
        )
    )
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger, format_when

    ledger = RunLedger(args.ledger)
    entries, corrupt = ledger.scan()
    if corrupt:
        print(
            f"warning: skipped {corrupt} corrupt ledger line(s) in "
            f"{ledger.path}",
            file=sys.stderr,
        )
    if args.limit is not None and args.limit > 0:
        entries = entries[-args.limit:]
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(
            f"no runs recorded in {ledger.path} (campaign/fleet/bench "
            "runs append there automatically)"
        )
        return 0
    rows = []
    for entry in entries:
        hashes = entry.get("hashes") or {}
        content = (
            hashes.get("fleet")
            or hashes.get("campaign")
            or hashes.get("suite")
            or "-"
        )
        duration = entry.get("duration_s")
        rows.append(
            [
                entry.get("run_id", "-"),
                format_when(entry["started_at"])
                if entry.get("started_at")
                else "-",
                entry.get("kind", "-"),
                entry.get("name", "-"),
                content,
                f"{duration:.2f}"
                if isinstance(duration, (int, float))
                else "-",
                entry.get("status", "-"),
            ]
        )
    print(
        format_table(
            ["run", "when (UTC)", "kind", "name", "hash", "wall (s)",
             "status"],
            rows,
            title=f"run ledger [{ledger.path}]",
        )
    )
    return 0


def _cmd_obs_regress(args: argparse.Namespace) -> int:
    from repro.obs import diff_rows
    from repro.obs.ledger import RunLedger, regress_failures

    if args.tolerance < 0.0:
        print("error: --tolerance must be non-negative", file=sys.stderr)
        return 2
    ledger = RunLedger(args.ledger)
    if args.last is not None:
        if args.a or args.b:
            print(
                "error: give two run ids or --last N, not both",
                file=sys.stderr,
            )
            return 2
        if args.last < 2:
            print("error: --last must be >= 2", file=sys.stderr)
            return 2
        window = ledger.last(args.last)
        if len(window) < 2:
            raise ObsError(
                f"need at least 2 recorded runs in {ledger.path}, "
                f"have {len(window)}"
            )
        entry_a, entry_b = window[0], window[-1]
    else:
        if not (args.a and args.b):
            print(
                "error: obs regress needs <run-a> <run-b> or --last N",
                file=sys.stderr,
            )
            return 2
        entry_a = ledger.find(args.a)
        entry_b = ledger.find(args.b)
    for label, entry in (("A", entry_a), ("B", entry_b)):
        duration = entry.get("duration_s")
        wall = (
            f"{duration:.2f}s"
            if isinstance(duration, (int, float))
            else "?"
        )
        print(
            f"{label}: {entry.get('run_id', '?')} "
            f"[{entry.get('kind', '?')}] {entry.get('name', '?')!r} "
            f"{wall} ({entry.get('status', '?')})"
        )
    if (entry_a.get("hashes") or {}) != (entry_b.get("hashes") or {}):
        print("note: runs have different content hashes — comparing "
              "different workloads")
    telemetry_a = entry_a.get("telemetry")
    telemetry_b = entry_b.get("telemetry")
    if telemetry_a and telemetry_b:
        headers, rows = diff_rows(telemetry_a, telemetry_b, args.limit)
        print(format_table(headers, rows, title="span comparison (B/A)"))
    else:
        print("note: span comparison skipped (a run recorded no "
              "telemetry; use --telemetry)")
    failures = regress_failures(entry_a, entry_b, args.tolerance)
    if failures:
        print(
            f"REGRESSION: {len(failures)} measure(s) slowed beyond "
            f"+{100.0 * args.tolerance:.0f}%: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"no regression (tolerance +{100.0 * args.tolerance:.0f}%)")
    return 0


def _cmd_obs_gate(args: argparse.Namespace) -> int:
    from repro.bench import run_overhead_gate

    record = run_overhead_gate(
        args.baseline,
        tolerance=args.tolerance,
        repeats=args.repeats,
    )
    print(
        f"{record['case']}: baseline "
        f"{1000.0 * record['baseline_median_s']:.1f} ms, "
        f"disabled-telemetry {1000.0 * record['current_median_s']:.1f} ms "
        f"({record['ratio']:.3f}x, tolerance "
        f"+{100.0 * record['tolerance']:.0f}%)"
    )
    if record["passed"]:
        print("overhead gate passed")
        return 0
    print(
        "OVERHEAD REGRESSION: disabled telemetry slowed the macro beyond "
        "tolerance",
        file=sys.stderr,
    )
    return 1


def _add_fleet_shape_args(parser: argparse.ArgumentParser) -> None:
    """The flags that define a fleet workload (shared with ``obs export``)."""
    parser.add_argument("--spec", default=None,
                        help="FleetSpec JSON file (overrides the flags)")
    parser.add_argument("--name", default="fleet")
    parser.add_argument("--users", type=int, default=16,
                        help="population size")
    parser.add_argument("--scenario", default="walk",
                        help="base mobility scenario "
                             "(see `repro list scenarios`)")
    parser.add_argument("--mix", default="uniform",
                        help="profile mix: uniform, mobility-blend, "
                             "codebook-split")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="simulated seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--topology", default="street",
                        choices=("street", "corridor"),
                        help="street = the paper's 3-cell grid; corridor = "
                             "a dense linear deployment (--cells stations)")
    parser.add_argument("--cells", type=int, default=None,
                        help="station count (corridor topology; default 64)")
    parser.add_argument("--pitch", type=float, default=50.0,
                        help="corridor cell spacing in meters")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silent Tracker (SIGCOMM '21) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error", "critical"),
        help="stdlib logging level for the 'repro' logger "
             "(default warning)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug); "
             "--log-level wins when both are given",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Scenario/experiment names are validated against the registries by
    # the command handlers (unknown names exit 2 listing the choices),
    # not via argparse `choices`: evaluating the registries here would
    # import every experiment module just to print --help, and would
    # lock out plugin arms registered after parser construction.
    demo = sub.add_parser("demo", help="run one soft-handover demo")
    demo.add_argument("--scenario", default="walk",
                      help="registered scenario (see `repro list scenarios`)")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--duration", type=float, default=6.0)
    demo.set_defaults(func=_cmd_demo)

    fig2a = sub.add_parser("fig2a", help="reproduce Fig. 2a")
    fig2a.add_argument("--trials", type=int, default=20)
    fig2a.add_argument("--scenario", default="walk",
                       help="registered scenario (see `repro list scenarios`)")
    fig2a.add_argument("--seed", type=int, default=100)
    fig2a.add_argument("--workers", type=int, default=1)
    fig2a.set_defaults(func=_cmd_fig2a)

    fig2c = sub.add_parser("fig2c", help="reproduce Fig. 2c")
    fig2c.add_argument("--trials", type=int, default=20)
    fig2c.add_argument("--seed", type=int, default=200)
    fig2c.add_argument("--workers", type=int, default=1)
    fig2c.add_argument("--cdf", action="store_true",
                       help="print the CDF series too")
    fig2c.set_defaults(func=_cmd_fig2c)

    compare = sub.add_parser("compare", help="protocols head to head")
    compare.add_argument("--scenario", default="vehicular",
                         help="registered scenario (see `repro list scenarios`)")
    compare.add_argument("--trials", type=int, default=10)
    compare.add_argument("--seed", type=int, default=700)
    compare.add_argument("--workers", type=int, default=1)
    compare.set_defaults(func=_cmd_compare)

    fsm = sub.add_parser("fsm", help="print the Fig. 2b state machine")
    fsm.add_argument("--dot", action="store_true", help="emit graphviz DOT")
    fsm.add_argument("--guards", action="store_true",
                     help="annotate edges with threshold conditions")
    fsm.set_defaults(func=_cmd_fsm)

    report = sub.add_parser("report", help="full reproduction report")
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--seed", type=int, default=5000)
    report.add_argument("--output", default=None,
                        help="write markdown here instead of stdout")
    report.set_defaults(func=_cmd_report)

    list_cmd = sub.add_parser(
        "list",
        help="print the plugin registries (protocols, scenarios, ...)",
    )
    list_cmd.add_argument("registry", nargs="?", default=None,
                          choices=_REGISTRY_SECTIONS,
                          help="print one section instead of all five "
                               "(four registries + the REPRO_* switch "
                               "table)")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable output")
    list_cmd.set_defaults(func=_cmd_list)

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism-contract linter (DET001-DET006)",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings payload")
    lint.add_argument("--baseline", nargs="?", default=None,
                      const="lint-baseline.json", metavar="FILE",
                      help="subtract grandfathered findings recorded in "
                           "FILE (default lint-baseline.json)")
    lint.add_argument("--write-baseline", nargs="?", default=None,
                      const="lint-baseline.json", metavar="FILE",
                      help="regenerate the baseline from the current "
                           "tree instead of gating")
    lint.set_defaults(func=_cmd_lint)

    campaign = sub.add_parser(
        "campaign",
        help="parallel experiment campaigns with persistent artifacts",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    run = campaign_sub.add_parser("run", help="run a campaign grid")
    run.add_argument("--spec", default=None,
                     help="campaign spec JSON file (overrides grid flags)")
    run.add_argument("--name", default="campaign",
                     help="campaign name when built from flags")
    run.add_argument("--experiment", default=None,
                     help="experiment kind when no --spec is given "
                          "(see `repro list experiments`)")
    run.add_argument("--scenarios", default="walk,rotation,vehicular",
                     help="comma-separated mobility scenarios")
    run.add_argument("--protocols", default=None,
                     help="comma-separated protocol arms "
                          "(default depends on --experiment)")
    run.add_argument("--seeds", type=int, default=6,
                     help="trials per (scenario, protocol, override) arm")
    run.add_argument("--base-seed", type=int, default=0)
    run.add_argument("--out", default=None,
                     help="artifact directory (omit for in-memory run)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (results identical to serial)")
    run.add_argument("--no-resume", action="store_true",
                     help="re-run cells even when artifacts exist")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress lines")
    run.add_argument("--telemetry", action="store_true",
                     help="collect per-cell wall-clock telemetry "
                          "(sidecars under <out>/telemetry/; cell "
                          "artifacts stay byte-identical)")
    _add_ledger_args(run)
    run.set_defaults(func=_cmd_campaign_run)

    resume = campaign_sub.add_parser(
        "resume", help="finish the campaign recorded in --out"
    )
    resume.add_argument("--out", required=True,
                        help="artifact directory with a campaign manifest")
    resume.add_argument("--workers", type=int, default=1)
    resume.add_argument("--quiet", action="store_true")
    resume.add_argument("--telemetry", action="store_true",
                        help="collect per-cell wall-clock telemetry")
    _add_ledger_args(resume)
    resume.set_defaults(func=_cmd_campaign_resume)

    summarize_cmd = campaign_sub.add_parser(
        "summarize", help="aggregate completed artifacts in --out"
    )
    summarize_cmd.add_argument("--out", required=True,
                               help="artifact directory with a campaign "
                                    "manifest")
    summarize_cmd.set_defaults(func=_cmd_campaign_summarize)

    fleet = sub.add_parser(
        "fleet",
        help="population-scale multi-UE runs (fleet CDFs over N users)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser("run", help="run one fleet")
    _add_fleet_shape_args(fleet_run)
    fleet_run.add_argument("--shards", type=int, default=None,
                           help="partition the population into N shards "
                                "and run them on the campaign worker "
                                "pool (--out becomes a directory)")
    fleet_run.add_argument("--workers", type=int, default=1,
                           help="worker processes for --shards runs")
    fleet_run.add_argument("--stream", action="store_true",
                           help="force streaming aggregation (drop "
                                "per-user results; bounded reservoirs); "
                                "default: auto above "
                                "10^4 users")
    fleet_run.add_argument("--out", default=None,
                           help="write the canonical JSON artifact here")
    fleet_run.add_argument("--cdf", action="store_true",
                           help="print the fleet CDF plots too")
    fleet_run.add_argument("--quiet", action="store_true",
                           help="suppress build/run progress lines")
    fleet_run.add_argument("--telemetry", action="store_true",
                           help="collect wall-clock telemetry "
                                "(<out stem>.telemetry.json sidecar; the "
                                "artifact stays byte-identical)")
    fleet_run.add_argument("--monitor", action="store_true",
                           help="live monitoring for --shards runs: "
                                "worker heartbeats (events/s, RSS/CPU) "
                                "and straggler warnings; thresholds via "
                                "REPRO_HEARTBEAT_S / REPRO_STALL_S")
    fleet_run.add_argument("--watch", action="store_true",
                           help="single live status line instead of "
                                "scrolling progress (implies --monitor)")
    _add_ledger_args(fleet_run)
    fleet_run.set_defaults(func=_cmd_fleet_run)

    fleet_sum = fleet_sub.add_parser(
        "summarize", help="summarize a fleet artifact"
    )
    fleet_sum.add_argument("--artifact", required=True,
                           help="fleet JSON written by `repro fleet run --out`")
    fleet_sum.add_argument("--cdf", action="store_true",
                           help="print the fleet CDF plots too")
    fleet_sum.set_defaults(func=_cmd_fleet_summarize)

    bench = sub.add_parser(
        "bench", help="performance benchmarks -> BENCH_<suite>.json"
    )
    bench.add_argument("--suite", default="phy", choices=("phy", "fleet"),
                       help="phy: burst-path micro/macro cases; "
                            "fleet: users-vs-wall-time scaling")
    bench.add_argument("--quick", action="store_true",
                       help="trimmed repeats/workloads for CI smoke runs")
    bench.add_argument("--out", default=None,
                       help="artifact path (default BENCH_<suite>.json; "
                            "use '' to skip writing)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="override samples per case")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff medians against a committed bench JSON "
                            "and exit non-zero on regression")
    bench.add_argument("--compare-tolerance", type=float, default=0.20,
                       help="allowed median slowdown before a case counts "
                            "as regressed (0.20 = +20%%)")
    _add_ledger_args(bench)
    bench.set_defaults(func=_cmd_bench)

    obs = sub.add_parser(
        "obs",
        help="observability: Chrome trace export, span rankings, "
             "run diffs, overhead gate, run ledger history/regress",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_export = obs_sub.add_parser(
        "export",
        help="run a fleet with span recording and write Chrome "
             "trace-event JSON (Perfetto / chrome://tracing)",
    )
    _add_fleet_shape_args(obs_export)
    obs_export.add_argument("--out", default="trace.json",
                            help="trace-event JSON output path")
    obs_export.add_argument("--max-events", type=int, default=200_000,
                            help="span-interval recording cap "
                                 "(excess intervals are dropped, "
                                 "aggregates stay exact)")
    obs_export.set_defaults(func=_cmd_obs_export)

    obs_top = obs_sub.add_parser(
        "top", help="hottest spans of a telemetry artifact"
    )
    obs_top.add_argument("path",
                         help="telemetry summary JSON, a campaign "
                              "directory (per-cell summaries merged), "
                              "or a ledger run ID")
    obs_top.add_argument("--limit", type=int, default=15,
                         help="rows to show")
    obs_top.add_argument("--ledger", default=None, metavar="FILE",
                         help="ledger for run-ID lookups "
                              "(default .repro/runs.jsonl)")
    obs_top.add_argument("--counters", action="store_true",
                         help="print the counter table too")
    obs_top.add_argument("--events", action="store_true",
                         help="engine view: hottest sim.event.* spans and "
                              "sim.events.* fire counters only")
    obs_top.set_defaults(func=_cmd_obs_top)

    obs_diff = obs_sub.add_parser(
        "diff", help="span-by-span comparison of two telemetry artifacts"
    )
    obs_diff.add_argument("a", help="baseline telemetry artifact or "
                               "ledger run ID (A)")
    obs_diff.add_argument("b", help="candidate telemetry artifact or "
                               "ledger run ID (B)")
    obs_diff.add_argument("--limit", type=int, default=None,
                          help="rows to show (default all)")
    obs_diff.add_argument("--ledger", default=None, metavar="FILE",
                          help="ledger for run-ID lookups "
                               "(default .repro/runs.jsonl)")
    obs_diff.set_defaults(func=_cmd_obs_diff)

    obs_history = obs_sub.add_parser(
        "history",
        help="list recorded runs from the append-only run ledger",
    )
    obs_history.add_argument("--ledger", default=None, metavar="FILE",
                             help="ledger path "
                                  "(default .repro/runs.jsonl)")
    obs_history.add_argument("--limit", type=int, default=20,
                             help="most recent N runs (0 = all)")
    obs_history.add_argument("--json", action="store_true",
                             help="machine-readable entries")
    obs_history.set_defaults(func=_cmd_obs_history)

    obs_regress = obs_sub.add_parser(
        "regress",
        help="tolerance-gated duration/span comparison of two ledger "
             "runs; exits 1 on regression",
    )
    obs_regress.add_argument("a", nargs="?", default=None,
                             help="baseline run ID (A)")
    obs_regress.add_argument("b", nargs="?", default=None,
                             help="candidate run ID (B)")
    obs_regress.add_argument("--last", type=int, default=None, metavar="N",
                             help="compare the oldest vs newest of the "
                                  "last N recorded runs (e.g. --last 2)")
    obs_regress.add_argument("--tolerance", type=float, default=0.25,
                             help="allowed slowdown before a measure "
                                  "counts as regressed (0.25 = +25%%)")
    obs_regress.add_argument("--limit", type=int, default=10,
                             help="span-comparison rows to show")
    obs_regress.add_argument("--ledger", default=None, metavar="FILE",
                             help="ledger path "
                                  "(default .repro/runs.jsonl)")
    obs_regress.set_defaults(func=_cmd_obs_regress)

    obs_gate = obs_sub.add_parser(
        "gate",
        help="fail when disabled telemetry slows the burst-heavy macro "
             "beyond tolerance vs a committed bench baseline",
    )
    obs_gate.add_argument("--baseline", default="BENCH_phy.json",
                          help="committed bench artifact to gate against")
    obs_gate.add_argument("--tolerance", type=float, default=0.02,
                          help="allowed median slowdown (0.02 = +2%%)")
    obs_gate.add_argument("--repeats", type=int, default=None,
                          help="override samples (default: baseline's)")
    obs_gate.set_defaults(func=_cmd_obs_gate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The effective argv, recorded verbatim in run-ledger entries.
    args.cli_argv = list(argv) if argv is not None else list(sys.argv[1:])
    configure_logging(level=args.log_level, verbosity=args.verbose)
    try:
        return args.func(args)
    except (
        BenchError,
        CampaignError,
        LintError,
        ObsError,
        SwitchError,
        RegistryError,
        SpecError,
        StoreError,
        OSError,
        json.JSONDecodeError,
    ) as error:
        # Operational errors (unknown registry name, bad spec, wrong
        # directory, failed cells, missing or malformed input files)
        # are user-facing: a message listing the valid choices beats a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
