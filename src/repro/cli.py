"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        one narrated soft-handover run (the quickstart).
``fig2a``       reproduce Fig. 2a (search latency + success rate).
``fig2c``       reproduce Fig. 2c (completion-time CDFs).
``compare``     Silent Tracker vs reactive vs oracle.
``fsm``         print the Fig. 2b state machine (ASCII or DOT).
``report``      full markdown reproduction report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.stats import empirical_cdf, summarize
from repro.analysis.tables import format_cdf_series, format_table


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.silent_tracker import SilentTracker
    from repro.experiments.scenarios import build_cell_edge_deployment

    deployment, mobile = build_cell_edge_deployment(
        args.seed, scenario=args.scenario
    )
    protocol = SilentTracker(deployment, mobile, "cellA")
    protocol.start()
    deployment.run(args.duration)
    protocol.stop()
    print(f"final serving cell: {mobile.connection.serving_cell}")
    for record in protocol.handover_log.records:
        if record.complete_s is None:
            continue
        print(
            f"{record.source_cell} -> {record.target_cell}: "
            f"{record.outcome.value}, interruption "
            f"{record.interruption_s * 1000:.0f} ms"
        )
    return 0


def _cmd_fig2a(args: argparse.Namespace) -> int:
    from repro.experiments.fig2a import run_fig2a

    results = run_fig2a(
        n_trials=args.trials, scenario=args.scenario, base_seed=args.seed
    )
    rows = []
    for kind in ("narrow", "wide", "omni"):
        data = results[kind]
        latency = data["latency"]
        rows.append(
            [
                kind,
                100.0 * data["success_rate"],
                latency["mean"] if latency["count"] else "-",
                latency["p50"] if latency["count"] else "-",
            ]
        )
    print(
        format_table(
            ["codebook", "success %", "mean dwells", "p50 dwells"],
            rows,
            title=f"Fig. 2a ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fig2c(args: argparse.Namespace) -> int:
    from repro.experiments.fig2c import run_fig2c

    results = run_fig2c(n_trials=args.trials, base_seed=args.seed)
    rows = []
    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        summary = summarize(data["completion_times_s"])
        rows.append(
            [
                scenario,
                data["completion_rate"],
                data["soft_rate"],
                summary.get("p50", "-"),
                summary.get("p90", "-"),
            ]
        )
    print(
        format_table(
            ["scenario", "completion", "soft", "p50 (s)", "p90 (s)"],
            rows,
            title=f"Fig. 2c ({args.trials} trials per scenario)",
        )
    )
    if args.cdf:
        series = {
            scenario: results[scenario]["completion_times_s"]
            for scenario in ("walk", "rotation", "vehicular")
            if results[scenario]["completion_times_s"]
        }
        if series:
            from repro.analysis.plotting import ascii_cdf_plot

            print()
            print(ascii_cdf_plot(series, x_label="completion time (s)"))
        for scenario, times in series.items():
            xs, ps = empirical_cdf(times)
            print()
            print(format_cdf_series(scenario, xs, ps))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import (
        run_comparison,
        summarize_comparison,
    )

    results = run_comparison(
        scenario=args.scenario, n_trials=args.trials, base_seed=args.seed
    )
    rows = [
        [
            row["protocol"],
            row["completed_any"],
            row["soft_ratio"] if row["soft_ratio"] is not None else "-",
            row["mean_interruption_s"]
            if row["mean_interruption_s"] is not None
            else "-",
        ]
        for row in summarize_comparison(results)
    ]
    print(
        format_table(
            ["protocol", "completed", "soft ratio", "interruption (s)"],
            rows,
            title=f"Baselines ({args.scenario}, {args.trials} trials)",
        )
    )
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    from repro.core.fsm_diagram import render_ascii, render_dot

    if args.dot:
        print(render_dot(include_guards=args.guards))
    else:
        print(render_ascii())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(n_trials=args.trials, base_seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silent Tracker (SIGCOMM '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one soft-handover demo")
    demo.add_argument("--scenario", default="walk",
                      choices=("walk", "rotation", "vehicular"))
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--duration", type=float, default=6.0)
    demo.set_defaults(func=_cmd_demo)

    fig2a = sub.add_parser("fig2a", help="reproduce Fig. 2a")
    fig2a.add_argument("--trials", type=int, default=20)
    fig2a.add_argument("--scenario", default="walk",
                       choices=("walk", "rotation", "vehicular"))
    fig2a.add_argument("--seed", type=int, default=100)
    fig2a.set_defaults(func=_cmd_fig2a)

    fig2c = sub.add_parser("fig2c", help="reproduce Fig. 2c")
    fig2c.add_argument("--trials", type=int, default=20)
    fig2c.add_argument("--seed", type=int, default=200)
    fig2c.add_argument("--cdf", action="store_true",
                       help="print the CDF series too")
    fig2c.set_defaults(func=_cmd_fig2c)

    compare = sub.add_parser("compare", help="protocols head to head")
    compare.add_argument("--scenario", default="vehicular",
                         choices=("walk", "rotation", "vehicular"))
    compare.add_argument("--trials", type=int, default=10)
    compare.add_argument("--seed", type=int, default=700)
    compare.set_defaults(func=_cmd_compare)

    fsm = sub.add_parser("fsm", help="print the Fig. 2b state machine")
    fsm.add_argument("--dot", action="store_true", help="emit graphviz DOT")
    fsm.add_argument("--guards", action="store_true",
                     help="annotate edges with threshold conditions")
    fsm.set_defaults(func=_cmd_fsm)

    report = sub.add_parser("report", help="full reproduction report")
    report.add_argument("--trials", type=int, default=20)
    report.add_argument("--seed", type=int, default=5000)
    report.add_argument("--output", default=None,
                        help="write markdown here instead of stdout")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
