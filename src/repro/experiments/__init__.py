"""Experiment builders and runners for every figure in the paper.

* :mod:`repro.experiments.scenarios` — the cell-edge deployment (three
  base stations, one mobile) and the three mobility scenarios.
* :mod:`repro.experiments.fig2a` — directional search latency and
  success rate by beamwidth (Fig. 2a, both panels).
* :mod:`repro.experiments.fig2c` — soft-handover completion-time CDFs
  for walk / rotation / vehicular (Fig. 2c).
* :mod:`repro.experiments.ablations` — threshold and codebook sweeps.
* :mod:`repro.experiments.comparison` — Silent Tracker vs reactive hard
  handover vs oracle.
* :mod:`repro.experiments.hierarchical` — exhaustive vs two-stage
  (coarse -> fine) neighbor search.
* :mod:`repro.experiments.pingpong` — handover churn vs time-to-trigger.
* :mod:`repro.experiments.workloads` — canned RSS traces and replay.

Each module registers its scenario/codebook/experiment arms in
:mod:`repro.registry`; trials run through the
:class:`repro.api.Session` lifecycle.
"""

from repro.experiments.scenarios import (
    SCENARIO_NAMES,
    build_cell_edge_deployment,
    make_mobile_codebook,
    make_trajectory,
)
from repro.experiments.fig2a import (
    SearchTrialResult,
    fig2a_spec,
    run_fig2a,
    run_search_trial,
)
from repro.experiments.fig2c import (
    TrackingTrialResult,
    fig2c_spec,
    run_fig2c,
    run_tracking_trial,
)

__all__ = [
    "SCENARIO_NAMES",
    "SearchTrialResult",
    "TrackingTrialResult",
    "build_cell_edge_deployment",
    "fig2a_spec",
    "fig2c_spec",
    "make_mobile_codebook",
    "make_trajectory",
    "run_fig2a",
    "run_fig2c",
    "run_search_trial",
    "run_tracking_trial",
]
