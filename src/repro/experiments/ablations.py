"""Ablation sweeps over Silent Tracker's design constants.

The paper fixes three constants (3 dB adaptation, 10 dB loss, margin T);
these sweeps quantify how sensitive the headline behaviour is to each —
the analysis a full-paper evaluation would include.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core.beamsurfer import BeamSurferConfig
from repro.core.config import SilentTrackerConfig
from repro.experiments.fig2c import TrackingTrialResult, run_tracking_trial


def _run_sweep(
    configs: Dict[str, SilentTrackerConfig],
    scenario: str,
    n_trials: int,
    base_seed: int,
    codebook: str = "narrow",
) -> Dict[str, List[TrackingTrialResult]]:
    return {
        label: [
            run_tracking_trial(
                scenario, seed=base_seed + k, config=config, codebook=codebook
            )
            for k in range(n_trials)
        ]
        for label, config in configs.items()
    }


def sweep_handover_margin(
    margins_db: Sequence[float] = (0.0, 3.0, 6.0, 9.0),
    scenario: str = "walk",
    n_trials: int = 20,
    base_seed: int = 300,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the margin T of edge E.

    Small T hands over early (risking ping-pong and weak-target RACH);
    large T delays until the serving link is nearly dead.
    """
    configs = {}
    for margin in margins_db:
        hysteresis = min(1.5, max(0.0, margin))
        configs[f"T={margin:g}dB"] = SilentTrackerConfig(
            handover_margin_db=margin, handover_hysteresis_db=hysteresis
        )
    return _run_sweep(configs, scenario, n_trials, base_seed)


def sweep_adapt_threshold(
    thresholds_db: Sequence[float] = (1.0, 3.0, 6.0),
    scenario: str = "rotation",
    n_trials: int = 20,
    base_seed: int = 400,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the 3 dB adaptation threshold (edges A/G/H).

    Tight thresholds switch beams eagerly (more dwells burnt probing);
    loose ones let alignment decay toward the 10 dB loss edge.
    """
    configs = {}
    for threshold in thresholds_db:
        configs[f"adapt={threshold:g}dB"] = SilentTrackerConfig(
            adapt_threshold_db=threshold,
            beamsurfer=BeamSurferConfig(adapt_threshold_db=threshold),
        )
    return _run_sweep(configs, scenario, n_trials, base_seed)


def sweep_codebook_beamwidth(
    scenario: str = "walk",
    n_trials: int = 20,
    base_seed: int = 500,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the mobile codebook granularity (narrow vs wide vs omni)."""
    config = SilentTrackerConfig()
    return {
        kind: [
            run_tracking_trial(
                scenario, seed=base_seed + k, config=config, codebook=kind
            )
            for k in range(n_trials)
        ]
        for kind in ("narrow", "wide", "omni")
    }


def sweep_loss_threshold(
    thresholds_db: Sequence[float] = (6.0, 10.0, 15.0),
    scenario: str = "vehicular",
    n_trials: int = 20,
    base_seed: int = 600,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the 10 dB loss threshold (edge D)."""
    configs = {}
    for threshold in thresholds_db:
        configs[f"loss={threshold:g}dB"] = SilentTrackerConfig(
            loss_threshold_db=threshold
        )
    return _run_sweep(configs, scenario, n_trials, base_seed)


def summarize_sweep(
    sweep: Dict[str, List[TrackingTrialResult]]
) -> List[dict]:
    """One summary row per sweep arm (label, completion rate, mean time...)."""
    rows = []
    for label, trials in sweep.items():
        completed = [t for t in trials if t.completed]
        times = [t.completion_time_s for t in completed]
        rows.append(
            {
                "label": label,
                "trials": len(trials),
                "completion_rate": len(completed) / len(trials) if trials else 0.0,
                "mean_completion_s": sum(times) / len(times) if times else None,
                "mean_switches": (
                    sum(t.beam_switches for t in completed) / len(completed)
                    if completed
                    else None
                ),
                "mean_reacquisitions": (
                    sum(t.reacquisitions for t in completed) / len(completed)
                    if completed
                    else None
                ),
            }
        )
    return rows
