"""Ablation sweeps over Silent Tracker's design constants.

The paper fixes three constants (3 dB adaptation, 10 dB loss, margin T);
these sweeps quantify how sensitive the headline behaviour is to each —
the analysis a full-paper evaluation would include.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.campaign.aggregate import aggregate_by_protocol, aggregate_sweep
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, config_to_overrides
from repro.core.beamsurfer import BeamSurferConfig
from repro.core.config import SilentTrackerConfig
from repro.experiments.fig2c import TrackingTrialResult


def sweep_spec(
    configs: Dict[str, SilentTrackerConfig],
    scenario: str,
    n_trials: int,
    base_seed: int,
    codebook: str = "narrow",
    name: str = "ablation",
) -> CampaignSpec:
    """An ablation sweep as a campaign grid (override-label x seed)."""
    return CampaignSpec(
        name=name,
        experiment="tracking",
        scenarios=(scenario,),
        protocols=(codebook,),
        seeds=n_trials,
        base_seed=base_seed,
        overrides={
            label: config_to_overrides(config)
            for label, config in configs.items()
        },
    )


def _run_sweep(
    configs: Dict[str, SilentTrackerConfig],
    scenario: str,
    n_trials: int,
    base_seed: int,
    codebook: str = "narrow",
    workers: int = 1,
) -> Dict[str, List[TrackingTrialResult]]:
    spec = sweep_spec(configs, scenario, n_trials, base_seed, codebook)
    result = run_campaign(spec, workers=workers)
    return aggregate_sweep(result.results_in_order())


def sweep_handover_margin(
    margins_db: Sequence[float] = (0.0, 3.0, 6.0, 9.0),
    scenario: str = "walk",
    n_trials: int = 20,
    base_seed: int = 300,
    workers: int = 1,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the margin T of edge E.

    Small T hands over early (risking ping-pong and weak-target RACH);
    large T delays until the serving link is nearly dead.
    """
    configs = {}
    for margin in margins_db:
        hysteresis = min(1.5, max(0.0, margin))
        configs[f"T={margin:g}dB"] = SilentTrackerConfig(
            handover_margin_db=margin, handover_hysteresis_db=hysteresis
        )
    return _run_sweep(configs, scenario, n_trials, base_seed, workers=workers)


def sweep_adapt_threshold(
    thresholds_db: Sequence[float] = (1.0, 3.0, 6.0),
    scenario: str = "rotation",
    n_trials: int = 20,
    base_seed: int = 400,
    workers: int = 1,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the 3 dB adaptation threshold (edges A/G/H).

    Tight thresholds switch beams eagerly (more dwells burnt probing);
    loose ones let alignment decay toward the 10 dB loss edge.
    """
    configs = {}
    for threshold in thresholds_db:
        configs[f"adapt={threshold:g}dB"] = SilentTrackerConfig(
            adapt_threshold_db=threshold,
            beamsurfer=BeamSurferConfig(adapt_threshold_db=threshold),
        )
    return _run_sweep(configs, scenario, n_trials, base_seed, workers=workers)


def sweep_codebook_beamwidth(
    scenario: str = "walk",
    n_trials: int = 20,
    base_seed: int = 500,
    workers: int = 1,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the mobile codebook granularity (narrow vs wide vs omni).

    The codebook is the campaign's protocol axis, so the grouping here
    is by protocol rather than by override label.
    """
    spec = CampaignSpec(
        name="ablation-codebook",
        experiment="tracking",
        scenarios=(scenario,),
        protocols=("narrow", "wide", "omni"),
        seeds=n_trials,
        base_seed=base_seed,
        overrides={"default": config_to_overrides(SilentTrackerConfig())},
    )
    result = run_campaign(spec, workers=workers)
    return aggregate_by_protocol(result.results_in_order())


def sweep_loss_threshold(
    thresholds_db: Sequence[float] = (6.0, 10.0, 15.0),
    scenario: str = "vehicular",
    n_trials: int = 20,
    base_seed: int = 600,
    workers: int = 1,
) -> Dict[str, List[TrackingTrialResult]]:
    """Sweep the 10 dB loss threshold (edge D)."""
    configs = {}
    for threshold in thresholds_db:
        configs[f"loss={threshold:g}dB"] = SilentTrackerConfig(
            loss_threshold_db=threshold
        )
    return _run_sweep(configs, scenario, n_trials, base_seed, workers=workers)


def summarize_sweep(
    sweep: Dict[str, List[TrackingTrialResult]]
) -> List[dict]:
    """One summary row per sweep arm (label, completion rate, mean time...)."""
    rows = []
    for label, trials in sweep.items():
        completed = [t for t in trials if t.completed]
        times = [t.completion_time_s for t in completed]
        rows.append(
            {
                "label": label,
                "trials": len(trials),
                "completion_rate": len(completed) / len(trials) if trials else 0.0,
                "mean_completion_s": sum(times) / len(times) if times else None,
                "mean_switches": (
                    sum(t.beam_switches for t in completed) / len(completed)
                    if completed
                    else None
                ),
                "mean_reacquisitions": (
                    sum(t.reacquisitions for t in completed) / len(completed)
                    if completed
                    else None
                ),
            }
        )
    return rows
