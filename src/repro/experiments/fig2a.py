"""Fig. 2a: directional neighbor-cell search under mobility.

Two panels:

* **Search latency** — number of beam-search dwells until the neighbor
  cell's beam is first found, for narrow (20 deg) vs wide (60 deg)
  receive codebooks.
* **Search success rate** — fraction of searches that find the beam
  within a deadline, for narrow / wide / omni.

Each trial places the mobile at the cell edge under the chosen mobility
model and runs a pure acquisition search (the N-A/R machinery) for the
neighbor cell.  Narrow beams need more dwells (more codebook entries to
walk) but succeed far more often: their extra gain keeps the SSB above
the detection floor where the omni antenna hears nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import summarize, success_rate
from repro.core.events import NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.measure.report import RssMeasurement

#: The neighbor cell the mobile searches for (serving is cellA).
TARGET_CELL = "cellB"


@dataclass(frozen=True)
class SearchTrialResult:
    """Outcome of one search trial."""

    success: bool
    dwells: int
    time_to_found_s: Optional[float]
    codebook: str
    scenario: str
    seed: int


class NeighborSearchProbe:
    """Minimal BurstListener: search one neighbor cell, nothing else.

    Isolates the Fig. 2a quantity (search behaviour under mobility) from
    serving-link dynamics, mirroring the paper's standalone search
    experiments.
    """

    def __init__(self, tracker: NeighborTracker, target_cell: str) -> None:
        self._tracker = tracker
        self._target = target_cell
        self.found_at_s: Optional[float] = None

    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        if cell_id != self._target:
            return None
        if self._tracker.state is NeighborState.TRACKING:
            return None  # done; stop burning dwells
        return self._tracker.beam_for_burst(cell_id)

    def on_measurement(self, measurement: RssMeasurement) -> None:
        already_found = self._tracker.state is NeighborState.TRACKING
        self._tracker.on_measurement(measurement, measurement.time_s)
        if not already_found and self._tracker.state is NeighborState.TRACKING:
            self.found_at_s = measurement.time_s


def run_search_trial(
    codebook: str,
    scenario: str = "walk",
    seed: int = 1,
    deadline_s: float = 1.0,
) -> SearchTrialResult:
    """One search trial: success iff the beam is found within the deadline."""
    deployment, mobile = build_cell_edge_deployment(
        seed, mobile_codebook=codebook, scenario=scenario
    )
    tracker = NeighborTracker(mobile.codebook, [TARGET_CELL])
    probe = NeighborSearchProbe(tracker, TARGET_CELL)
    mobile.attach_listener(probe)
    tracker.begin_search(0.0)
    deployment.run(deadline_s)
    success = tracker.state is NeighborState.TRACKING
    dwells = (
        tracker.search_dwells_at_found
        if success and tracker.search_dwells_at_found is not None
        else tracker.search_dwells
    )
    return SearchTrialResult(
        success=success,
        dwells=dwells,
        time_to_found_s=probe.found_at_s,
        codebook=codebook,
        scenario=scenario,
        seed=seed,
    )


def run_fig2a(
    n_trials: int = 40,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    base_seed: int = 100,
    codebooks: tuple = ("narrow", "wide", "omni"),
) -> Dict[str, dict]:
    """Both Fig. 2a panels for the given mobility scenario.

    Returns, per codebook kind::

        {"success_rate": float,
         "latency": summary-dict over dwell counts of successful trials,
         "trials": [SearchTrialResult, ...]}
    """
    if n_trials < 1:
        raise ValueError(f"need >= 1 trial, got {n_trials!r}")
    results: Dict[str, dict] = {}
    for codebook in codebooks:
        trials: List[SearchTrialResult] = [
            run_search_trial(
                codebook,
                scenario=scenario,
                seed=base_seed + k,
                deadline_s=deadline_s,
            )
            for k in range(n_trials)
        ]
        successes = [t for t in trials if t.success]
        results[codebook] = {
            "success_rate": success_rate(len(successes), len(trials)),
            "latency": summarize([float(t.dwells) for t in successes]),
            "trials": trials,
        }
    return results
