"""Fig. 2a: directional neighbor-cell search under mobility.

Two panels:

* **Search latency** — number of beam-search dwells until the neighbor
  cell's beam is first found, for narrow (20 deg) vs wide (60 deg)
  receive codebooks.
* **Search success rate** — fraction of searches that find the beam
  within a deadline, for narrow / wide / omni.

Each trial places the mobile at the cell edge under the chosen mobility
model and runs a pure acquisition search (the N-A/R machinery) for the
neighbor cell.  Narrow beams need more dwells (more codebook entries to
walk) but succeed far more often: their extra gain keeps the SSB above
the detection floor where the omni antenna hears nothing.

The module registers the ``search`` experiment kind: its campaign
``protocols`` axis is the mobile receive-codebook kind, validated
against :data:`repro.registry.CODEBOOKS`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_search
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.events import NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.measure.report import RssMeasurement
from repro.registry import CODEBOOKS, register_experiment

#: The neighbor cell the mobile searches for (serving is cellA).
TARGET_CELL = "cellB"


@dataclass(frozen=True)
class SearchTrialResult:
    """Outcome of one search trial."""

    success: bool
    dwells: int
    time_to_found_s: Optional[float]
    codebook: str
    scenario: str
    seed: int


class NeighborSearchProbe:
    """Minimal BurstListener: search one neighbor cell, nothing else.

    Isolates the Fig. 2a quantity (search behaviour under mobility) from
    serving-link dynamics, mirroring the paper's standalone search
    experiments.
    """

    def __init__(self, tracker: NeighborTracker, target_cell: str) -> None:
        self._tracker = tracker
        self._target = target_cell
        self.found_at_s: Optional[float] = None

    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        if cell_id != self._target:
            return None
        if self._tracker.state is NeighborState.TRACKING:
            return None  # done; stop burning dwells
        return self._tracker.beam_for_burst(cell_id)

    def on_measurement(self, measurement: RssMeasurement) -> None:
        already_found = self._tracker.state is NeighborState.TRACKING
        self._tracker.on_measurement(measurement, measurement.time_s)
        if not already_found and self._tracker.state is NeighborState.TRACKING:
            self.found_at_s = measurement.time_s


def run_search_trial(
    codebook: str,
    scenario: str = "walk",
    seed: int = 1,
    deadline_s: float = 1.0,
) -> SearchTrialResult:
    """One search trial: success iff the beam is found within the deadline."""
    spec = TrialSpec(
        scenario=scenario, codebook=codebook, seed=seed, duration_s=deadline_s
    )
    with Session(spec) as session:
        tracker = NeighborTracker(session.mobile.codebook, [TARGET_CELL])
        probe = NeighborSearchProbe(tracker, TARGET_CELL)
        session.attach_listener(probe)
        tracker.begin_search(0.0)
        session.run()
    success = tracker.state is NeighborState.TRACKING
    dwells = (
        tracker.search_dwells_at_found
        if success and tracker.search_dwells_at_found is not None
        else tracker.search_dwells
    )
    return SearchTrialResult(
        success=success,
        dwells=dwells,
        time_to_found_s=probe.found_at_s,
        codebook=codebook,
        scenario=scenario,
        seed=seed,
    )


# ----------------------------------------------------------- experiment kind
def _decode_search(payload: dict) -> SearchTrialResult:
    return SearchTrialResult(**payload)


@register_experiment(
    "search",
    decode=_decode_search,
    axis="codebook",
    protocol_axis="codebook",
    protocol_names=CODEBOOKS.names,
    default_protocols=("narrow", "wide", "omni"),
    description="Fig. 2a directional neighbor search (latency + success)",
    duration_param="deadline_s",
)
def _run_search_cell(cell) -> dict:
    result = run_search_trial(
        cell.protocol,
        scenario=cell.scenario,
        seed=cell.seed,
        deadline_s=float(cell.params.get("deadline_s", 1.0)),
    )
    return dataclasses.asdict(result)


def fig2a_spec(
    n_trials: int = 40,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    base_seed: int = 100,
    codebooks: tuple = ("narrow", "wide", "omni"),
    name: str = "fig2a",
) -> CampaignSpec:
    """The Fig. 2a sweep as a campaign grid (codebook x seed)."""
    return CampaignSpec(
        name=name,
        experiment="search",
        scenarios=(scenario,),
        protocols=tuple(codebooks),
        seeds=n_trials,
        base_seed=base_seed,
        params={"deadline_s": deadline_s},
    )


def run_fig2a(
    n_trials: int = 40,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    base_seed: int = 100,
    codebooks: tuple = ("narrow", "wide", "omni"),
    workers: int = 1,
) -> Dict[str, dict]:
    """Both Fig. 2a panels for the given mobility scenario.

    Thin wrapper over :func:`repro.campaign.runner.run_campaign` on the
    :func:`fig2a_spec` grid (in-memory; pass ``workers`` to fan the
    trials out over processes).  Returns, per codebook kind::

        {"success_rate": float,
         "latency": summary-dict over dwell counts of successful trials,
         "trials": [SearchTrialResult, ...]}
    """
    spec = fig2a_spec(
        n_trials=n_trials,
        scenario=scenario,
        deadline_s=deadline_s,
        base_seed=base_seed,
        codebooks=codebooks,
    )
    result = run_campaign(spec, workers=workers)
    return aggregate_search(result.results_in_order())[scenario]
