"""The paper's cell-edge testbed, as a simulator scenario.

Geometry (meters)::

        cellA (0,10)        cellB (20,10)        cellC (40,10)
           |                    |                    |
    ----------------- street (y = 0) ------------------->  x
              mobile moves / rotates on the street

The mobile operates at ~10-14 m from the base stations — the paper's
"cell edge, 10 m from the base station" setting.  The A/B boundary
(equal path loss) is at x = 10; the handover margin T is reached a
couple of meters beyond it.

Base stations transmit at 0 dBm (SDR-class EIRP before beamforming)
through 20-degree beams; with the mobile's codebook gain this leaves a
comfortable margin for narrow beams, a slimmer one for 60-degree wide
beams, and puts a bare omni receiver right at the detection floor —
reproducing the Fig. 2a success-rate ordering from first principles.

The mobility scenarios and mobile codebook kinds defined here are the
*built-in* entries of :data:`repro.registry.SCENARIOS` and
:data:`repro.registry.CODEBOOKS`; custom scenarios register through the
same decorators and run through every experiment unchanged.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory
from repro.mobility.rotation import DeviceRotation
from repro.mobility.vehicular import VehicularDriveBy
from repro.mobility.walk import HumanWalk
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.mobile import Mobile
from repro.phy.codebook import Codebook
from repro.registry import (
    SCENARIOS,
    make_codebook,
    register_codebook,
    register_scenario,
)
from repro.util.units import deg_per_s_to_rad_per_s, mph_to_mps

#: Paper mobility parameters.
WALK_SPEED_MPS = 1.4
ROTATION_RATE_DEG_S = 120.0
VEHICLE_SPEED_MPH = 20.0

#: The paper's scenarios, in presentation order.  New scenarios are
#: *registered* (see :func:`repro.registry.register_scenario`), not
#: added here; query ``SCENARIOS.names()`` for the live set.
SCENARIO_NAMES = ("walk", "rotation", "vehicular")

#: Base-station grid.
STATION_POSITIONS = {
    "cellA": Vec3(0.0, 10.0),
    "cellB": Vec3(20.0, 10.0),
    "cellC": Vec3(40.0, 10.0),
}
#: SSB phase stagger keeps the three cells' bursts non-overlapping so a
#: one-RF-chain mobile can visit all of them each period.
STATION_PHASES_S = {"cellA": 0.000, "cellB": 0.005, "cellC": 0.010}

BS_TX_POWER_DBM = 0.0
BS_BEAMWIDTH_DEG = 20.0

#: The paper's mobile codebook kinds; query ``CODEBOOKS.names()`` for
#: the live set including plugins.
CODEBOOK_KINDS = ("narrow", "wide", "omni")


# ------------------------------------------------------------- codebook arms
@register_codebook("narrow")
def _narrow_codebook() -> Codebook:
    """20-degree beams, 18 around the circle (the paper's default)."""
    return Codebook.uniform_azimuth(20.0, name="narrow-20deg")


@register_codebook("wide")
def _wide_codebook() -> Codebook:
    """60-degree beams, 6 around the circle."""
    return Codebook.uniform_azimuth(60.0, name="wide-60deg")


@register_codebook("omni")
def _omni_codebook() -> Codebook:
    """A single isotropic antenna (no beamforming gain)."""
    return Codebook.omni()


def make_mobile_codebook(kind: str) -> Codebook:
    """The mobile receive codebook for a Fig. 2a arm.

    ``kind`` is any registered codebook name — built-ins ``narrow`` (20
    degree), ``wide`` (60 degree), ``omni`` — resolved through
    :data:`repro.registry.CODEBOOKS`.
    """
    return make_codebook(kind)


# ------------------------------------------------------------ scenario arms
@register_scenario(
    "walk",
    duration_s=10.0,
    default_start_x=10.0,
    description="pedestrian walk along the street at 1.4 m/s",
)
def _build_walk(rng, start_x: float) -> Trajectory:
    return HumanWalk(
        Vec3(start_x, 0.0),
        Vec3(WALK_SPEED_MPS, 0.0),
        rng=rng,
    )


@register_scenario(
    "rotation",
    duration_s=8.0,
    default_start_x=14.0,
    description="stationary device rotating at 120 deg/s",
)
def _build_rotation(rng, start_x: float) -> Trajectory:
    return DeviceRotation(
        Vec3(start_x, 0.0),
        deg_per_s_to_rad_per_s(ROTATION_RATE_DEG_S),
        start_heading=0.0,
        rng=rng,
    )


@register_scenario(
    "vehicular",
    duration_s=4.0,
    default_start_x=7.0,
    description="vehicle drive-by at 20 mph",
)
def _build_vehicular(rng, start_x: float) -> Trajectory:
    return VehicularDriveBy(
        Vec3(start_x, 0.0),
        heading_rad=0.0,
        speed_mps=mph_to_mps(VEHICLE_SPEED_MPH),
        rng=rng,
    )


def make_trajectory(
    scenario: str,
    rng=None,
    start_x: Optional[float] = None,
) -> Trajectory:
    """The mobility model for a registered scenario.

    Default starting points put the mobile just short of the A/B
    handover boundary so a full soft-handover episode (search, track,
    trigger, random access) plays out within a couple of seconds —
    matching the regime Fig. 2c reports.
    """
    return SCENARIOS.get(scenario).make_trajectory(rng=rng, start_x=start_x)


def scenario_duration_s(scenario: str) -> float:
    """Long enough for one full handover episode in each scenario."""
    return SCENARIOS.get(scenario).duration_s


def build_street_grid_deployment(
    seed: int,
    config: Optional[DeploymentConfig] = None,
    n_cells: int = 3,
    bs_beamwidth_deg: Optional[float] = None,
) -> Deployment:
    """The paper's street grid of 60 GHz base stations, no mobiles yet.

    The shared substrate of the single-UE cell-edge testbed and the
    population-scale :mod:`repro.fleet` runs: stations, phases and power
    are identical, only the attached population differs.
    """
    if not 2 <= n_cells <= len(STATION_POSITIONS):
        raise ValueError(
            f"n_cells must be in [2, {len(STATION_POSITIONS)}], got {n_cells!r}"
        )
    base = config or DeploymentConfig()
    deployment = Deployment(
        DeploymentConfig(
            master_seed=seed,
            channel=base.channel,
            frame=base.frame,
            rach=base.rach,
            trace_enabled=base.trace_enabled,
            per_link_decode=base.per_link_decode,
            horizon_s=base.horizon_s,
        )
    )
    beamwidth = BS_BEAMWIDTH_DEG if bs_beamwidth_deg is None else bs_beamwidth_deg
    cell_ids = list(STATION_POSITIONS)[:n_cells]
    for cell_id in cell_ids:
        position = STATION_POSITIONS[cell_id]
        deployment.add_station(
            BaseStation(
                cell_id,
                # Base stations face the street (heading -y); with a full
                # 360-degree codebook the heading only fixes beam indexing.
                Pose(position, heading=-math.pi / 2.0),
                Codebook.uniform_azimuth(beamwidth, name=f"bs-{cell_id}"),
                tx_power_dbm=BS_TX_POWER_DBM,
                frame=base.frame,
                ssb_phase_s=STATION_PHASES_S[cell_id],
            )
        )
    return deployment


def build_corridor_deployment(
    seed: int,
    config: Optional[DeploymentConfig] = None,
    n_cells: int = 64,
    cell_pitch_m: float = 50.0,
    phase_slots: int = 8,
    pathloss_exponent: float = 3.2,
    bs_beamwidth_deg: Optional[float] = None,
) -> Deployment:
    """A dense urban corridor: ``n_cells`` stations along one street.

    The scale-out counterpart of :func:`build_street_grid_deployment`:
    stations sit every ``cell_pitch_m`` meters at the paper's 10 m
    setback, cycling through ``phase_slots`` SSB phase offsets, with an
    NLoS-grade path-loss exponent (default 3.2) so distant cells fall
    below the detection floor — the regime the spatial cell index and
    coalesced burst scheduling are built for.

    Phase offsets are placed at *half-slot* positions,
    ``(slot + 0.5) * period / phase_slots``, and validated to be
    non-integer-millisecond: every protocol-layer delay (RACH, handover
    timers) lives on an integer-millisecond lattice, so no foreign
    event can land exactly on a shared burst tick — the condition under
    which coalesced multi-station delivery is provably byte-identical
    to per-station scheduling.
    """
    if n_cells < 2:
        raise ValueError(f"need at least 2 cells, got {n_cells!r}")
    if cell_pitch_m <= 0.0:
        raise ValueError(f"cell pitch must be positive, got {cell_pitch_m!r}")
    if phase_slots < 1:
        raise ValueError(f"need at least 1 phase slot, got {phase_slots!r}")
    base = config or DeploymentConfig()
    channel = dataclasses.replace(
        base.channel, pathloss_exponent=pathloss_exponent
    )
    period_s = base.frame.ssb_period_s
    phases = [
        (slot + 0.5) * period_s / phase_slots for slot in range(phase_slots)
    ]
    for phase in phases:
        ms = phase * 1e3
        if abs(ms - round(ms)) < 1e-9:
            raise ValueError(
                f"phase_slots={phase_slots} puts an SSB phase at "
                f"{ms:.3f} ms — an integer-millisecond offset can collide "
                f"with protocol events on a shared coalesced tick; choose "
                f"a slot count whose half-slot phases are off-lattice"
            )
    deployment = Deployment(
        DeploymentConfig(
            master_seed=seed,
            channel=channel,
            frame=base.frame,
            rach=base.rach,
            trace_enabled=base.trace_enabled,
            per_link_decode=base.per_link_decode,
            horizon_s=base.horizon_s,
        )
    )
    beamwidth = BS_BEAMWIDTH_DEG if bs_beamwidth_deg is None else bs_beamwidth_deg
    for i in range(n_cells):
        deployment.add_station(
            BaseStation(
                f"cell{i:04d}",
                Pose(Vec3(i * cell_pitch_m, 10.0), heading=-math.pi / 2.0),
                Codebook.uniform_azimuth(beamwidth, name=f"bs-cell{i:04d}"),
                tx_power_dbm=BS_TX_POWER_DBM,
                frame=base.frame,
                ssb_phase_s=phases[i % phase_slots],
            )
        )
    return deployment


def build_cell_edge_deployment(
    seed: int,
    mobile_codebook: str = "narrow",
    scenario: str = "walk",
    config: Optional[DeploymentConfig] = None,
    n_cells: int = 3,
    start_x: Optional[float] = None,
    bs_beamwidth_deg: Optional[float] = None,
) -> Tuple[Deployment, Mobile]:
    """The paper's testbed: one mobile, three 60 GHz base stations.

    Returns the (not yet started) deployment and the mobile.  The caller
    attaches a protocol and runs the simulator — or lets
    :class:`repro.api.Session` own that lifecycle.  ``bs_beamwidth_deg``
    overrides the stations' codebook beamwidth (the bench suites use
    10-degree beams for SSB-dense variants).
    """
    deployment = build_street_grid_deployment(
        seed, config=config, n_cells=n_cells, bs_beamwidth_deg=bs_beamwidth_deg
    )
    trajectory = make_trajectory(
        scenario, rng=deployment.rng.stream("mobility"), start_x=start_x
    )
    mobile = deployment.add_mobile(
        Mobile("ue0", trajectory, make_mobile_codebook(mobile_codebook))
    )
    return deployment, mobile
