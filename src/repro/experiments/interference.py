"""EXT-SINR: cost of SSB burst alignment between neighboring cells.

The deployment staggers cell burst phases (cellA at 0 ms, cellB at
5 ms, ...), so a neighbor-search dwell hears one cell at a time.  If
bursts were *aligned* — as happens in synchronized networks — the same
dwell would receive the serving cell's sweep as co-channel
interference, degrading neighbor detection from SNR-limited to
SINR-limited.  This experiment sweeps the victim dwell across the
geometry and reports detection probability with and without the
aligned interferer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.scenarios import build_cell_edge_deployment
from repro.phy.interference import InterferenceField

#: Victim cell being searched for; interfering (serving) cell.
TARGET_CELL = "cellB"
INTERFERER_CELL = "cellA"


@dataclass(frozen=True)
class SinrSample:
    """Detection conditions at one mobile position."""

    x_m: float
    snr_db: float
    sinr_db: float
    detected_staggered: bool
    detected_aligned: bool


def sweep_positions(
    xs_m: List[float] = None,
    seed: int = 1,
) -> List[SinrSample]:
    """Evaluate neighbor-SSB detection along the street.

    At each position the mobile points its best receive beam at the
    target cell; the aligned case adds the serving cell (transmitting
    its own best beam toward the mobile, as it would mid-sweep) as a
    co-channel interferer.
    """
    if xs_m is None:
        xs_m = [4.0 + k for k in range(13)]  # 4..16 m along the street
    deployment, mobile = build_cell_edge_deployment(seed, scenario="walk")
    target = deployment.station(TARGET_CELL)
    interferer = deployment.station(INTERFERER_CELL)
    field = InterferenceField(deployment.channel)
    budget = target.link_budget
    samples: List[SinrSample] = []
    for x in xs_m:
        # Re-pose the mobile by sampling its trajectory start offset:
        # use the pose helper directly with a shifted position.
        pose = mobile.pose_at(0.0)
        pose = type(pose)(type(pose.position)(x, pose.position.y), pose.heading)
        gain_fn = _gain_fn_for(mobile, pose)
        rx_beam = mobile.codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(target.pose.position))
        ).index
        bearing_to_mobile = target.pose.bearing_to(pose.position)
        signal = deployment.channel.mean_rss_dbm(
            target.pose,
            pose,
            target.tx_gain_dbi(
                target.best_tx_beam_towards(bearing_to_mobile), bearing_to_mobile
            ),
            gain_fn(rx_beam, pose.bearing_to(target.pose.position)),
            target.tx_power_dbm,
        )
        snr = budget.snr_db(signal)
        interferer_beam = interferer.best_tx_beam_towards(
            interferer.pose.bearing_to(pose.position)
        )
        sinr = field.dwell_sinr_db(
            signal,
            [(interferer, interferer_beam)],
            pose,
            gain_fn,
            rx_beam,
            budget.noise_floor_dbm,
        )
        samples.append(
            SinrSample(
                x_m=x,
                snr_db=snr,
                sinr_db=sinr,
                detected_staggered=snr >= budget.detection_snr_db,
                detected_aligned=sinr >= budget.detection_snr_db,
            )
        )
    return samples


def _gain_fn_for(mobile, pose):
    """Receive-gain closure for an explicit pose (not trajectory time)."""

    def gain(rx_beam: int, world_azimuth: float) -> float:
        return mobile.codebook.gain_dbi(rx_beam, pose.world_to_body(world_azimuth))

    return gain


def summarize_alignment_cost(samples: List[SinrSample]) -> Dict[str, float]:
    """Aggregate the sweep into the EXT-SINR bench's row."""
    if not samples:
        raise ValueError("no samples")
    n = len(samples)
    degradations = [s.snr_db - s.sinr_db for s in samples]
    return {
        "positions": n,
        "detect_rate_staggered": sum(s.detected_staggered for s in samples) / n,
        "detect_rate_aligned": sum(s.detected_aligned for s in samples) / n,
        "mean_sinr_penalty_db": sum(degradations) / n,
        "max_sinr_penalty_db": max(degradations),
    }
