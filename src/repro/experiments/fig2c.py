"""Fig. 2c: soft-handover completion time under the three mobility models.

Each trial runs the full Silent Tracker protocol — serving maintenance,
silent neighbor tracking, handover trigger, random access — at the cell
edge under one mobility scenario, and measures the **completion time**:
from neighbor-search initiation (edge B) to successful random-access
conclusion (msg4).  The paper's Fig. 2c plots the CDF of this quantity
per scenario; all three concentrate between roughly 0.4 and 1.8 s, with
the fast-dynamics scenarios (rotation, vehicular) carrying heavier
tails from beam re-acquisitions.

The module registers the ``tracking`` experiment kind: its campaign
``protocols`` axis is the mobile receive-codebook kind.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_tracking
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, build_config, config_to_overrides
from repro.core.config import SilentTrackerConfig
from repro.experiments.scenarios import SCENARIO_NAMES
from repro.net.handover import HandoverOutcome
from repro.registry import CODEBOOKS, register_experiment

SERVING_CELL = "cellA"


@dataclass(frozen=True)
class TrackingTrialResult:
    """Outcome of one full Silent Tracker trial."""

    scenario: str
    seed: int
    completed: bool
    #: Edge B to msg4 (the Fig. 2c quantity), None if never completed.
    completion_time_s: Optional[float]
    #: Edge C to msg4: how long the tracker held the beam aligned.
    tracking_time_s: Optional[float]
    outcome: Optional[HandoverOutcome]
    beam_switches: int
    reacquisitions: int
    interruption_s: Optional[float]
    rach_attempts: int


def run_tracking_trial(
    scenario: str,
    seed: int = 1,
    config: Optional[SilentTrackerConfig] = None,
    codebook: str = "narrow",
    duration_s: Optional[float] = None,
) -> TrackingTrialResult:
    """One end-to-end Silent Tracker run; reports the first handover episode."""
    spec = TrialSpec(
        scenario=scenario,
        codebook=codebook,
        protocol="silent-tracker",
        seed=seed,
        duration_s=duration_s,
        serving_cell=SERVING_CELL,
        config=config,
    )
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()

    timeline = next(
        (t for t in protocol.timelines if t.complete_s is not None), None
    )
    records = protocol.handover_log.records
    completed_record = next((r for r in records if r.complete_s is not None), None)
    return TrackingTrialResult(
        scenario=scenario,
        seed=seed,
        completed=timeline is not None,
        completion_time_s=timeline.completion_time_s if timeline else None,
        tracking_time_s=timeline.tracking_time_s if timeline else None,
        outcome=timeline.outcome if timeline else None,
        beam_switches=(
            timeline.beam_switches_while_tracking if timeline else 0
        ),
        reacquisitions=timeline.reacquisitions if timeline else 0,
        interruption_s=(
            completed_record.interruption_s if completed_record else None
        ),
        rach_attempts=completed_record.rach_attempts if completed_record else 0,
    )


# ----------------------------------------------------------- experiment kind
def _decode_tracking(payload: dict) -> TrackingTrialResult:
    record = dict(payload)
    outcome = record.get("outcome")
    record["outcome"] = HandoverOutcome(outcome) if outcome else None
    return TrackingTrialResult(**record)


@register_experiment(
    "tracking",
    decode=_decode_tracking,
    axis="codebook",
    protocol_axis="codebook",
    protocol_names=CODEBOOKS.names,
    default_protocols=("narrow",),
    description="Fig. 2c full Silent Tracker handover episodes",
    accepts_config=True,
)
def _run_tracking_cell(cell) -> dict:
    result = run_tracking_trial(
        cell.scenario,
        seed=cell.seed,
        config=build_config(cell.overrides),
        codebook=cell.protocol,
        duration_s=cell.params.get("duration_s"),
    )
    payload = dataclasses.asdict(result)
    payload["outcome"] = result.outcome.value if result.outcome else None
    return payload


def fig2c_spec(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    n_trials: int = 40,
    base_seed: int = 200,
    config: Optional[SilentTrackerConfig] = None,
    codebook: str = "narrow",
    name: str = "fig2c",
) -> CampaignSpec:
    """The Fig. 2c sweep as a campaign grid (scenario x seed)."""
    return CampaignSpec(
        name=name,
        experiment="tracking",
        scenarios=tuple(scenarios),
        protocols=(codebook,),
        seeds=n_trials,
        base_seed=base_seed,
        overrides={"default": config_to_overrides(config)},
    )


def run_fig2c(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    n_trials: int = 40,
    base_seed: int = 200,
    config: Optional[SilentTrackerConfig] = None,
    codebook: str = "narrow",
    workers: int = 1,
) -> Dict[str, dict]:
    """The Fig. 2c data: per scenario, completion-time samples + stats.

    Thin wrapper over :func:`repro.campaign.runner.run_campaign` on the
    :func:`fig2c_spec` grid.  Returns, per scenario::

        {"completion_times_s": [...],   # successful episodes only
         "completion_rate": float,      # episodes completed / trials
         "soft_rate": float,            # soft / completed
         "trials": [TrackingTrialResult, ...]}
    """
    spec = fig2c_spec(
        scenarios=scenarios,
        n_trials=n_trials,
        base_seed=base_seed,
        config=config,
        codebook=codebook,
    )
    result = run_campaign(spec, workers=workers)
    aggregated = aggregate_tracking(result.results_in_order())
    return {scenario: aggregated[scenario] for scenario in spec.scenarios}
