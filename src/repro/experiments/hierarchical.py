"""Extension experiment: hierarchical (wide -> narrow) neighbor search.

The paper's mobile searches its narrow codebook exhaustively.  The
standard alternative (e.g. IEEE 802.11ad SLS, and the fast-training
strategies of the paper's ref. [6]) is two-stage: sweep a coarse tier
first, then refine only the winning sector's narrow children.  This
experiment quantifies the trade the paper implicitly makes:

* Hierarchical search needs **fewer dwells** when the coarse tier is
  detectable, but
* the coarse tier has **less gain**, so at the cell edge the first
  stage itself starts missing — exactly the Fig. 2a wide-beam failure
  mode — and the two-stage search loses its advantage.

The module registers the ``hierarchical`` experiment kind: its campaign
``protocols`` axis is the search strategy (:data:`SEARCH_STRATEGIES`),
so exhaustive-vs-hierarchical runs as a paired-seed grid like every
other comparison.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import summarize, success_rate
from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_by_protocol
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.events import NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.experiments.fig2a import TARGET_CELL, NeighborSearchProbe
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook, HierarchicalCodebook
from repro.registry import register_experiment

#: The search-strategy arms of the ``hierarchical`` experiment kind.
SEARCH_STRATEGIES = ("exhaustive", "hierarchical")


@dataclass(frozen=True)
class HierarchicalTrialResult:
    """Outcome of one search-strategy trial.

    ``stage_reached`` is 1 (coarse only) or 2 (refined) for the
    two-stage strategy, and 0 for the single-tier exhaustive baseline.
    """

    success: bool
    dwells: int
    stage_reached: int
    seed: int


class HierarchicalSearchProbe:
    """BurstListener running a coarse-then-fine search on one cell."""

    def __init__(self, hierarchy: HierarchicalCodebook, target_cell: str) -> None:
        self._hierarchy = hierarchy
        self._target = target_cell
        self._stage = 1
        self._coarse_order = hierarchy.coarse.sweep_order()
        self._cursor = 0
        self._fine_candidates: List[int] = []
        self.dwells = 0
        self.found_beam: Optional[int] = None
        self.found_rss: Optional[float] = None
        #: Codebook the current dwell should use ('coarse' or 'fine').
        self.active_tier = "coarse"

    @property
    def stage(self) -> int:
        return self._stage

    @property
    def done(self) -> bool:
        return self.found_beam is not None

    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        if cell_id != self._target or self.done:
            return None
        if self._stage == 1:
            self.active_tier = "coarse"
            return self._coarse_order[self._cursor % len(self._coarse_order)]
        self.active_tier = "fine"
        return self._fine_candidates[self._cursor % len(self._fine_candidates)]

    def on_measurement(self, measurement: RssMeasurement) -> None:
        if self.done:
            return
        self.dwells += 1
        if self._stage == 1:
            if measurement.detected:
                # Coarse hit: refine inside this sector.
                self._fine_candidates = self._hierarchy.children(
                    measurement.rx_beam
                )
                if not self._fine_candidates:
                    self._fine_candidates = [0]
                self._stage = 2
                self._cursor = 0
            else:
                self._cursor += 1
        else:
            if measurement.detected:
                self.found_beam = measurement.rx_beam
                self.found_rss = measurement.rss_dbm
            else:
                self._cursor += 1


class TierSwitchingMobileShim:
    """Presents the right codebook tier to the link engine per dwell.

    The Mobile owns a single codebook; for the two-tier search we swap
    the codebook reference according to the probe's active tier before
    each burst.  A listener wrapper keeps this in one place.
    """

    def __init__(self, mobile, probe, coarse: Codebook, fine: Codebook) -> None:
        self._mobile = mobile
        self._probe = probe
        self._coarse = coarse
        self._fine = fine

    def choose_rx_beam(self, cell_id: str, now_s: float) -> Optional[int]:
        beam = self._probe.choose_rx_beam(cell_id, now_s)
        if beam is None:
            return None
        self._mobile.codebook = (
            self._coarse if self._probe.active_tier == "coarse" else self._fine
        )
        return beam

    def on_measurement(self, measurement: RssMeasurement) -> None:
        self._probe.on_measurement(measurement)


def run_hierarchical_trial(
    seed: int = 1,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    coarse_deg: float = 60.0,
    fine_deg: float = 20.0,
) -> HierarchicalTrialResult:
    """One two-stage search trial against the cell-edge deployment."""
    spec = TrialSpec(
        scenario=scenario, codebook="narrow", seed=seed, duration_s=deadline_s
    )
    with Session(spec) as session:
        coarse = Codebook.uniform_azimuth(coarse_deg, name="coarse")
        fine = Codebook.uniform_azimuth(fine_deg, name="fine")
        hierarchy = HierarchicalCodebook(coarse, fine)
        probe = HierarchicalSearchProbe(hierarchy, TARGET_CELL)
        session.attach_listener(
            TierSwitchingMobileShim(session.mobile, probe, coarse, fine)
        )
        session.run()
    return HierarchicalTrialResult(
        success=probe.done,
        dwells=probe.dwells,
        stage_reached=probe.stage,
        seed=seed,
    )


def run_exhaustive_trial(
    seed: int, scenario: str, deadline_s: float
) -> HierarchicalTrialResult:
    """Exhaustive narrow-beam search baseline (same machinery as Fig 2a)."""
    spec = TrialSpec(
        scenario=scenario, codebook="narrow", seed=seed, duration_s=deadline_s
    )
    with Session(spec) as session:
        tracker = NeighborTracker(session.mobile.codebook, [TARGET_CELL])
        probe = NeighborSearchProbe(tracker, TARGET_CELL)
        session.attach_listener(probe)
        tracker.begin_search(0.0)
        session.run()
    success = tracker.state is NeighborState.TRACKING
    dwells = (
        tracker.search_dwells_at_found
        if success and tracker.search_dwells_at_found is not None
        else tracker.search_dwells
    )
    return HierarchicalTrialResult(
        success=success, dwells=dwells, stage_reached=0, seed=seed
    )


# ----------------------------------------------------------- experiment kind
def _decode_strategy(payload: dict) -> HierarchicalTrialResult:
    return HierarchicalTrialResult(**payload)


@register_experiment(
    "hierarchical",
    decode=_decode_strategy,
    axis="custom",
    protocol_axis="search strategy",
    protocol_names=lambda: SEARCH_STRATEGIES,
    default_protocols=SEARCH_STRATEGIES,
    description="exhaustive vs two-stage (coarse->fine) neighbor search",
    duration_param="deadline_s",
)
def _run_strategy_cell(cell) -> dict:
    deadline_s = float(cell.params.get("deadline_s", 1.0))
    if cell.protocol == "exhaustive":
        result = run_exhaustive_trial(cell.seed, cell.scenario, deadline_s)
    else:
        result = run_hierarchical_trial(
            seed=cell.seed,
            scenario=cell.scenario,
            deadline_s=deadline_s,
            coarse_deg=float(cell.params.get("coarse_deg", 60.0)),
            fine_deg=float(cell.params.get("fine_deg", 20.0)),
        )
    return dataclasses.asdict(result)


def strategy_spec(
    n_trials: int = 20,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    base_seed: int = 3000,
    name: str = "hierarchical",
) -> CampaignSpec:
    """Exhaustive-vs-hierarchical as a campaign grid (strategy x seed)."""
    return CampaignSpec(
        name=name,
        experiment="hierarchical",
        scenarios=(scenario,),
        protocols=SEARCH_STRATEGIES,
        seeds=n_trials,
        base_seed=base_seed,
        params={"deadline_s": deadline_s},
    )


def compare_search_strategies(
    n_trials: int = 20,
    scenario: str = "walk",
    deadline_s: float = 1.0,
    base_seed: int = 3000,
    workers: int = 1,
) -> Dict[str, dict]:
    """Exhaustive vs hierarchical: success rate and dwell counts.

    Thin wrapper over :func:`repro.campaign.runner.run_campaign` on the
    :func:`strategy_spec` grid (paired seeds across the two arms).
    """
    spec = strategy_spec(
        n_trials=n_trials,
        scenario=scenario,
        deadline_s=deadline_s,
        base_seed=base_seed,
    )
    result = run_campaign(spec, workers=workers)
    by_strategy = aggregate_by_protocol(result.results_in_order())
    exhaustive = by_strategy.get("exhaustive", [])
    hierarchical = by_strategy.get("hierarchical", [])
    ex_successes = [t.dwells for t in exhaustive if t.success]
    hi_successes = [t.dwells for t in hierarchical if t.success]
    return {
        "exhaustive": {
            "success_rate": success_rate(len(ex_successes), n_trials),
            "latency": summarize([float(d) for d in ex_successes]),
        },
        "hierarchical": {
            "success_rate": success_rate(len(hi_successes), n_trials),
            "latency": summarize([float(d) for d in hi_successes]),
            "stage2_reached": sum(
                1 for t in hierarchical if t.stage_reached == 2
            ),
        },
    }
