"""Silent Tracker vs. reactive hard handover vs. genie oracle.

The comparison the paper's introduction motivates: a reactive mobile
that ignores neighbors until its serving link dies pays the full
directional search plus context-free initial access — seconds of
interruption — while Silent Tracker's silently tracked beam converts
the same crossing into a make-before-break switch.

The module registers the ``comparison`` experiment kind: its campaign
``protocols`` axis is the protocol arm itself, validated against
:data:`repro.registry.PROTOCOLS` — so a plugin protocol registered via
:func:`repro.registry.register_protocol` slots straight into the same
paired-seed grid as the paper's three arms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_comparison
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, build_config
from repro.core.config import SilentTrackerConfig
from repro.net.handover import HandoverOutcome
from repro.registry import PROTOCOLS, register_experiment

SERVING_CELL = "cellA"

#: Long enough for the serving link to actually die in every scenario,
#: which the reactive baseline requires before it does anything.
#: Scenarios not listed here fall back to their registered duration.
COMPARISON_DURATION_S = {"walk": 20.0, "rotation": 12.0, "vehicular": 6.0}


@dataclass(frozen=True)
class ComparisonTrialResult:
    """Per-trial outcome for one protocol arm."""

    protocol: str
    scenario: str
    seed: int
    handovers_completed: int
    soft_handovers: int
    hard_handovers: int
    #: Service interruption of the first completed handover (seconds).
    first_interruption_s: Optional[float]


def run_comparison_trial(
    protocol_name: str,
    scenario: str,
    seed: int = 1,
    config: Optional[SilentTrackerConfig] = None,
    codebook: str = "narrow",
    duration_s: Optional[float] = None,
) -> ComparisonTrialResult:
    """Run one registered protocol arm through one scenario."""
    # The walk must continue well past the boundary so the serving cell
    # genuinely dies for the reactive arm; start further back so Silent
    # Tracker sees the same crossing.
    if duration_s is None:
        duration_s = COMPARISON_DURATION_S.get(scenario)
    spec = TrialSpec(
        scenario=scenario,
        codebook=codebook,
        protocol=protocol_name,
        seed=seed,
        duration_s=duration_s,
        serving_cell=SERVING_CELL,
        config=config,
    )
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()
    records = [r for r in protocol.handover_log.records if r.complete_s is not None]
    first = records[0] if records else None
    return ComparisonTrialResult(
        protocol=protocol_name,
        scenario=scenario,
        seed=seed,
        handovers_completed=len(records),
        soft_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.SOFT
        ),
        hard_handovers=sum(
            1 for r in records if r.outcome is HandoverOutcome.HARD
        ),
        first_interruption_s=first.interruption_s if first else None,
    )


# ----------------------------------------------------------- experiment kind
def _decode_comparison(payload: dict) -> ComparisonTrialResult:
    return ComparisonTrialResult(**payload)


@register_experiment(
    "comparison",
    decode=_decode_comparison,
    axis="protocol",
    protocol_axis="protocol",
    protocol_names=PROTOCOLS.names,
    default_protocols=("silent-tracker", "reactive", "oracle"),
    description="protocol arms head to head over paired seeds",
    accepts_config=True,
)
def _run_comparison_cell(cell) -> dict:
    return dataclasses.asdict(
        run_comparison_trial(
            cell.protocol,
            cell.scenario,
            seed=cell.seed,
            config=build_config(cell.overrides),
            codebook=str(cell.params.get("codebook", "narrow")),
            duration_s=cell.params.get("duration_s"),
        )
    )


def comparison_spec(
    scenario: str = "vehicular",
    n_trials: int = 20,
    base_seed: int = 700,
    protocols: tuple = ("silent-tracker", "reactive", "oracle"),
    name: str = "comparison",
) -> CampaignSpec:
    """The baseline comparison as a campaign grid (protocol x seed)."""
    return CampaignSpec(
        name=name,
        experiment="comparison",
        scenarios=(scenario,),
        protocols=tuple(protocols),
        seeds=n_trials,
        base_seed=base_seed,
    )


def run_comparison(
    scenario: str = "vehicular",
    n_trials: int = 20,
    base_seed: int = 700,
    protocols: tuple = ("silent-tracker", "reactive", "oracle"),
    workers: int = 1,
) -> Dict[str, List[ComparisonTrialResult]]:
    """All protocol arms over the same seeds (paired comparison).

    Thin wrapper over :func:`repro.campaign.runner.run_campaign` on the
    :func:`comparison_spec` grid.
    """
    spec = comparison_spec(
        scenario=scenario,
        n_trials=n_trials,
        base_seed=base_seed,
        protocols=protocols,
    )
    result = run_campaign(spec, workers=workers)
    return aggregate_comparison(result.results_in_order())


def summarize_comparison(
    results: Dict[str, List[ComparisonTrialResult]]
) -> List[dict]:
    """One row per protocol: completion, softness, interruption."""
    rows = []
    for name, trials in results.items():
        completed = [t for t in trials if t.handovers_completed > 0]
        interruptions = [
            t.first_interruption_s
            for t in completed
            if t.first_interruption_s is not None
        ]
        total_soft = sum(t.soft_handovers for t in trials)
        total_resolved = total_soft + sum(t.hard_handovers for t in trials)
        rows.append(
            {
                "protocol": name,
                "trials": len(trials),
                "completed_any": len(completed),
                "soft_ratio": (total_soft / total_resolved) if total_resolved else None,
                "mean_interruption_s": (
                    sum(interruptions) / len(interruptions)
                    if interruptions
                    else None
                ),
            }
        )
    return rows
