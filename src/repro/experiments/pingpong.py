"""ABL-PP: ping-pong handovers vs time-to-trigger.

A mobile loitering at the cell boundary sees the two cells' RSS cross
repeatedly as shadowing evolves.  The paper's minimal trigger (edge E
fires the moment smoothed ``RSS_N > RSS_S + T``) hands over on every
crossing, so the mobile "ping-pongs" between cells, each switch costing
signalling and a brief service dip.  NR counters this with a
time-to-trigger (TTT): the margin must hold continuously before the
event fires.  This ablation parks a slow walker at the boundary and
counts churn as a function of TTT.

The module registers the ``pingpong`` experiment kind: TTT arms are
config overrides (the campaign ``overrides`` axis), the ``protocols``
axis is the mobile codebook, and the boundary-loiter placement rides in
the cell params.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_sweep
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, build_config, config_to_overrides
from repro.core.config import SilentTrackerConfig
from repro.registry import CODEBOOKS, register_experiment

#: Boundary-loiter defaults: the 'walk' trajectory started at the
#: equal-loss point gives a slow drift through the ping-pong zone.
PINGPONG_SCENARIO = "walk"
PINGPONG_START_X = 10.0
PINGPONG_DURATION_S = 12.0


@dataclass(frozen=True)
class PingPongTrialResult:
    """Handover churn observed in one boundary-loiter trial."""

    seed: int
    handovers: int
    ping_pongs: int  # immediate A->B->A returns
    mean_interruption_s: float


def count_ping_pongs(records) -> int:
    """A ping-pong = a completed handover straight back to the cell the
    previous completed handover came from.

    Shared metric definition: the ABL-PP ablation and the fleet
    population metrics count churn identically.
    """
    completed = [r for r in records if r.complete_s is not None]
    count = 0
    for previous, current in zip(completed, completed[1:]):
        if current.target_cell == previous.source_cell:
            count += 1
    return count


#: Back-compat alias (pre-fleet internal name).
_count_ping_pongs = count_ping_pongs


def _run_loiter_trial(
    config: SilentTrackerConfig,
    seed: int,
    duration_s: float,
    scenario: str = PINGPONG_SCENARIO,
    start_x: Optional[float] = PINGPONG_START_X,
    codebook: str = "narrow",
) -> PingPongTrialResult:
    """One boundary-loiter run of Silent Tracker under ``config``."""
    spec = TrialSpec(
        scenario=scenario,
        codebook=codebook,
        protocol="silent-tracker",
        seed=seed,
        duration_s=duration_s,
        start_x=start_x,
        config=config,
    )
    with Session(spec) as session:
        protocol = session.attach_protocol()
        session.run()
    completed = [
        r for r in protocol.handover_log.records if r.complete_s is not None
    ]
    interruptions = [r.interruption_s for r in completed]
    return PingPongTrialResult(
        seed=seed,
        handovers=len(completed),
        ping_pongs=_count_ping_pongs(protocol.handover_log.records),
        mean_interruption_s=(
            sum(interruptions) / len(interruptions) if interruptions else 0.0
        ),
    )


def run_pingpong_trial(
    time_to_trigger_s: float,
    seed: int = 1,
    margin_db: float = 3.0,
    duration_s: float = PINGPONG_DURATION_S,
) -> PingPongTrialResult:
    """Park the mobile at the A/B boundary and count the churn."""
    config = SilentTrackerConfig(
        handover_margin_db=margin_db,
        time_to_trigger_s=time_to_trigger_s,
    )
    return _run_loiter_trial(config, seed=seed, duration_s=duration_s)


# ----------------------------------------------------------- experiment kind
def _decode_pingpong(payload: dict) -> PingPongTrialResult:
    return PingPongTrialResult(**payload)


@register_experiment(
    "pingpong",
    decode=_decode_pingpong,
    axis="codebook",
    protocol_axis="codebook",
    protocol_names=CODEBOOKS.names,
    default_protocols=("narrow",),
    description="handover churn at the cell boundary vs time-to-trigger",
    accepts_config=True,
)
def _run_pingpong_cell(cell) -> dict:
    config = build_config(cell.overrides) or SilentTrackerConfig()
    start_x = cell.params.get("start_x", PINGPONG_START_X)
    result = _run_loiter_trial(
        config,
        seed=cell.seed,
        duration_s=float(cell.params.get("duration_s", PINGPONG_DURATION_S)),
        scenario=cell.scenario,
        start_x=None if start_x is None else float(start_x),
        codebook=cell.protocol,
    )
    return dataclasses.asdict(result)


def _ttt_label(time_to_trigger_s: float) -> str:
    return f"ttt={int(round(time_to_trigger_s * 1000))}ms"


def pingpong_spec(
    ttt_s_values: Sequence[float] = (0.0, 0.16, 0.48),
    n_trials: int = 10,
    base_seed: int = 8000,
    margin_db: float = 3.0,
    duration_s: float = PINGPONG_DURATION_S,
    name: str = "pingpong",
) -> CampaignSpec:
    """The TTT churn sweep as a campaign grid (override-label x seed)."""
    overrides = {
        _ttt_label(value): config_to_overrides(
            SilentTrackerConfig(
                handover_margin_db=margin_db, time_to_trigger_s=value
            )
        )
        for value in ttt_s_values
    }
    return CampaignSpec(
        name=name,
        experiment="pingpong",
        scenarios=(PINGPONG_SCENARIO,),
        protocols=("narrow",),
        seeds=n_trials,
        base_seed=base_seed,
        overrides=overrides,
        params={"duration_s": duration_s, "start_x": PINGPONG_START_X},
    )


def sweep_time_to_trigger(
    ttt_s_values: Sequence[float] = (0.0, 0.16, 0.48),
    n_trials: int = 10,
    base_seed: int = 8000,
    workers: int = 1,
) -> Dict[str, List[PingPongTrialResult]]:
    """Churn vs time-to-trigger, same seeds across arms (paired).

    The default values bracket NR's standardized TTT set (0, 160 ms,
    480 ms).  Thin wrapper over
    :func:`repro.campaign.runner.run_campaign` on the
    :func:`pingpong_spec` grid.
    """
    spec = pingpong_spec(
        ttt_s_values=ttt_s_values, n_trials=n_trials, base_seed=base_seed
    )
    result = run_campaign(spec, workers=workers)
    grouped = aggregate_sweep(result.results_in_order())
    return {label: grouped[label] for label in spec.overrides}


def summarize_pingpong(
    sweep: Dict[str, List[PingPongTrialResult]]
) -> List[dict]:
    """One row per TTT arm."""
    rows = []
    for label, trials in sweep.items():
        n = len(trials)
        rows.append(
            {
                "label": label,
                "mean_handovers": sum(t.handovers for t in trials) / n,
                "mean_ping_pongs": sum(t.ping_pongs for t in trials) / n,
                "trials_with_ping_pong": sum(
                    1 for t in trials if t.ping_pongs > 0
                ),
            }
        )
    return rows
