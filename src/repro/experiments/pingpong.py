"""ABL-PP: ping-pong handovers vs time-to-trigger.

A mobile loitering at the cell boundary sees the two cells' RSS cross
repeatedly as shadowing evolves.  The paper's minimal trigger (edge E
fires the moment smoothed ``RSS_N > RSS_S + T``) hands over on every
crossing, so the mobile "ping-pongs" between cells, each switch costing
signalling and a brief service dip.  NR counters this with a
time-to-trigger (TTT): the margin must hold continuously before the
event fires.  This ablation parks a slow walker at the boundary and
counts churn as a function of TTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.config import SilentTrackerConfig
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment


@dataclass(frozen=True)
class PingPongTrialResult:
    """Handover churn observed in one boundary-loiter trial."""

    seed: int
    handovers: int
    ping_pongs: int  # immediate A->B->A returns
    mean_interruption_s: float


def _count_ping_pongs(records) -> int:
    """A ping-pong = a completed handover straight back to the cell the
    previous completed handover came from."""
    completed = [r for r in records if r.complete_s is not None]
    count = 0
    for previous, current in zip(completed, completed[1:]):
        if current.target_cell == previous.source_cell:
            count += 1
    return count


def run_pingpong_trial(
    time_to_trigger_s: float,
    seed: int = 1,
    margin_db: float = 3.0,
    duration_s: float = 12.0,
) -> PingPongTrialResult:
    """Park the mobile at the A/B boundary and count the churn.

    The 'walk' trajectory starting at the equal-loss point gives a slow
    drift through the ping-pong zone.
    """
    config = SilentTrackerConfig(
        handover_margin_db=margin_db,
        time_to_trigger_s=time_to_trigger_s,
    )
    deployment, mobile = build_cell_edge_deployment(
        seed, scenario="walk", start_x=10.0
    )
    protocol = SilentTracker(deployment, mobile, "cellA", config)
    protocol.start()
    deployment.run(duration_s)
    protocol.stop()
    completed = [
        r for r in protocol.handover_log.records if r.complete_s is not None
    ]
    interruptions = [r.interruption_s for r in completed]
    return PingPongTrialResult(
        seed=seed,
        handovers=len(completed),
        ping_pongs=_count_ping_pongs(protocol.handover_log.records),
        mean_interruption_s=(
            sum(interruptions) / len(interruptions) if interruptions else 0.0
        ),
    )


def sweep_time_to_trigger(
    ttt_s_values: Sequence[float] = (0.0, 0.16, 0.48),
    n_trials: int = 10,
    base_seed: int = 8000,
) -> Dict[str, List[PingPongTrialResult]]:
    """Churn vs time-to-trigger, same seeds across arms (paired).

    The default values bracket NR's standardized TTT set (0, 160 ms,
    480 ms).
    """
    if n_trials < 1:
        raise ValueError(f"need >= 1 trial, got {n_trials!r}")
    return {
        f"ttt={int(round(value * 1000))}ms": [
            run_pingpong_trial(value, seed=base_seed + k)
            for k in range(n_trials)
        ]
        for value in ttt_s_values
    }


def summarize_pingpong(
    sweep: Dict[str, List[PingPongTrialResult]]
) -> List[dict]:
    """One row per TTT arm."""
    rows = []
    for label, trials in sweep.items():
        n = len(trials)
        rows.append(
            {
                "label": label,
                "mean_handovers": sum(t.handovers for t in trials) / n,
                "mean_ping_pongs": sum(t.ping_pongs for t in trials) / n,
                "trials_with_ping_pong": sum(
                    1 for t in trials if t.ping_pongs > 0
                ),
            }
        )
    return rows
