"""Workload generation: canned RSS traces and protocol replay.

Two uses:

* **Offline protocol study** — generate the RSS time-series a mobile
  would observe on a given beam toward a given cell under a scenario,
  without running the event loop.  This is the "workload generator"
  behind the calibration plots and several unit tests.
* **Replay** — drive a decision engine (BeamSurfer / NeighborTracker)
  from a canned or hand-crafted trace, so protocol corner cases can be
  scripted precisely and replayed deterministically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import Session, TrialSpec
from repro.campaign.aggregate import aggregate_workload
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.experiments.scenarios import SCENARIO_NAMES
from repro.measure.report import RssMeasurement
from repro.registry import UnknownNameError, register_experiment

#: The receive-beam policies of the workload generator (its campaign
#: ``protocols`` axis).
RX_BEAM_POLICIES = ("best", "fixed")


@dataclass(frozen=True)
class RssTracePoint:
    """One point of a generated RSS workload."""

    time_s: float
    rss_dbm: Optional[float]  # None = below detection floor
    snr_db: Optional[float]
    tx_beam: Optional[int]
    rx_beam: int
    distance_m: float


def generate_rss_trace(
    cell_id: str = "cellB",
    scenario: str = "walk",
    seed: int = 1,
    duration_s: float = 4.0,
    period_s: float = 0.020,
    rx_beam_policy: str = "best",
    fixed_rx_beam: int = 0,
) -> List[RssTracePoint]:
    """The RSS a mobile would measure toward ``cell_id`` over time.

    ``rx_beam_policy`` is ``"best"`` (genie-pointed every sample — the
    upper envelope a perfect tracker could achieve) or ``"fixed"``
    (hold ``fixed_rx_beam`` throughout — shows how motion walks the
    signal out of a static beam, the dynamic the 3 dB rule reacts to).
    """
    if rx_beam_policy not in RX_BEAM_POLICIES:
        raise UnknownNameError("rx-beam policy", rx_beam_policy, RX_BEAM_POLICIES)
    with Session(TrialSpec(scenario=scenario, seed=seed)) as session:
        mobile = session.mobile
        station = session.deployment.station(cell_id)
        trace: List[RssTracePoint] = []
        steps = int(duration_s / period_s)
        for k in range(steps):
            t = k * period_s
            if rx_beam_policy == "best":
                rx_beam = mobile.best_rx_beam_towards(station, t)
            else:
                rx_beam = fixed_rx_beam
            measurement = session.deployment.links.measure_burst(
                station,
                mobile.mobile_id,
                mobile.pose_at(t),
                mobile.rx_gain_fn(t),
                rx_beam,
                t,
            )
            trace.append(
                RssTracePoint(
                    time_s=t,
                    rss_dbm=measurement.rss_dbm,
                    snr_db=measurement.snr_db,
                    tx_beam=measurement.tx_beam,
                    rx_beam=rx_beam,
                    distance_m=mobile.pose_at(t).distance_to(station.pose.position),
                )
            )
    return trace


# ----------------------------------------------------------- experiment kind
def _decode_workload(payload: dict) -> List[RssTracePoint]:
    return [RssTracePoint(**point) for point in payload["points"]]


@register_experiment(
    "workload",
    decode=_decode_workload,
    axis="custom",
    protocol_axis="rx-beam policy",
    protocol_names=lambda: RX_BEAM_POLICIES,
    default_protocols=RX_BEAM_POLICIES,
    description="canned RSS traces (genie-pointed vs fixed receive beam)",
)
def _run_workload_cell(cell) -> dict:
    trace = generate_rss_trace(
        cell_id=str(cell.params.get("cell", "cellB")),
        scenario=cell.scenario,
        seed=cell.seed,
        duration_s=float(cell.params.get("duration_s", 4.0)),
        period_s=float(cell.params.get("period_s", 0.020)),
        rx_beam_policy=cell.protocol,
        fixed_rx_beam=int(cell.params.get("fixed_rx_beam", 0)),
    )
    return {
        "points": [dataclasses.asdict(point) for point in trace],
        "duty_cycle": detection_duty_cycle(trace),
    }


def workload_spec(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    policies: Sequence[str] = RX_BEAM_POLICIES,
    n_traces: int = 1,
    base_seed: int = 1,
    cell_id: str = "cellB",
    duration_s: float = 4.0,
    period_s: float = 0.020,
    fixed_rx_beam: int = 0,
    name: str = "workload",
) -> CampaignSpec:
    """An RSS-workload sweep as a campaign grid (scenario x policy x seed)."""
    return CampaignSpec(
        name=name,
        experiment="workload",
        scenarios=tuple(scenarios),
        protocols=tuple(policies),
        seeds=n_traces,
        base_seed=base_seed,
        params={
            "cell": cell_id,
            "duration_s": duration_s,
            "period_s": period_s,
            "fixed_rx_beam": fixed_rx_beam,
        },
    )


def run_workload_sweep(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    policies: Sequence[str] = RX_BEAM_POLICIES,
    n_traces: int = 1,
    base_seed: int = 1,
    cell_id: str = "cellB",
    duration_s: float = 4.0,
    period_s: float = 0.020,
    fixed_rx_beam: int = 0,
    workers: int = 1,
) -> Dict[str, Dict[str, List[List[RssTracePoint]]]]:
    """Generate RSS workloads over the full scenario x policy grid.

    Thin wrapper over :func:`repro.campaign.runner.run_campaign` on the
    :func:`workload_spec` grid; :func:`generate_rss_trace` remains the
    one-shot single-trace entry point.  Returns
    ``{scenario: {policy: [trace, ...]}}`` with traces in seed order.
    """
    spec = workload_spec(
        scenarios=scenarios,
        policies=policies,
        n_traces=n_traces,
        base_seed=base_seed,
        cell_id=cell_id,
        duration_s=duration_s,
        period_s=period_s,
        fixed_rx_beam=fixed_rx_beam,
    )
    result = run_campaign(spec, workers=workers)
    return aggregate_workload(result.results_in_order())


def trace_to_measurements(
    trace: Sequence[RssTracePoint], cell_id: str
) -> List[RssMeasurement]:
    """Convert a workload trace into protocol-consumable measurements."""
    return [
        RssMeasurement(
            point.time_s,
            cell_id,
            point.rx_beam,
            tx_beam=point.tx_beam,
            rss_dbm=point.rss_dbm,
            snr_db=point.snr_db,
        )
        for point in trace
    ]


def replay_into(
    measurements: Sequence[RssMeasurement],
    on_measurement: Callable[[RssMeasurement, float], None],
) -> int:
    """Feed a measurement sequence to a decision engine.

    ``on_measurement(measurement, now_s)`` matches the signature of
    :meth:`BeamSurfer.on_serving_measurement` and
    :meth:`NeighborTracker.on_measurement`.  Returns the number of
    measurements replayed.  Measurements must be time-ordered.
    """
    last_time = float("-inf")
    count = 0
    for measurement in measurements:
        if measurement.time_s < last_time:
            raise ValueError(
                f"measurements out of order at t={measurement.time_s!r}"
            )
        last_time = measurement.time_s
        on_measurement(measurement, measurement.time_s)
        count += 1
    return count


def detection_duty_cycle(trace: Sequence[RssTracePoint]) -> float:
    """Fraction of workload samples above the detection floor."""
    if not trace:
        raise ValueError("empty trace")
    return sum(1 for p in trace if p.rss_dbm is not None) / len(trace)
