"""Mobility models reproducing the paper's three scenarios.

Every model is a :class:`~repro.mobility.base.Trajectory`: a pure
function from simulated time to :class:`~repro.geometry.pose.Pose`.
Purity matters — the channel and protocol layers may evaluate the pose
at arbitrary times, and a trajectory must return identical poses for
identical times regardless of query order.  Stochastic "texture" (gait
sway, hand tremor) is therefore synthesized from fixed random phases
drawn once at construction.

Paper scenarios:

* Human walk — ``v = 1.4 m/s`` at 10 m from the base station
  (:class:`~repro.mobility.walk.HumanWalk`).
* Device rotation — ``omega = 120 deg/s``
  (:class:`~repro.mobility.rotation.DeviceRotation`).
* Vehicular — 20 mph drive-by
  (:class:`~repro.mobility.vehicular.VehicularDriveBy`).
"""

from repro.mobility.base import StaticPose, TimeShifted, Trajectory
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.rotation import DeviceRotation
from repro.mobility.vehicular import VehicularDriveBy
from repro.mobility.walk import HumanWalk
from repro.mobility.waypoint import WaypointPath

__all__ = [
    "DeviceRotation",
    "HumanWalk",
    "RandomWaypoint",
    "StaticPose",
    "TimeShifted",
    "Trajectory",
    "VehicularDriveBy",
    "WaypointPath",
]
