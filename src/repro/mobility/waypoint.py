"""Piecewise-linear waypoint paths.

General-purpose trajectory for examples and custom scenarios: the node
visits a list of waypoints at constant speed, heading along the current
segment, and stops at the final waypoint.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory
from repro.util.numerics import pairwise


class WaypointPath(Trajectory):
    """Visit ``waypoints`` in order at constant ``speed_mps``.

    Zero-length segments (repeated waypoints) are rejected — they would
    make the heading undefined.
    """

    def __init__(self, waypoints: Sequence[Vec3], speed_mps: float) -> None:
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps!r}")
        self._waypoints: List[Vec3] = list(waypoints)
        self._speed = speed_mps
        self._segment_starts: List[float] = [0.0]
        self._headings: List[float] = []
        elapsed = 0.0
        for a, b in pairwise(self._waypoints):
            length = a.distance_to(b)
            if length <= 0.0:
                raise ValueError(f"zero-length segment at waypoint {a!r}")
            self._headings.append((b - a).azimuth())
            elapsed += length / speed_mps
            self._segment_starts.append(elapsed)
        self._total_time = elapsed

    @property
    def total_time_s(self) -> float:
        """Time to traverse the whole path."""
        return self._total_time

    @property
    def speed_mps(self) -> float:
        return self._speed

    def position_bound(self, horizon_s=None):
        # The node is always on a segment between waypoints (clamped at
        # both ends), and distance to a fixed point is convex along a
        # segment, so the farthest reachable point from any center is a
        # waypoint.  Valid for every horizon.
        center = Vec3(
            sum(w.x for w in self._waypoints) / len(self._waypoints),
            sum(w.y for w in self._waypoints) / len(self._waypoints),
            sum(w.z for w in self._waypoints) / len(self._waypoints),
        )
        radius = max(center.distance_to(w) for w in self._waypoints)
        return (center, radius)

    def pose_at(self, time_s: float) -> Pose:
        clamped = min(max(time_s, 0.0), self._total_time)
        # Find the active segment: last start <= clamped.
        # Linear scan is fine; paths have a handful of waypoints.
        segment = 0
        for i in range(len(self._headings)):
            if self._segment_starts[i] <= clamped:
                segment = i
            else:
                break
        seg_elapsed = clamped - self._segment_starts[segment]
        origin = self._waypoints[segment]
        target = self._waypoints[segment + 1]
        direction = (target - origin).normalized()
        position = origin + direction * (self._speed * seg_elapsed)
        return Pose(position, self._headings[segment])
