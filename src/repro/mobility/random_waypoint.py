"""Random-waypoint mobility inside a rectangular area.

The classic evaluation model: pick a uniform random point in the area,
walk to it at the configured speed, optionally pause, repeat.  Used by
the extension experiments to stress Silent Tracker with unscripted
motion; the paper's own scenarios are the scripted walk / rotation /
vehicular models.

The waypoint sequence is drawn once at construction (enough waypoints
to cover ``horizon_s`` of motion), so ``pose_at`` stays a pure function
of time like every other trajectory.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory
from repro.mobility.waypoint import WaypointPath


class RandomWaypoint(Trajectory):
    """Uniform random waypoints in ``[x0, x1] x [y0, y1]``.

    Parameters
    ----------
    area:
        ``(x0, y0, x1, y1)`` bounds in meters.
    speed_mps:
        Constant walking speed between waypoints.
    rng:
        Source for the waypoint draws (required: an unseeded random walk
        would break run reproducibility).
    horizon_s:
        Amount of motion to pre-draw; the node stops at its last
        waypoint beyond this.
    """

    def __init__(
        self,
        area: Tuple[float, float, float, float],
        speed_mps: float,
        rng: np.random.Generator,
        horizon_s: float = 120.0,
        start: Vec3 = None,
    ) -> None:
        x0, y0, x1, y1 = area
        if x1 <= x0 or y1 <= y0:
            raise ValueError(f"degenerate area {area!r}")
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps!r}")
        if horizon_s <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon_s!r}")
        self.area = area
        self._speed = speed_mps

        def draw_point() -> Vec3:
            return Vec3(
                float(rng.uniform(x0, x1)), float(rng.uniform(y0, y1))
            )

        waypoints: List[Vec3] = [start if start is not None else draw_point()]
        travelled_time = 0.0
        while travelled_time < horizon_s:
            candidate = draw_point()
            leg = waypoints[-1].distance_to(candidate)
            if leg < 0.5:
                continue  # skip near-duplicate points (undefined heading)
            waypoints.append(candidate)
            travelled_time += leg / speed_mps
        self._path = WaypointPath(waypoints, speed_mps)

    @property
    def speed_mps(self) -> float:
        return self._speed

    @property
    def total_time_s(self) -> float:
        """Time until the node parks at its final waypoint."""
        return self._path.total_time_s

    def position_bound(self, horizon_s=None):
        # The pre-drawn waypoint path is the entire reachable set.
        return self._path.position_bound(horizon_s)

    def pose_at(self, time_s: float) -> Pose:
        return self._path.pose_at(time_s)
