"""Trajectory interface and trivial implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3


class Trajectory(ABC):
    """A pure function from time to pose.

    Implementations must be deterministic: ``pose_at(t)`` returns the
    same pose for the same ``t`` no matter how many times or in what
    order it is called.
    """

    @abstractmethod
    def pose_at(self, time_s: float) -> Pose:
        """Pose at simulated time ``time_s`` (seconds, may be any >= 0)."""

    def position_bound(
        self, horizon_s: Optional[float] = None
    ) -> Optional[Tuple[Vec3, float]]:
        """A ``(center, radius_m)`` circle provably containing
        ``position_at(t)`` for every ``t`` in ``[0, horizon_s]``.

        The spatial cell index derives candidate base-station sets from
        this bound, so implementations must be *conservative*: every
        reachable position within the horizon lies inside the circle.
        ``horizon_s=None`` asks for a bound valid for **all** ``t >= 0``;
        models with unbounded motion return ``None`` in that case (and
        the index simply keeps every station as a candidate for them).
        The default is ``None`` — unknown motion is never pruned.
        """
        return None

    def position_at(self, time_s: float) -> Vec3:
        """Convenience accessor for just the position."""
        return self.pose_at(time_s).position

    def heading_at(self, time_s: float) -> float:
        """Convenience accessor for just the heading."""
        return self.pose_at(time_s).heading

    def average_speed_mps(self, t0: float, t1: float, steps: int = 64) -> float:
        """Mean translational speed over ``[t0, t1]`` by arc sampling.

        Diagnostic helper used by scenario tests to confirm a model moves
        at its nominal speed.
        """
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0!r}, {t1!r}]")
        if steps < 1:
            raise ValueError(f"need >= 1 step, got {steps!r}")
        total = 0.0
        previous = self.position_at(t0)
        for k in range(1, steps + 1):
            current = self.position_at(t0 + (t1 - t0) * k / steps)
            total += previous.distance_to(current)
            previous = current
        return total / (t1 - t0)


def sample_poses(trajectories: Sequence["Trajectory"], time_s: float) -> List[Pose]:
    """Poses of a whole population at one instant, in input order.

    The cross-user pose-sampling entry point of the fleet burst path.
    Trajectory models are heterogeneous Python objects, so this is a
    plain ordered loop today; it exists so population-wide pose
    evaluation has one seam to optimize (per-model vectorization,
    caching) without touching the delivery code.
    """
    return [trajectory.pose_at(time_s) for trajectory in trajectories]


class StaticPose(Trajectory):
    """A node that never moves (base stations, parked devices)."""

    def __init__(self, pose: Pose) -> None:
        self._pose = pose

    def pose_at(self, time_s: float) -> Pose:
        return self._pose

    def position_bound(
        self, horizon_s: Optional[float] = None
    ) -> Optional[Tuple[Vec3, float]]:
        return (self._pose.position, 0.0)


class TimeShifted(Trajectory):
    """Wraps another trajectory with a time offset.

    ``TimeShifted(inner, 5.0).pose_at(t) == inner.pose_at(t - 5.0)``
    (clamped at the inner trajectory's origin).  Experiment runners use
    this to start a canned motion mid-run.
    """

    def __init__(self, inner: Trajectory, offset_s: float) -> None:
        self._inner = inner
        self._offset_s = offset_s

    def pose_at(self, time_s: float) -> Pose:
        return self._inner.pose_at(max(0.0, time_s - self._offset_s))

    def position_bound(
        self, horizon_s: Optional[float] = None
    ) -> Optional[Tuple[Vec3, float]]:
        # The shifted clock ``max(0, t - offset)`` over ``[0, horizon]``
        # covers a subset of the inner trajectory's ``[0, horizon]``
        # window (for non-negative offsets), so the inner bound is
        # conservative as-is.
        if self._offset_s < 0.0:
            return self._inner.position_bound(None)
        return self._inner.position_bound(horizon_s)
