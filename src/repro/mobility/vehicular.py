"""Vehicular drive-by trajectory.

The paper's vehicular scenario: the mobile passes the cell at 20 mph
(8.94 m/s).  Compared to the walk, the translation is ~6x faster, so the
angular rate seen from a base station 10 m off the road peaks at
``v / d ~= 0.9 rad/s ~= 51 deg/s`` at the point of closest approach —
between the walk and rotation scenarios in beam-switch pressure, but
with rapidly changing path loss as well.

Small suspension-induced heading jitter is included; fixed phases keep
the trajectory pure.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory
from repro.util.units import mph_to_mps


class VehicularDriveBy(Trajectory):
    """Straight-line drive at constant speed, heading locked to travel.

    Parameters
    ----------
    start:
        Position at t = 0.
    heading_rad:
        Direction of travel (also the device heading; the device is
        mounted in the vehicle).
    speed_mps:
        Speed in m/s.  Use :func:`speed_from_mph` for the paper's 20 mph.
    jitter_amplitude_rad:
        Suspension/road heading jitter.
    """

    def __init__(
        self,
        start: Vec3,
        heading_rad: float,
        speed_mps: float,
        jitter_amplitude_rad: float = math.radians(0.5),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps!r}")
        self._start = start
        self._heading = heading_rad
        self._speed = speed_mps
        self._velocity = Vec3.from_polar_xy(speed_mps, heading_rad)
        self._jitter_amplitude = jitter_amplitude_rad
        if rng is None:
            self._jitter_phases = (0.0, 0.0)
        else:
            phases = rng.uniform(0.0, 2.0 * math.pi, size=2)
            self._jitter_phases = (float(phases[0]), float(phases[1]))

    @property
    def speed_mps(self) -> float:
        return self._speed

    @staticmethod
    def from_mph(
        start: Vec3,
        heading_rad: float,
        speed_mph: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "VehicularDriveBy":
        """Construct from a speed in miles per hour (paper: 20 mph)."""
        return VehicularDriveBy(start, heading_rad, mph_to_mps(speed_mph), rng=rng)

    def position_bound(self, horizon_s=None):
        # Heading jitter never displaces the vehicle, so the bound is the
        # straight travel segment over the horizon.
        if horizon_s is None:
            return None
        end = self._start + self._velocity * horizon_s
        center = (self._start + end) * 0.5
        half = max(center.distance_to(self._start), center.distance_to(end))
        return (center, half)

    def pose_at(self, time_s: float) -> Pose:
        position = self._start + self._velocity * time_s
        jitter = self._jitter_amplitude * (
            0.6 * math.sin(2.0 * math.pi * 1.7 * time_s + self._jitter_phases[0])
            + 0.4 * math.sin(2.0 * math.pi * 4.3 * time_s + self._jitter_phases[1])
        )
        return Pose(position, wrap_to_pi(self._heading + jitter))
