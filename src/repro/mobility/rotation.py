"""Device-rotation trajectory.

The paper's rotation scenario spins the handset at ``omega = 120 deg/s``
in place.  Rotation is the hardest case for receive-beam tracking: every
body-frame beam's world direction sweeps at ``omega``, so a 20-degree
beam stays usable for only ``20/120 ~= 167 ms`` before an adjacent-beam
switch is required — while the geometry to the base stations does not
change at all.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory


class DeviceRotation(Trajectory):
    """In-place rotation at a constant angular rate, with optional tremor.

    Parameters
    ----------
    position:
        Fixed device location.
    omega_rad_per_s:
        Signed rotation rate (positive = CCW).  Paper: 120 deg/s.
    start_heading:
        Heading at t = 0.
    tremor_amplitude_rad:
        Small high-frequency hand tremor superimposed on the sweep.
    sweep_range_rad:
        When set, the device oscillates across ``+/- sweep_range/2``
        around the start heading (triangular sweep) instead of rotating
        without bound — matching how a person twists a handset back and
        forth rather than spinning forever.
    """

    def __init__(
        self,
        position: Vec3,
        omega_rad_per_s: float,
        start_heading: float = 0.0,
        tremor_amplitude_rad: float = math.radians(0.8),
        sweep_range_rad: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if omega_rad_per_s == 0.0:
            raise ValueError("rotation rate must be nonzero")
        if sweep_range_rad is not None and sweep_range_rad <= 0.0:
            raise ValueError(
                f"sweep range must be positive, got {sweep_range_rad!r}"
            )
        self._position = position
        self._omega = omega_rad_per_s
        self._start_heading = start_heading
        self._tremor_amplitude = tremor_amplitude_rad
        self._sweep_range = sweep_range_rad
        self._tremor_phase = (
            0.0 if rng is None else float(rng.uniform(0.0, 2.0 * math.pi))
        )

    @property
    def omega_rad_per_s(self) -> float:
        return self._omega

    def position_bound(self, horizon_s=None):
        # Sweep and tremor move the heading only; the device never
        # translates, so the bound is exact for any horizon.
        return (self._position, 0.0)

    def _sweep_offset(self, time_s: float) -> float:
        """Heading offset from the start heading at ``time_s``."""
        raw = self._omega * time_s
        if self._sweep_range is None:
            return raw
        # Triangular wave between -range/2 and +range/2.
        half = self._sweep_range / 2.0
        period = 2.0 * self._sweep_range / abs(self._omega)
        phase = math.fmod(abs(raw) / abs(self._omega), period) / period
        tri = 4.0 * half * (abs(phase - 0.5) - 0.25)
        return math.copysign(1.0, raw) * tri if raw != 0.0 else tri

    def pose_at(self, time_s: float) -> Pose:
        tremor = self._tremor_amplitude * math.sin(
            2.0 * math.pi * 9.0 * time_s + self._tremor_phase
        )
        heading = wrap_to_pi(
            self._start_heading + self._sweep_offset(time_s) + tremor
        )
        return Pose(self._position, heading)
