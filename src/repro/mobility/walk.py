"""Human-walk trajectory with gait texture.

The paper's walk scenario: a pedestrian carrying the mobile moves at
``v = 1.4 m/s`` along the cell edge, 10 m from the serving base station.
A straight constant-velocity line misses the two motion components that
actually stress beam management, so the model adds:

* **Gait sway** — lateral body oscillation at step frequency (~1.9 Hz
  at 1.4 m/s), a few centimeters in amplitude.
* **Heading wobble** — the hand-held device's orientation oscillates a
  few degrees around the direction of travel, at gait frequency plus a
  slower wander term.

Both are sums of sinusoids with phases fixed at construction from the
provided RNG, keeping ``pose_at`` a pure function of time.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import Trajectory


class HumanWalk(Trajectory):
    """Constant-velocity walk with gait sway and heading wobble.

    Parameters
    ----------
    start:
        Starting position (meters, world frame).
    velocity:
        Constant velocity vector; its magnitude is the walking speed
        (paper: 1.4 m/s) and its direction the path direction.
    sway_amplitude_m:
        Lateral sway amplitude (0 disables).
    wobble_amplitude_rad:
        Peak device-heading oscillation about the travel direction.
    rng:
        Source for the fixed phases; ``None`` uses zero phases
        (deterministic canonical gait).
    """

    def __init__(
        self,
        start: Vec3,
        velocity: Vec3,
        sway_amplitude_m: float = 0.03,
        wobble_amplitude_rad: float = math.radians(4.0),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        speed = velocity.norm_xy()
        if speed <= 0.0:
            raise ValueError("walk requires a nonzero horizontal velocity")
        self._start = start
        self._velocity = velocity
        self._speed = speed
        self._travel_heading = velocity.azimuth()
        # Step frequency scales with speed: ~1.35 steps/s per m/s of
        # speed (normal-gait fit), i.e. ~1.9 Hz at 1.4 m/s.
        self._gait_hz = 1.35 * speed
        self._sway_amplitude = sway_amplitude_m
        self._wobble_amplitude = wobble_amplitude_rad
        if rng is None:
            phases = np.zeros(3)
        else:
            phases = rng.uniform(0.0, 2.0 * math.pi, size=3)
        self._sway_phase = float(phases[0])
        self._wobble_phase = float(phases[1])
        self._wander_phase = float(phases[2])
        # Unit lateral direction (left of travel).
        self._lateral = Vec3(
            -math.sin(self._travel_heading), math.cos(self._travel_heading), 0.0
        )

    @property
    def speed_mps(self) -> float:
        return self._speed

    def position_bound(self, horizon_s=None):
        # Unbounded straight-line motion: only a finite horizon yields a
        # bound.  The position is the along-track point plus lateral
        # sway of at most the sway amplitude, so the segment midpoint
        # padded by (half segment + sway) covers every t in [0, horizon].
        if horizon_s is None:
            return None
        end = self._start + self._velocity * horizon_s
        center = (self._start + end) * 0.5
        half = max(center.distance_to(self._start), center.distance_to(end))
        return (center, half + abs(self._sway_amplitude))

    def pose_at(self, time_s: float) -> Pose:
        along = self._start + self._velocity * time_s
        sway = self._sway_amplitude * math.sin(
            2.0 * math.pi * self._gait_hz * time_s + self._sway_phase
        )
        position = along + self._lateral * sway
        wobble = self._wobble_amplitude * (
            0.7
            * math.sin(2.0 * math.pi * self._gait_hz * time_s + self._wobble_phase)
            # Slow wander: the user drifting the device over seconds.
            + 0.3 * math.sin(2.0 * math.pi * 0.2 * time_s + self._wander_phase)
        )
        heading = wrap_to_pi(self._travel_heading + wobble)
        return Pose(position, heading)
