"""FIG2B-FSM: Fig. 2b — the Silent Tracker state machine itself.

Fig. 2b is the protocol, not a measurement; reproducing it means
demonstrating that every state and every edge (A-H) is reachable and
exercised, and emitting the machine as DOT for visual comparison with
the figure.
"""

from repro.core.config import SilentTrackerConfig
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment

#: The figure's edges and the states they connect.
FIG2B_EDGES = {
    "A": ("EO", "EO"),
    "B": ("EO", "N-A/R"),
    "C": ("N-A/R", "N-RBA"),
    "D": ("N-RBA", "N-A/R"),
    "E": ("N-RBA", "EO"),
    "F": ("CABM", "EO"),
    "G": ("S-RBA", "CABM"),
    "H": ("N-RBA", "N-RBA"),
}


def render_dot() -> str:
    """Fig. 2b as graphviz DOT (for the docs; printed by the bench)."""
    lines = ["digraph fig2b {", "  rankdir=LR;"]
    for state in ("EO", "S-RBA", "CABM", "N-A/R", "N-RBA"):
        lines.append(f'  "{state}";')
    for edge, (src, dst) in FIG2B_EDGES.items():
        lines.append(f'  "{src}" -> "{dst}" [label="{edge}"];')
    lines.append("}")
    return "\n".join(lines)


def exercise_machine(n_runs: int) -> dict:
    """Run scenarios chosen to cover every edge; count edge firings."""
    counts = {edge: 0 for edge in FIG2B_EDGES}
    plans = [
        # Rotation stresses H/D; walk covers B/C/E; tight thresholds at
        # the shrinking cell edge force S-RBA/CABM (G, F).
        ("rotation", SilentTrackerConfig()),
        ("walk", SilentTrackerConfig()),
        ("vehicular", SilentTrackerConfig()),
        ("walk", SilentTrackerConfig(
            adapt_threshold_db=1.5, handover_margin_db=8.0)),
    ]
    for k in range(n_runs):
        scenario, config = plans[k % len(plans)]
        deployment, mobile = build_cell_edge_deployment(
            2000 + k, scenario=scenario
        )
        tracker = SilentTracker(deployment, mobile, "cellA", config)
        tracker.start()
        deployment.run(6.0)
        tracker.stop()
        for edge in counts:
            counts[edge] += deployment.metrics.counter(f"fsm.serving.{edge}")
            counts[edge] += deployment.metrics.counter(f"fsm.neighbor.{edge}")
        # Edge A (healthy self-loop) is implicit in every steady serving
        # measurement; count committed serving dwells as A evidence.
        counts["A"] += mobile.bursts_measured
    return counts


def test_fig2b_state_machine(benchmark, trial_count):
    counts = benchmark.pedantic(
        exercise_machine, args=(max(8, trial_count // 2),),
        iterations=1, rounds=1,
    )
    print()
    print("Fig. 2b edge coverage (firings across scenario sweep):")
    for edge in sorted(counts):
        src, dst = FIG2B_EDGES[edge]
        print(f"  {edge}: {src:>6} -> {dst:<6}  fired {counts[edge]}x")
    print()
    print(render_dot())
    # Every edge of the figure must be reachable in simulation.
    for edge, count in counts.items():
        assert count > 0, f"edge {edge} never fired"
