"""ABL-PP: handover churn at the cell boundary vs time-to-trigger.

The Fig. 2b trigger (edge E) fires the instant smoothed RSS_N exceeds
RSS_S + T; at the boundary, shadowing makes that margin cross back and
forth and the mobile ping-pongs.  This bench parks a slow walker at the
equal-loss point and counts churn per NR-style time-to-trigger setting
(0 = the paper's minimal protocol).
"""

from repro.analysis.tables import format_table
from repro.experiments.pingpong import summarize_pingpong, sweep_time_to_trigger


def reproduce(n_trials):
    return sweep_time_to_trigger(
        ttt_s_values=(0.0, 0.16, 0.48), n_trials=n_trials, base_seed=1900
    )


def test_ablation_pingpong(benchmark, trial_count):
    sweep = benchmark.pedantic(
        reproduce, args=(max(6, trial_count // 3),), iterations=1, rounds=1
    )
    summary_rows = summarize_pingpong(sweep)
    rows = [
        [
            row["label"],
            row["mean_handovers"],
            row["mean_ping_pongs"],
            row["trials_with_ping_pong"],
        ]
        for row in summary_rows
    ]
    print()
    print(
        format_table(
            ["time-to-trigger", "handovers/trial", "ping-pongs/trial",
             "trials w/ ping-pong"],
            rows,
            title="Ablation: boundary churn vs time-to-trigger",
        )
    )
    summary = {row["label"]: row for row in summary_rows}
    # TTT suppresses churn: strictly fewer handovers at 480 ms than at 0.
    assert (
        summary["ttt=480ms"]["mean_handovers"]
        < summary["ttt=0ms"]["mean_handovers"]
    )
    assert (
        summary["ttt=480ms"]["mean_ping_pongs"]
        <= summary["ttt=0ms"]["mean_ping_pongs"]
    )
