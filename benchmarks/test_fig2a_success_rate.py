"""FIG2A-SUC: Fig. 2a right panel — search success rate (%).

Paper shape: narrow > wide >> omni.  Narrow beams carry enough gain to
keep the neighbor's SSB above the detection floor at the cell edge; the
omnidirectional/single-antenna mobile hears almost nothing.
"""

from repro.analysis.stats import wilson_interval
from repro.analysis.tables import format_table
from repro.experiments.fig2a import run_fig2a


def reproduce(n_trials):
    return run_fig2a(
        n_trials=n_trials,
        scenario="walk",
        base_seed=1100,
        codebooks=("narrow", "wide", "omni"),
    )


def test_fig2a_success_rate(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(trial_count,), iterations=1, rounds=1
    )
    rows = []
    for kind in ("narrow", "wide", "omni"):
        rate = results[kind]["success_rate"]
        n = len(results[kind]["trials"])
        low, high = wilson_interval(round(rate * n), n)
        rows.append([kind, 100.0 * rate, 100.0 * low, 100.0 * high])
    print()
    print(
        format_table(
            ["codebook", "success %", "ci low %", "ci high %"],
            rows,
            title="Fig. 2a (right): search success rate under human walk",
        )
    )
    narrow = results["narrow"]["success_rate"]
    wide = results["wide"]["success_rate"]
    omni = results["omni"]["success_rate"]
    # The paper's ordering with a real gap over omni.
    assert narrow >= wide
    assert wide > omni
    assert narrow - omni > 0.5
