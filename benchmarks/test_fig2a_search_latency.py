"""FIG2A-LAT: Fig. 2a left panel — search latency (number of beam searches).

Paper shape: narrow (20 deg) beams need more beam searches than wide
(60 deg) beams, because the receive codebook is 3x larger and one beam
is tried per SSB burst.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig2a import run_fig2a


def reproduce(n_trials):
    return run_fig2a(
        n_trials=n_trials,
        scenario="walk",
        base_seed=1000,
        codebooks=("narrow", "wide"),
    )


def test_fig2a_search_latency(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(trial_count,), iterations=1, rounds=1
    )
    rows = []
    for kind in ("narrow", "wide"):
        latency = results[kind]["latency"]
        rows.append(
            [
                kind,
                latency["count"],
                latency["mean"],
                latency["p50"],
                latency["p90"],
            ]
        )
    print()
    print(
        format_table(
            ["codebook", "successes", "mean dwells", "p50", "p90"],
            rows,
            title="Fig. 2a (left): search latency under human walk",
        )
    )
    narrow = results["narrow"]["latency"]
    wide = results["wide"]["latency"]
    # The paper's ordering: narrow search costs more dwells.
    assert narrow["p50"] > wide["p50"]
    assert narrow["count"] > 0 and wide["count"] > 0
