"""ABL-CB: sweep the mobile codebook (narrow / wide / omni) through the
full protocol.

Extends Fig. 2a's search-only comparison to the complete handover: the
omni mobile fails not just at search but at every stage, while wide
beams trade search speed against link margin.
"""

from repro.analysis.tables import format_table
from repro.experiments.ablations import (
    summarize_sweep,
    sweep_codebook_beamwidth,
)


def reproduce(n_trials):
    return sweep_codebook_beamwidth(n_trials=n_trials, base_seed=1500)


def test_ablation_codebook(benchmark, trial_count):
    sweep = benchmark.pedantic(
        reproduce, args=(max(10, trial_count // 2),), iterations=1, rounds=1
    )
    summary_rows = summarize_sweep(sweep)
    rows = [
        [
            row["label"],
            row["trials"],
            row["completion_rate"],
            row["mean_completion_s"]
            if row["mean_completion_s"] is not None
            else "-",
        ]
        for row in summary_rows
    ]
    print()
    print(
        format_table(
            ["codebook", "trials", "completion rate", "mean time (s)"],
            rows,
            title="Ablation: mobile codebook through the full protocol (walk)",
        )
    )
    summary = {row["label"]: row for row in summary_rows}
    # Directional codebooks complete; omni collapses end-to-end.
    assert summary["narrow"]["completion_rate"] >= 0.8
    assert summary["narrow"]["completion_rate"] >= summary["omni"]["completion_rate"]
    assert summary["omni"]["completion_rate"] <= 0.5
