"""FIG2C-CDF: Fig. 2c — CDF of soft-handover completion time.

Paper shape: for all three mobility scenarios (walk 1.4 m/s, rotation
120 deg/s, vehicular 20 mph) the tracker completes handover with the
beam still aligned, with completion times concentrated in the
0.4-1.8 s band.
"""

from repro.analysis.stats import cdf_at, empirical_cdf, summarize
from repro.analysis.tables import format_cdf_series, format_table
from repro.experiments.fig2c import run_fig2c


def reproduce(n_trials):
    return run_fig2c(n_trials=n_trials, base_seed=1200)


def test_fig2c_tracking_cdf(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(trial_count,), iterations=1, rounds=1
    )
    print()
    rows = []
    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        times = data["completion_times_s"]
        summary = summarize(times)
        rows.append(
            [
                scenario,
                data["completion_rate"],
                data["soft_rate"],
                summary["p50"],
                summary["p90"],
                cdf_at(times, 1.8),
            ]
        )
    print(
        format_table(
            [
                "scenario",
                "completion",
                "soft rate",
                "p50 (s)",
                "p90 (s)",
                "CDF@1.8s",
            ],
            rows,
            title="Fig. 2c: soft-handover completion time (edge B -> msg4)",
        )
    )
    from repro.analysis.plotting import ascii_cdf_plot

    print()
    print(
        ascii_cdf_plot(
            {
                scenario: results[scenario]["completion_times_s"]
                for scenario in ("walk", "rotation", "vehicular")
            },
            x_label="completion time (s)",
        )
    )
    for scenario in ("walk", "rotation", "vehicular"):
        times = results[scenario]["completion_times_s"]
        xs, ps = empirical_cdf(times)
        print()
        print(format_cdf_series(scenario, xs, ps, points=8))

    for scenario in ("walk", "rotation", "vehicular"):
        data = results[scenario]
        # Silent Tracker succeeds in all three scenarios...
        assert data["completion_rate"] >= 0.8, scenario
        # ...softly (the whole point of the protocol)...
        assert data["soft_rate"] >= 0.6, scenario
        # ...on the sub-second-to-seconds timescale of the figure.
        assert summarize(data["completion_times_s"])["p50"] < 2.5, scenario
