"""ABL-ADAPT: sweep the 3 dB adaptation threshold (edges A/G/H).

Evaluated under device rotation — the scenario where receive-beam
adaptation does all the work.  Too tight (1 dB) burns measurement
budget probing; too loose (6 dB) lets alignment decay toward the 10 dB
loss edge and forces re-acquisitions.
"""

from repro.analysis.tables import format_table
from repro.experiments.ablations import summarize_sweep, sweep_adapt_threshold


def reproduce(n_trials):
    return sweep_adapt_threshold(
        thresholds_db=(1.0, 3.0, 6.0), n_trials=n_trials, base_seed=1400
    )


def test_ablation_adapt_threshold(benchmark, trial_count):
    sweep = benchmark.pedantic(
        reproduce, args=(max(10, trial_count // 2),), iterations=1, rounds=1
    )
    summary_rows = summarize_sweep(sweep)
    rows = [
        [
            row["label"],
            row["completion_rate"],
            row["mean_switches"] if row["mean_switches"] is not None else "-",
            row["mean_reacquisitions"]
            if row["mean_reacquisitions"] is not None
            else "-",
        ]
        for row in summary_rows
    ]
    print()
    print(
        format_table(
            ["threshold", "completion rate", "beam switches", "reacquisitions"],
            rows,
            title="Ablation: adaptation threshold (rotation scenario)",
        )
    )
    summary = {row["label"]: row for row in summary_rows}
    # The paper's 3 dB point must work under rotation.
    assert summary["adapt=3dB"]["completion_rate"] >= 0.7
