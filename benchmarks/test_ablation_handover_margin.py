"""ABL-T: sweep the handover margin T (edge E threshold).

Small T triggers early — handover completes sooner after search, but
the target may be barely better than the serving cell.  Large T waits
until the target dominates, lengthening the tracked period.
"""

from repro.analysis.tables import format_table
from repro.experiments.ablations import summarize_sweep, sweep_handover_margin


def reproduce(n_trials):
    return sweep_handover_margin(
        margins_db=(0.0, 3.0, 6.0, 9.0), n_trials=n_trials, base_seed=1300
    )


def test_ablation_handover_margin(benchmark, trial_count):
    sweep = benchmark.pedantic(
        reproduce, args=(max(10, trial_count // 2),), iterations=1, rounds=1
    )
    rows = [
        [
            row["label"],
            row["trials"],
            row["completion_rate"],
            row["mean_completion_s"] if row["mean_completion_s"] is not None else "-",
        ]
        for row in summarize_sweep(sweep)
    ]
    print()
    print(
        format_table(
            ["margin", "trials", "completion rate", "mean time (s)"],
            rows,
            title="Ablation: handover margin T (walk scenario)",
        )
    )
    summary = {row["label"]: row for row in summarize_sweep(sweep)}
    # The paper's T=3 dB operating point completes reliably.
    assert summary["T=3dB"]["completion_rate"] >= 0.8
    # Earlier triggers complete no later than very conservative ones.
    eager = summary["T=0dB"]["mean_completion_s"]
    lazy = summary["T=9dB"]["mean_completion_s"]
    if eager is not None and lazy is not None:
        assert eager <= lazy + 0.5
