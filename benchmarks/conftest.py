"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's figures (or an ablation of
it) and prints the same rows/series the figure reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced tables; the pytest-benchmark timings measure
the cost of the full experiment (workload generation + simulation +
analysis).
"""

import pytest


@pytest.fixture(scope="session")
def trial_count():
    """Trials per experiment arm.

    Enough for stable orderings and CDF shapes while keeping the whole
    harness under a few minutes; raise for publication-grade smoothness.
    """
    return 20
