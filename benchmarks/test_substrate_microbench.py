"""Substrate micro-benchmarks: the per-dwell costs everything rides on.

Not a paper figure — these keep the simulator honest (a reproduction
whose channel evaluation is accidentally quadratic would silently cap
experiment sizes) and document the throughput headroom for larger
sweeps.
"""

from repro.experiments.scenarios import build_cell_edge_deployment
from repro.phy.codebook import Codebook
from repro.sim.engine import Simulator


def test_bench_burst_measurement(benchmark):
    """Cost of one full SSB burst evaluation (18 tx dwells)."""
    deployment, mobile = build_cell_edge_deployment(1, scenario="walk")
    station = deployment.station("cellA")
    state = {"t": 0.0}

    def one_burst():
        state["t"] += 0.02
        t = state["t"]
        return deployment.links.measure_burst(
            station,
            mobile.mobile_id,
            mobile.pose_at(t),
            mobile.rx_gain_fn(t),
            0,
            t,
        )

    benchmark(one_burst)


def test_bench_event_engine(benchmark):
    """Raw event throughput of the discrete-event core."""

    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run_until(100.0)
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_bench_codebook_selection(benchmark):
    """Best-beam lookup over an 18-beam ring."""
    codebook = Codebook.uniform_azimuth(20.0)

    def select():
        total = 0
        for k in range(100):
            total += codebook.best_beam_towards(0.0628 * k).index
        return total

    benchmark(select)


def test_bench_full_tracking_trial(benchmark):
    """End-to-end cost of one Fig. 2c walk trial."""
    from repro.experiments.fig2c import run_tracking_trial

    state = {"seed": 0}

    def trial():
        state["seed"] += 1
        return run_tracking_trial("walk", seed=state["seed"])

    result = benchmark(trial)
    assert result.scenario == "walk"
