"""ABL-BASE: Silent Tracker vs reactive hard handover vs genie oracle.

The comparison motivating the paper's introduction: reactive handover
pays the full directional search plus context-free initial access after
the serving link dies (the intro quotes up to 1.28 s for the search
alone), while Silent Tracker's pre-tracked beam makes the switch
make-before-break.
"""

from repro.analysis.tables import format_table
from repro.experiments.comparison import run_comparison, summarize_comparison


def reproduce(n_trials):
    return run_comparison(
        scenario="vehicular", n_trials=n_trials, base_seed=1600
    )


def test_baseline_comparison(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(max(8, trial_count // 2),), iterations=1, rounds=1
    )
    summary_rows = summarize_comparison(results)
    rows = [
        [
            row["protocol"],
            row["trials"],
            row["completed_any"],
            row["soft_ratio"] if row["soft_ratio"] is not None else "-",
            row["mean_interruption_s"]
            if row["mean_interruption_s"] is not None
            else "-",
        ]
        for row in summary_rows
    ]
    print()
    print(
        format_table(
            ["protocol", "trials", "completed", "soft ratio",
             "mean interruption (s)"],
            rows,
            title="Baseline comparison (vehicular drive-by)",
        )
    )
    summary = {row["protocol"]: row for row in summary_rows}
    tracker = summary["silent-tracker"]
    reactive = summary["reactive"]
    # Silent Tracker hands over softly; reactive only ever hard.
    assert tracker["soft_ratio"] is not None and tracker["soft_ratio"] >= 0.6
    assert reactive["soft_ratio"] in (None, 0.0)
    # Interruption gap: the headline win.
    if (
        tracker["mean_interruption_s"] is not None
        and reactive["mean_interruption_s"] is not None
    ):
        assert (
            tracker["mean_interruption_s"]
            < reactive["mean_interruption_s"]
        )
