"""EXT-SINR: detection cost of SSB burst alignment between cells.

Extension beyond the poster: the testbed staggers neighboring cells'
SSB bursts; synchronized networks cannot always do that.  This bench
sweeps the mobile along the street and compares neighbor-SSB detection
when the serving cell's burst is staggered (SNR-limited) vs aligned
(SINR-limited, the serving sweep acts as co-channel interference).
"""

from repro.analysis.tables import format_table
from repro.experiments.interference import (
    summarize_alignment_cost,
    sweep_positions,
)


def reproduce(_n_trials):
    samples = sweep_positions(seed=1)
    return samples, summarize_alignment_cost(samples)


def test_interference_alignment(benchmark, trial_count):
    samples, summary = benchmark.pedantic(
        reproduce, args=(trial_count,), iterations=1, rounds=1
    )
    rows = [
        [s.x_m, s.snr_db, s.sinr_db,
         "yes" if s.detected_staggered else "no",
         "yes" if s.detected_aligned else "no"]
        for s in samples
    ]
    print()
    print(
        format_table(
            ["x (m)", "SNR (dB)", "SINR (dB)", "detect staggered",
             "detect aligned"],
            rows,
            title="Extension: neighbor detection, staggered vs aligned bursts",
        )
    )
    print(
        f"mean SINR penalty: {summary['mean_sinr_penalty_db']:.1f} dB, "
        f"max {summary['max_sinr_penalty_db']:.1f} dB"
    )
    # Alignment can only hurt, and must hurt measurably somewhere.
    assert summary["detect_rate_aligned"] <= summary["detect_rate_staggered"]
    assert summary["max_sinr_penalty_db"] > 3.0
