"""EXT-OUTAGE: user-plane outage during handover, protocol vs protocol.

Extends ABL-BASE's scalar interruption numbers with the full service
time-series: serving-link Shannon rate sampled every 10 ms through a
vehicular crossing.  The reactive baseline shows a contiguous outage
plateau (search + re-entry); Silent Tracker's dip is a few samples wide.
"""

from repro.analysis.tables import format_table
from repro.analysis.throughput import ServiceMonitor
from repro.core.baselines import make_baseline
from repro.experiments.scenarios import build_cell_edge_deployment


def run_monitored(protocol_name: str, seed: int):
    deployment, mobile = build_cell_edge_deployment(
        seed, scenario="vehicular"
    )
    protocol = make_baseline(protocol_name, deployment, mobile, "cellA")
    monitor = ServiceMonitor(deployment, mobile, period_s=0.010)
    protocol.start()
    monitor.start()
    deployment.run(5.0)
    monitor.stop()
    protocol.stop()
    return monitor


def reproduce(n_trials):
    rows = {}
    for name in ("silent-tracker", "reactive"):
        outages = []
        longest = []
        rates = []
        for k in range(n_trials):
            monitor = run_monitored(name, 1800 + k)
            outages.append(monitor.outage_time_s())
            longest.append(monitor.longest_outage_s())
            rates.append(monitor.mean_rate_bps())
        n = len(outages)
        rows[name] = {
            "mean_outage_s": sum(outages) / n,
            "mean_longest_outage_s": sum(longest) / n,
            "mean_rate_gbps": sum(rates) / n / 1e9,
        }
    return rows


def test_service_outage(benchmark, trial_count):
    rows = benchmark.pedantic(
        reproduce, args=(max(5, trial_count // 4),), iterations=1, rounds=1
    )
    table = [
        [
            name,
            data["mean_outage_s"],
            data["mean_longest_outage_s"],
            data["mean_rate_gbps"],
        ]
        for name, data in rows.items()
    ]
    print()
    print(
        format_table(
            ["protocol", "outage (s)", "longest outage (s)",
             "mean rate (Gbps)"],
            table,
            title="Extension: user-plane outage through a vehicular crossing",
        )
    )
    tracker = rows["silent-tracker"]
    reactive = rows["reactive"]
    # The reactive baseline's longest contiguous outage dwarfs Silent
    # Tracker's, and its average rate is lower.
    assert tracker["mean_longest_outage_s"] < reactive["mean_longest_outage_s"]
    assert tracker["mean_rate_gbps"] >= reactive["mean_rate_gbps"]
