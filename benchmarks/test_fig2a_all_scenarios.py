"""Extension: Fig. 2a's search experiment across all three scenarios.

The poster reports the Human Walk panel; the same experiment under
device rotation and vehicular motion quantifies how much harder search
gets as angular dynamics speed up (rotation sweeps the whole codebook
past the cell every 3 s; the drive-by compresses the geometry change
into ~2 s).
"""

from repro.analysis.tables import format_table
from repro.experiments.fig2a import run_fig2a


def reproduce(n_trials):
    return {
        scenario: run_fig2a(
            n_trials=n_trials,
            scenario=scenario,
            base_seed=2100,
            codebooks=("narrow", "wide"),
        )
        for scenario in ("walk", "rotation", "vehicular")
    }


def test_fig2a_all_scenarios(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(max(10, trial_count // 2),), iterations=1, rounds=1
    )
    rows = []
    for scenario, per_codebook in results.items():
        for kind in ("narrow", "wide"):
            data = per_codebook[kind]
            latency = data["latency"]
            rows.append(
                [
                    scenario,
                    kind,
                    100.0 * data["success_rate"],
                    latency["mean"] if latency["count"] else "-",
                ]
            )
    print()
    print(
        format_table(
            ["scenario", "codebook", "success %", "mean dwells"],
            rows,
            title="Extension: search latency/success across all scenarios",
        )
    )
    # Narrow beams keep their success advantage in every scenario.
    for scenario, per_codebook in results.items():
        assert (
            per_codebook["narrow"]["success_rate"]
            >= per_codebook["wide"]["success_rate"] - 0.15
        ), scenario
        assert per_codebook["narrow"]["success_rate"] >= 0.8, scenario
