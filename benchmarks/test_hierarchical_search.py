"""Extension bench: exhaustive vs hierarchical neighbor search.

Context for the paper's design choice: Silent Tracker searches narrow
beams exhaustively.  Two-stage (wide -> narrow) search costs fewer
dwells when the coarse tier can detect — but the coarse tier has wide-
beam gain, so at the cell edge the first stage inherits Fig. 2a's
wide-beam failure mode.
"""

from repro.analysis.tables import format_table
from repro.experiments.hierarchical import compare_search_strategies


def reproduce(n_trials):
    return compare_search_strategies(n_trials=n_trials, base_seed=1700)


def test_hierarchical_search(benchmark, trial_count):
    results = benchmark.pedantic(
        reproduce, args=(trial_count,), iterations=1, rounds=1
    )
    rows = []
    for name in ("exhaustive", "hierarchical"):
        data = results[name]
        latency = data["latency"]
        rows.append(
            [
                name,
                100.0 * data["success_rate"],
                latency["mean"] if latency["count"] else "-",
                latency["p90"] if latency["count"] else "-",
            ]
        )
    print()
    print(
        format_table(
            ["strategy", "success %", "mean dwells", "p90 dwells"],
            rows,
            title="Extension: exhaustive vs hierarchical search (walk)",
        )
    )
    # Exhaustive narrow search stays reliable at the cell edge.
    assert results["exhaustive"]["success_rate"] >= 0.8
    # When hierarchical succeeds it is at least competitive in dwells.
    hier = results["hierarchical"]["latency"]
    exhaustive = results["exhaustive"]["latency"]
    if hier["count"] >= 5:
        assert hier["mean"] <= exhaustive["mean"] + 3.0
