"""Extending the simulator: a custom protocol + scenario, registered.

Demonstrates the plugin registries (:mod:`repro.registry`): a
"sticky" protocol that camps on its serving cell forever and a "jog"
mobility scenario, both registered with the same decorators the
built-ins use.  Once registered they work everywhere a built-in arm
does — the typed Session API, a campaign grid (with construction-time
validation), and ``repro list``:

    PYTHONPATH=src python examples/custom_plugin.py

CI runs this script as its registry smoke test: if the plugin seam
breaks, this fails before anything subtler does.
"""

import tempfile
from pathlib import Path

from repro import register_protocol, register_scenario
from repro.api import Session, TrialSpec
from repro.campaign import CampaignSpec, run_campaign, summarize_campaign
from repro.geometry.vectors import Vec3
from repro.mobility.walk import HumanWalk
from repro.net.handover import HandoverLog


# ----------------------------------------------------------- custom protocol
class StickyCamper:
    """Never hands over: measure the serving cell, ignore every neighbor.

    The minimum a protocol arm needs: ``start()``/``stop()``, a
    ``handover_log``, and the BurstListener pair
    (``choose_rx_beam`` / ``on_measurement``).
    """

    def __init__(self, deployment, mobile, serving_cell):
        self.mobile = mobile
        self.serving_cell = serving_cell
        self.handover_log = HandoverLog()
        self.measurements = 0
        station = deployment.station(serving_cell)
        now = deployment.sim.now
        station.attach(
            mobile.mobile_id,
            station.best_tx_beam_towards(
                station.pose.bearing_to(mobile.pose_at(now).position)
            ),
        )
        mobile.connection.establish(
            serving_cell, mobile.best_rx_beam_towards(station, now), now
        )
        mobile.attach_listener(self)

    def start(self):
        pass

    def stop(self):
        pass

    def choose_rx_beam(self, cell_id, now_s):
        if cell_id != self.serving_cell:
            return None  # sticky: neighbors don't exist
        return self.mobile.connection.rx_beam

    def on_measurement(self, measurement):
        self.measurements += 1


# override=True keeps re-imports (e.g. from the test suite) idempotent.
@register_protocol("sticky", override=True)
def build_sticky(deployment, mobile, serving_cell, config=None):
    """Sticky camper: serves as the do-nothing lower bound."""
    return StickyCamper(deployment, mobile, serving_cell)


# ----------------------------------------------------------- custom scenario
@register_scenario(
    "jog",
    duration_s=5.0,
    default_start_x=9.0,
    description="jogger passing the cell edge at 2.8 m/s",
    override=True,
)
def build_jog(rng, start_x):
    return HumanWalk(Vec3(start_x, 0.0), Vec3(2.8, 0.0), rng=rng)


def main() -> None:
    # 1. The plugin arms show up next to the built-ins.
    from repro.registry import PROTOCOLS, SCENARIOS

    print("registered protocols:", ", ".join(PROTOCOLS.names()))
    print("registered scenarios:", ", ".join(SCENARIOS.names()))

    # 2. Drive the plugin pair through the typed Session API.
    with Session(TrialSpec(scenario="jog", protocol="sticky", seed=11)) as s:
        protocol = s.attach_protocol()
        s.run()
    print(
        f"session: {s.elapsed_s:.1f} s simulated, "
        f"{protocol.measurements} serving-cell measurements, "
        f"{len(protocol.handover_log.records)} handovers (sticky => 0)"
    )

    # 3. The same arms in a campaign grid, validated at spec construction
    #    and head-to-head against a built-in arm over paired seeds.
    spec = CampaignSpec(
        name="plugin-demo",
        experiment="comparison",
        scenarios=("jog",),
        protocols=("sticky", "silent-tracker"),
        seeds=2,
        base_seed=900,
    )
    with tempfile.TemporaryDirectory(prefix="repro-plugin-") as tmp:
        result = run_campaign(spec, out_dir=Path(tmp) / "demo")
        headers, rows = summarize_campaign(spec, result.results_in_order())
        print(f"campaign: {len(result.payloads)}/{spec.n_cells} cells ok")
        for row in rows:
            print("  ", dict(zip(headers, row)))

    sticky_trials = [
        trial
        for cell, trial in result.trials_in_order()
        if cell.protocol == "sticky"
    ]
    assert sticky_trials and all(
        t.handovers_completed == 0 for t in sticky_trials
    ), "sticky camper must never hand over"
    print("plugin smoke OK")


if __name__ == "__main__":
    main()
