#!/usr/bin/env python
"""Channel calibration view: the RSS workloads the protocol lives on.

Renders, as terminal sparklines, the RSS a mobile observes toward the
neighbor cell in each scenario — once with a genie-pointed beam (the
upper envelope) and once holding a fixed beam (what motion does to a
beam nobody adapts).  The gap between the two is the job Silent
Tracker's 3 dB rule performs.

Run:  python examples/channel_calibration.py
"""

from repro.analysis.plotting import sparkline
from repro.experiments.workloads import (
    detection_duty_cycle,
    generate_rss_trace,
)

FLOOR_DBM = -80.0  # render non-detections at the noise floor


def render(scenario: str, policy: str, seed: int = 5) -> None:
    trace = generate_rss_trace(
        scenario=scenario,
        rx_beam_policy=policy,
        seed=seed,
        duration_s=4.0,
    )
    values = [
        point.rss_dbm if point.rss_dbm is not None else FLOOR_DBM
        for point in trace
    ]
    detected = [p for p in trace if p.rss_dbm is not None]
    stats = ""
    if detected:
        rss = [p.rss_dbm for p in detected]
        stats = f"RSS [{min(rss):6.1f}, {max(rss):6.1f}] dBm"
    duty = detection_duty_cycle(trace)
    print(f"  {policy:>5} beam  duty {100 * duty:5.1f}%  {stats}")
    print(f"        {sparkline(values)}")


def main() -> None:
    print("Neighbor-cell (cellB) RSS over 4 s, one sample per 20 ms burst")
    print(f"(non-detections drawn at {FLOOR_DBM:.0f} dBm)\n")
    for scenario in ("walk", "rotation", "vehicular"):
        print(f"--- {scenario} ---")
        render(scenario, "best")
        render(scenario, "fixed")
        print()
    print(
        "The 'fixed' rows show the dynamic Silent Tracker corrects: under\n"
        "rotation a static beam only hears the cell while the spin happens\n"
        "to point it right; the tracker's adjacent-beam switches (edge H)\n"
        "and spiral re-acquisition (edge D) recover the 'best' envelope."
    )


if __name__ == "__main__":
    main()
