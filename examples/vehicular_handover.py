#!/usr/bin/env python
"""Vehicular drive-by: Silent Tracker vs reactive hard handover, head to head.

The mobile passes the cells at 20 mph.  Silent Tracker pre-tracks the
next cell's beam and switches make-before-break; the reactive baseline
waits for its serving link to die, then pays the full blind directional
search and context-free re-entry.  This example runs both on identical
seeds and prints the service-interruption gap.

Run:  python examples/vehicular_handover.py
"""

from repro.core.baselines import make_baseline
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.net.handover import HandoverOutcome


def run_protocol(name: str, seed: int) -> dict:
    deployment, mobile = build_cell_edge_deployment(
        seed, mobile_codebook="narrow", scenario="vehicular"
    )
    protocol = make_baseline(name, deployment, mobile, "cellA")
    protocol.start()
    deployment.run(6.0)
    protocol.stop()
    completed = [
        r for r in protocol.handover_log.records if r.complete_s is not None
    ]
    return {
        "final_cell": mobile.connection.serving_cell,
        "handovers": completed,
        "rlf_events": deployment.metrics.counter("connection.rlf"),
        "context_losses": deployment.metrics.counter("connection.context_lost"),
    }


def describe(name: str, outcome: dict) -> None:
    print(f"--- {name} ---")
    print(f"  final serving cell: {outcome['final_cell']}")
    print(f"  radio link failures: {outcome['rlf_events']}, "
          f"context losses: {outcome['context_losses']}")
    if not outcome["handovers"]:
        print("  no handover completed")
        return
    for record in outcome["handovers"]:
        kind = record.outcome.value
        print(
            f"  {record.source_cell} -> {record.target_cell}: {kind}, "
            f"interruption {record.interruption_s * 1000:.0f} ms, "
            f"{record.rach_attempts} RACH attempt(s)"
        )


def main() -> None:
    seed = 11
    print("Vehicular drive-by at 20 mph (8.94 m/s), identical seeds\n")
    tracker_outcome = run_protocol("silent-tracker", seed)
    reactive_outcome = run_protocol("reactive", seed)
    describe("Silent Tracker", tracker_outcome)
    print()
    describe("Reactive hard handover", reactive_outcome)

    def first_interruption(outcome):
        records = outcome["handovers"]
        return records[0].interruption_s if records else None

    tracker_gap = first_interruption(tracker_outcome)
    reactive_gap = first_interruption(reactive_outcome)
    print()
    if tracker_gap is not None and reactive_gap is not None:
        print(
            f"interruption gap: {reactive_gap * 1000:.0f} ms (reactive) vs "
            f"{tracker_gap * 1000:.0f} ms (Silent Tracker) — "
            f"{reactive_gap / max(tracker_gap, 1e-3):.1f}x"
        )
    soft = [
        r
        for r in tracker_outcome["handovers"]
        if r.outcome is HandoverOutcome.SOFT
    ]
    if soft:
        print("Silent Tracker preserved the network context (soft handover).")


if __name__ == "__main__":
    main()
