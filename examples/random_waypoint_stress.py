#!/usr/bin/env python
"""Stress test: Silent Tracker under unscripted random-waypoint motion.

Beyond the paper's three scripted scenarios, this drives the protocol
with a random-waypoint pedestrian wandering a 40 m x 20 m area covered
by all three cells for a full minute — multiple cell crossings,
arbitrary approach angles, continuous operation across back-to-back
handovers.

Run:  python examples/random_waypoint_stress.py [seed]
"""

import sys

from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import (
    STATION_PHASES_S,
    STATION_POSITIONS,
    BS_BEAMWIDTH_DEG,
    BS_TX_POWER_DBM,
    make_mobile_codebook,
)
from repro.geometry.pose import Pose
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.mobile import Mobile
from repro.phy.codebook import Codebook


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    deployment = Deployment(DeploymentConfig(master_seed=seed))
    for cell_id, position in STATION_POSITIONS.items():
        deployment.add_station(
            BaseStation(
                cell_id,
                Pose(position),
                Codebook.uniform_azimuth(BS_BEAMWIDTH_DEG),
                tx_power_dbm=BS_TX_POWER_DBM,
                ssb_phase_s=STATION_PHASES_S[cell_id],
            )
        )
    trajectory = RandomWaypoint(
        area=(0.0, -6.0, 40.0, 6.0),
        speed_mps=1.4,
        rng=deployment.rng.stream("mobility"),
        horizon_s=70.0,
    )
    mobile = deployment.add_mobile(
        Mobile("ue0", trajectory, make_mobile_codebook("narrow"))
    )
    protocol = SilentTracker(deployment, mobile, "cellA")
    protocol.start()
    deployment.run(60.0)
    protocol.stop()

    records = [
        r for r in protocol.handover_log.records if r.complete_s is not None
    ]
    soft = sum(1 for r in records if r.outcome.value == "soft")
    print(f"random-waypoint stress run (seed {seed}, 60 s simulated)")
    print(f"final serving cell: {mobile.connection.serving_cell}")
    print(f"handovers completed: {len(records)} ({soft} soft)")
    for record in records:
        print(
            f"  t={record.trigger_s:6.2f}s  "
            f"{record.source_cell} -> {record.target_cell}: "
            f"{record.outcome.value}, interruption "
            f"{record.interruption_s * 1000:.0f} ms"
        )
    print(f"neighbor search dwells: {protocol.tracker.search_dwells}")
    print(f"beam-loss re-acquisitions: {protocol.tracker.reacquisitions}")
    print(
        "context losses: "
        f"{deployment.metrics.counter('connection.context_lost')}"
    )


if __name__ == "__main__":
    main()
