#!/usr/bin/env python
"""Generate the full markdown reproduction report.

Regenerates every figure's data (Fig. 2a, Fig. 2c, baseline comparison)
and writes a single markdown document.  This is the same machinery the
EXPERIMENTS.md numbers come from.

Run:  python examples/generate_report.py [n_trials] [output.md]
"""

import sys

from repro.analysis.report import generate_report


def main() -> None:
    n_trials = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    output = sys.argv[2] if len(sys.argv) > 2 else None
    text = generate_report(n_trials=n_trials)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output} ({len(text.splitlines())} lines)")
    else:
        print(text)


if __name__ == "__main__":
    main()
