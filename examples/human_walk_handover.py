#!/usr/bin/env python
"""Human-walk scenario with a narrated protocol trace.

Reproduces the paper's primary mobility case — a pedestrian at the cell
edge, 10 m from the base stations, walking at 1.4 m/s — and narrates
every Fig. 2b transition, CABM exchange and RACH message as it happens,
so you can watch the protocol operate.

Run:  python examples/human_walk_handover.py
"""

from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment

#: Human-readable labels for the trace categories we narrate.
NARRATED = {
    "fsm.serving": "serving FSM",
    "fsm.neighbor": "neighbor FSM",
    "cabm.request": "CABM request",
    "cabm.refined": "CABM tx-beam refined",
    "handover.trigger": "HANDOVER TRIGGER (edge E)",
    "handover.complete": "HANDOVER COMPLETE",
    "rach.msg1": "RACH msg1 (preamble)",
    "rach.msg2": "RACH msg2 (response)",
    "rach.msg3": "RACH msg3",
    "rach.msg4": "RACH msg4 (contention resolution)",
    "connection.rlf": "RADIO LINK FAILURE",
    "connection.lost": "CONTEXT LOST",
}


def narrate(event) -> None:
    label = NARRATED.get(event.category)
    if label is None:
        return
    details = ", ".join(f"{k}={v}" for k, v in event.data.items())
    print(f"  [{event.time * 1000:7.1f} ms] {label}: {details}")


def main() -> None:
    deployment, mobile = build_cell_edge_deployment(
        seed=3, mobile_codebook="narrow", scenario="walk"
    )
    deployment.trace.subscribe(narrate)

    print("Human walk at 1.4 m/s across the cellA/cellB boundary")
    print(f"start position: x = {mobile.pose_at(0.0).position.x:.1f} m")
    print()

    protocol = SilentTracker(deployment, mobile, serving_cell="cellA")
    protocol.start()
    deployment.run(6.0)
    protocol.stop()

    print()
    print("--- run summary ---")
    print(f"final serving cell: {mobile.connection.serving_cell}")
    print(f"bursts measured: {mobile.bursts_measured}, "
          f"declined: {mobile.bursts_declined}, "
          f"skipped busy: {mobile.bursts_skipped_busy}")
    print(f"neighbor search dwells: {protocol.tracker.search_dwells}")
    print(f"neighbor adjacent switches: {protocol.tracker.adjacent_switches}")
    print(f"serving mobile-side switches: {protocol.beamsurfer.mobile_switches}")
    print(f"CABM requests: {protocol.beamsurfer.cabm_requests}")
    soft = deployment.metrics.counter("handover.soft")
    hard = deployment.metrics.counter("handover.hard")
    print(f"handovers: {soft} soft, {hard} hard")


if __name__ == "__main__":
    main()
