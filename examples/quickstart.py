#!/usr/bin/env python
"""Quickstart: one soft handover with Silent Tracker.

Builds the paper's cell-edge scenario (one mobile walking at 1.4 m/s
between two 60 GHz cells), runs the full protocol — serving-link
maintenance, silent neighbor tracking, handover trigger, random access —
and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment


def main() -> None:
    # The paper's testbed: three base stations along a street, one
    # mobile at the cell edge (~10 m), walking toward the neighbor cell.
    deployment, mobile = build_cell_edge_deployment(
        seed=7, mobile_codebook="narrow", scenario="walk"
    )
    protocol = SilentTracker(deployment, mobile, serving_cell="cellA")
    protocol.start()
    deployment.run(6.0)
    protocol.stop()

    print(f"serving cell after the walk: {mobile.connection.serving_cell}")
    for record in protocol.handover_log.records:
        if record.complete_s is None:
            continue
        print(
            f"handover {record.source_cell} -> {record.target_cell}: "
            f"{record.outcome.value}, "
            f"completed {record.completion_time_s * 1000:.0f} ms after trigger, "
            f"{record.rach_attempts} RACH attempt(s), "
            f"service interruption {record.interruption_s * 1000:.0f} ms"
        )
    timeline = next(
        (t for t in protocol.timelines if t.complete_s is not None), None
    )
    if timeline is not None:
        print(
            "timeline: search started at "
            f"{timeline.search_start_s:.3f}s, beam found at "
            f"{timeline.found_s:.3f}s, trigger at {timeline.trigger_s:.3f}s, "
            f"complete at {timeline.complete_s:.3f}s"
        )
        print(
            f"the tracker held the neighbor beam aligned for "
            f"{timeline.tracking_time_s * 1000:.0f} ms "
            f"({timeline.beam_switches_while_tracking} adjacent switches, "
            f"{timeline.reacquisitions} re-acquisitions)"
        )


if __name__ == "__main__":
    main()
