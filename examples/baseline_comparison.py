#!/usr/bin/env python
"""Multi-trial baseline comparison across all three mobility scenarios.

Aggregates Silent Tracker, the reactive hard-handover baseline and the
genie oracle over many seeded trials per scenario, and prints the
summary table the ABL-BASE bench asserts on.

Run:  python examples/baseline_comparison.py [n_trials]
"""

import sys

from repro.analysis.tables import format_table
from repro.experiments.comparison import run_comparison, summarize_comparison


def main() -> None:
    n_trials = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    for scenario in ("walk", "rotation", "vehicular"):
        results = run_comparison(
            scenario=scenario, n_trials=n_trials, base_seed=4200
        )
        rows = [
            [
                row["protocol"],
                row["trials"],
                row["completed_any"],
                row["soft_ratio"] if row["soft_ratio"] is not None else "-",
                row["mean_interruption_s"]
                if row["mean_interruption_s"] is not None
                else "-",
            ]
            for row in summarize_comparison(results)
        ]
        print(
            format_table(
                ["protocol", "trials", "completed", "soft ratio",
                 "mean interruption (s)"],
                rows,
                title=f"Scenario: {scenario}",
            )
        )
        print()


if __name__ == "__main__":
    main()
