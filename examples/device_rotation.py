#!/usr/bin/env python
"""Device-rotation scenario: receive-beam adaptation under 120 deg/s spin.

Rotation is the pure beam-management stress test: the geometry to both
base stations is frozen, but every body-frame beam's world direction
sweeps at 120 deg/s, so a 20-degree beam is only usable for ~170 ms.
This example tracks which receive beam serves each cell over time and
prints the switching cadence the protocol sustained.

Run:  python examples/device_rotation.py
"""

import math

from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment


def main() -> None:
    deployment, mobile = build_cell_edge_deployment(
        seed=5, mobile_codebook="narrow", scenario="rotation"
    )
    protocol = SilentTracker(deployment, mobile, serving_cell="cellA")

    # Sample the committed beams every 100 ms via a trace listener on
    # neighbor-FSM events plus direct polling.
    beam_timeline = []

    def sample_beams():
        now = deployment.sim.now
        beam_timeline.append(
            (
                now,
                math.degrees(mobile.pose_at(now).heading) % 360.0,
                protocol.beamsurfer.beam,
                protocol.tracker.current_beam,
            )
        )

    from repro.sim.engine import PeriodicTask

    sampler = PeriodicTask(deployment.sim, 0.1, sample_beams)
    protocol.start()
    deployment.run(4.0)
    protocol.stop()
    sampler.stop()

    print("Device rotation at 120 deg/s, cell edge at x = 14 m")
    print()
    print(f"{'t (s)':>6} {'heading':>8} {'serving beam':>13} {'neighbor beam':>14}")
    for t, heading, serving_beam, neighbor_beam in beam_timeline:
        neighbor = "-" if neighbor_beam is None else str(neighbor_beam)
        print(f"{t:6.1f} {heading:7.0f}d {serving_beam:>13} {neighbor:>14}")

    print()
    print("--- adaptation summary ---")
    print(f"serving-beam switches (BeamSurfer): "
          f"{protocol.beamsurfer.mobile_switches}")
    print(f"neighbor-beam switches (edge H): "
          f"{protocol.tracker.adjacent_switches}")
    print(f"neighbor re-acquisitions (edge D): "
          f"{protocol.tracker.reacquisitions}")
    completed = [
        r for r in protocol.handover_log.records if r.complete_s is not None
    ]
    if completed:
        record = completed[0]
        print(
            f"handover to {record.target_cell}: {record.outcome.value} "
            f"in {record.completion_time_s * 1000:.0f} ms after trigger"
        )
    else:
        print("no handover completed in this run")


if __name__ == "__main__":
    main()
