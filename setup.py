from setuptools import find_packages, setup

setup(
    name="repro-silent-tracker",
    version="0.2.0",
    description=(
        "Reproduction of Silent Tracker (SIGCOMM '21): beam tracking for "
        "soft handover in mmWave networks, with a parallel "
        "experiment-campaign toolkit"
    ),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
    ],
)
