"""Unit tests for the mobility models."""

import math

import numpy as np
import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose, TimeShifted
from repro.mobility.rotation import DeviceRotation
from repro.mobility.vehicular import VehicularDriveBy
from repro.mobility.walk import HumanWalk
from repro.mobility.waypoint import WaypointPath
from repro.util.units import mph_to_mps


class TestStaticPose:
    def test_never_moves(self):
        pose = Pose(Vec3(1, 2), heading=0.5)
        trajectory = StaticPose(pose)
        assert trajectory.pose_at(0.0) == pose
        assert trajectory.pose_at(100.0) == pose


class TestTimeShifted:
    def test_shifts_time(self):
        inner = HumanWalk(Vec3(0, 0), Vec3(1, 0), sway_amplitude_m=0.0,
                          wobble_amplitude_rad=0.0)
        shifted = TimeShifted(inner, 5.0)
        assert shifted.position_at(7.0).x == pytest.approx(
            inner.position_at(2.0).x
        )

    def test_clamps_before_offset(self):
        inner = HumanWalk(Vec3(0, 0), Vec3(1, 0), sway_amplitude_m=0.0,
                          wobble_amplitude_rad=0.0)
        shifted = TimeShifted(inner, 5.0)
        assert shifted.position_at(1.0) == inner.position_at(0.0)


class TestHumanWalk:
    def test_paper_speed(self):
        walk = HumanWalk(Vec3(0, 0), Vec3(1.4, 0))
        assert walk.speed_mps == pytest.approx(1.4)
        # Average measured speed tracks the nominal speed (gait sway is
        # small and lateral).
        assert walk.average_speed_mps(0.0, 10.0, steps=500) == pytest.approx(
            1.4, rel=0.05
        )

    def test_progresses_along_velocity(self):
        walk = HumanWalk(Vec3(0, 0), Vec3(1.4, 0))
        assert walk.position_at(10.0).x == pytest.approx(14.0, abs=0.1)
        assert abs(walk.position_at(10.0).y) < 0.1

    def test_pure_function_of_time(self):
        walk = HumanWalk(Vec3(0, 0), Vec3(1.4, 0),
                         rng=np.random.default_rng(1))
        a = walk.pose_at(3.3)
        walk.pose_at(9.9)
        b = walk.pose_at(3.3)
        assert a == b

    def test_heading_wobbles_around_travel_direction(self):
        walk = HumanWalk(Vec3(0, 0), Vec3(0, 1.4))
        headings = [walk.heading_at(0.1 * k) for k in range(100)]
        travel = math.pi / 2
        assert all(abs(h - travel) < math.radians(10) for h in headings)
        assert max(headings) > min(headings)  # it does wobble

    def test_sway_is_lateral(self):
        walk = HumanWalk(Vec3(0, 0), Vec3(1.4, 0), sway_amplitude_m=0.05,
                         wobble_amplitude_rad=0.0)
        ys = [walk.position_at(0.05 * k).y for k in range(200)]
        assert max(ys) > 0.02
        assert min(ys) < -0.02

    def test_rejects_zero_velocity(self):
        with pytest.raises(ValueError):
            HumanWalk(Vec3(0, 0), Vec3(0, 0))

    def test_fixed_phases_without_rng(self):
        a = HumanWalk(Vec3(0, 0), Vec3(1.4, 0))
        b = HumanWalk(Vec3(0, 0), Vec3(1.4, 0))
        assert a.pose_at(1.234) == b.pose_at(1.234)


class TestDeviceRotation:
    def test_paper_rate(self):
        rotation = DeviceRotation(
            Vec3(5, 0), math.radians(120), tremor_amplitude_rad=0.0
        )
        # After 1 s the heading advanced 120 degrees.
        assert rotation.heading_at(1.0) == pytest.approx(
            math.radians(120), abs=1e-9
        )

    def test_position_fixed(self):
        rotation = DeviceRotation(Vec3(5, 1), math.radians(120))
        assert rotation.position_at(0.0) == Vec3(5, 1)
        assert rotation.position_at(7.7) == Vec3(5, 1)

    def test_heading_wraps(self):
        rotation = DeviceRotation(
            Vec3(0, 0), math.radians(120), tremor_amplitude_rad=0.0
        )
        heading = rotation.heading_at(2.0)  # 240 deg -> wraps to -120
        assert heading == pytest.approx(math.radians(-120), abs=1e-9)

    def test_negative_rate(self):
        rotation = DeviceRotation(
            Vec3(0, 0), -math.radians(60), tremor_amplitude_rad=0.0
        )
        assert rotation.heading_at(1.0) == pytest.approx(-math.radians(60))

    def test_sweep_mode_bounded(self):
        rotation = DeviceRotation(
            Vec3(0, 0),
            math.radians(120),
            tremor_amplitude_rad=0.0,
            sweep_range_rad=math.radians(90),
        )
        headings = [rotation.heading_at(0.05 * k) for k in range(400)]
        assert max(abs(h) for h in headings) <= math.radians(46)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            DeviceRotation(Vec3(0, 0), 0.0)


class TestVehicular:
    def test_paper_speed(self):
        vehicle = VehicularDriveBy.from_mph(Vec3(0, 0), 0.0, 20.0)
        assert vehicle.speed_mps == pytest.approx(8.9408)

    def test_straight_line(self):
        vehicle = VehicularDriveBy(Vec3(0, 0), 0.0, 10.0,
                                   jitter_amplitude_rad=0.0)
        assert vehicle.position_at(2.0) == Vec3(20.0, 0.0)
        assert vehicle.heading_at(2.0) == pytest.approx(0.0)

    def test_angular_rate_peaks_at_closest_approach(self):
        """From a base station 10 m off the road, bearing changes fastest
        at the point of closest approach."""
        vehicle = VehicularDriveBy(Vec3(-50, 0), 0.0, mph_to_mps(20.0),
                                   jitter_amplitude_rad=0.0)
        station = Vec3(0.0, 10.0)

        def bearing_rate(t, dt=0.01):
            b0 = (station - vehicle.position_at(t)).azimuth()
            b1 = (station - vehicle.position_at(t + dt)).azimuth()
            return abs(b1 - b0) / dt

        t_closest = 50.0 / mph_to_mps(20.0)
        assert bearing_rate(t_closest) > bearing_rate(t_closest - 3.0)
        assert bearing_rate(t_closest) > bearing_rate(t_closest + 3.0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            VehicularDriveBy(Vec3(0, 0), 0.0, 0.0)


class TestWaypointPath:
    def test_visits_waypoints(self):
        path = WaypointPath([Vec3(0, 0), Vec3(10, 0), Vec3(10, 10)], 1.0)
        assert path.total_time_s == pytest.approx(20.0)
        assert path.position_at(0.0) == Vec3(0, 0)
        assert path.position_at(10.0).x == pytest.approx(10.0)
        end = path.position_at(20.0)
        assert (end.x, end.y) == (pytest.approx(10.0), pytest.approx(10.0))

    def test_heading_follows_segment(self):
        path = WaypointPath([Vec3(0, 0), Vec3(10, 0), Vec3(10, 10)], 1.0)
        assert path.heading_at(5.0) == pytest.approx(0.0)
        assert path.heading_at(15.0) == pytest.approx(math.pi / 2)

    def test_clamps_beyond_end(self):
        path = WaypointPath([Vec3(0, 0), Vec3(5, 0)], 1.0)
        assert path.position_at(100.0).x == pytest.approx(5.0)

    def test_clamps_before_start(self):
        path = WaypointPath([Vec3(0, 0), Vec3(5, 0)], 1.0)
        assert path.position_at(-3.0) == Vec3(0, 0)

    def test_rejects_single_waypoint(self):
        with pytest.raises(ValueError):
            WaypointPath([Vec3(0, 0)], 1.0)

    def test_rejects_repeated_waypoint(self):
        with pytest.raises(ValueError):
            WaypointPath([Vec3(0, 0), Vec3(0, 0)], 1.0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            WaypointPath([Vec3(0, 0), Vec3(1, 0)], 0.0)
