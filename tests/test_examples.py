"""Smoke tests: every example script runs clean via its main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "serving cell after the walk" in output
        assert "handover" in output

    def test_human_walk_handover(self, capsys):
        load_example("human_walk_handover").main()
        output = capsys.readouterr().out
        assert "run summary" in output
        assert "HANDOVER" in output or "handovers:" in output

    def test_device_rotation(self, capsys):
        load_example("device_rotation").main()
        output = capsys.readouterr().out
        assert "adaptation summary" in output
        assert "neighbor-beam switches" in output

    def test_vehicular_handover(self, capsys):
        load_example("vehicular_handover").main()
        output = capsys.readouterr().out
        assert "Silent Tracker" in output
        assert "Reactive hard handover" in output

    def test_baseline_comparison(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["baseline_comparison.py", "2"])
        load_example("baseline_comparison").main()
        output = capsys.readouterr().out
        assert "Scenario: walk" in output
        assert "Scenario: vehicular" in output

    def test_random_waypoint_stress(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["random_waypoint_stress.py", "42"])
        load_example("random_waypoint_stress").main()
        output = capsys.readouterr().out
        assert "handovers completed" in output

    def test_channel_calibration(self, capsys):
        load_example("channel_calibration").main()
        output = capsys.readouterr().out
        assert "duty" in output
        assert "rotation" in output

    def test_generate_report(self, capsys, monkeypatch, tmp_path):
        target = tmp_path / "out.md"
        monkeypatch.setattr(
            sys, "argv", ["generate_report.py", "2", str(target)]
        )
        load_example("generate_report").main()
        assert target.read_text().startswith(
            "# Silent Tracker reproduction report"
        )

    def test_custom_plugin(self, capsys):
        from repro.registry import PROTOCOLS, SCENARIOS

        try:
            load_example("custom_plugin").main()
        finally:
            # Keep the example's registrations from leaking into the
            # rest of the suite.
            if "sticky" in PROTOCOLS:
                PROTOCOLS.unregister("sticky")
            if "jog" in SCENARIOS:
                SCENARIOS.unregister("jog")
        output = capsys.readouterr().out
        assert "plugin smoke OK" in output
        assert "sticky" in output
        assert "jog" in output
